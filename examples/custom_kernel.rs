//! Custom kernel through the textual front end (the paper's Figure 2
//! flow): write a tensor operation *in C*, a dataflow in relation-centric
//! notation, and a hardware spec — all as text — then compare candidate
//! dataflows on the same architecture.
//!
//! The kernel here is a 1D dilated convolution, an operation that is in
//! none of the paper's benchmark tables; the point is that *any*
//! perfectly nested affine loop works.
//!
//! Run with: `cargo run --release --example custom_kernel`

use tenet::core::Analysis;
use tenet::frontend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dilated 1D convolution with dilation 2: note the affine index
    // expression `i + 2*r` — compute- and data-centric notations cannot
    // tile or skew such an access without manual rewriting.
    let source = r#"
        for (i = 0; i < 64; i++)
          for (c = 0; c < 16; c++)
            for (r = 0; r < 3; r++)
              S: Y[i] += A[c][i + 2*r] * W[c][r];
    "#;
    let op = frontend::parse_kernel(source)?;
    println!("kernel `{}`: {} MACs", op.name(), op.instances()?);
    println!(
        "input footprint of A: {} elements",
        op.footprint("A")?.card()?
    );

    // The hardware: a 16-PE row with same-cycle multicast wires.
    let arch = frontend::parse_arch(
        r#"arch "row16" {
             array = [16]
             interconnect = multicast(radius = 4)
             bandwidth = 8
           }"#,
    )?;

    // Three candidate dataflows written in the paper's notation.
    let candidates = [
        (
            "output-parallel",
            "{ S[i,c,r] -> (PE[i % 16] | T[fl(i/16), c, r]) }",
        ),
        ("channel-parallel", "{ S[i,c,r] -> (PE[c] | T[i, r]) }"),
        (
            "skewed systolic",
            "{ S[i,c,r] -> (PE[i % 16] | T[fl(i/16), c, i % 16 + r]) }",
        ),
    ];

    println!(
        "\n{:<18} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "dataflow", "latency", "SBW", "IBW", "reuse(A)", "energy"
    );
    for (name, text) in candidates {
        let df = frontend::parse_dataflow(text)?;
        let analysis = Analysis::new(&op, &df, &arch)?;
        let report = analysis.report()?;
        let va = &report.tensors["A"].volumes;
        println!(
            "{:<18} {:>9.0} {:>9.2} {:>9.2} {:>10.1} {:>9.0}",
            name,
            report.latency.total(),
            report.bandwidth.scratchpad,
            report.bandwidth.interconnect,
            va.reuse_factor(),
            report.energy.total(),
        );
    }

    // Round trip: print the winning problem back as canonical text.
    let best = frontend::parse_dataflow(candidates[0].1)?;
    let problem = frontend::Problem {
        kernel: op,
        dataflows: vec![best],
        arch: Some(arch),
    };
    println!(
        "\ncanonical problem file:\n{}",
        frontend::problem_to_text(&problem)
    );
    Ok(())
}
