//! Quickstart: the paper's Figure 3 walk-through.
//!
//! Models GEMM `Y[i,j] += A[i,k] * B[k,j]` (2x2x4) on a 2x2 systolic
//! array under the dataflow `{ S[i,j,k] -> (PE[i,j] | T[i+j+k]) }`, prints
//! the four relations, and derives every Section V metric.
//!
//! Run with: `cargo run --release --example quickstart`

use tenet::core::{Analysis, ArchSpec, Dataflow, Interconnect, TensorOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The tensor operation (a perfectly nested loop, Section II-B).
    let gemm = TensorOp::builder("gemm")
        .dim("i", 2)
        .dim("j", 2)
        .dim("k", 4)
        .read("A", ["i", "k"])
        .read("B", ["k", "j"])
        .write("Y", ["i", "j"])
        .build()?;
    println!("iteration domain D_S: {}", gemm.domain()?);
    println!("|D_S| = {} loop instances\n", gemm.instances()?);

    // 2. The dataflow relation Θ (Definition 1).
    let dataflow = Dataflow::new(["i", "j"], ["i + j + k"]).named("Figure 3 systolic");
    println!("Θ = {}", dataflow.theta(&gemm)?);
    println!("injective: {}\n", dataflow.is_injective(&gemm)?);

    // 3. The architecture: 2x2 PE array, 2D-systolic interconnect,
    //    4 elements/cycle of scratchpad bandwidth.
    let arch = ArchSpec::new("2x2-systolic", [2, 2], Interconnect::Systolic2D, 4.0);
    let analysis = Analysis::new(&gemm, &dataflow, &arch)?;

    // 4. Data assignment A_{D,F} = Θ⁻¹ . A_{S,F} (Definition 2).
    println!("A_D,Y = {}\n", analysis.assignment("Y")?);

    // 5. Volume metrics (Table II / Figure 5).
    println!("tensor    total  reuse  unique  spatial  temporal  factor");
    for t in ["A", "B", "Y"] {
        let v = analysis.volumes(t)?;
        println!(
            "{t:<8} {:>6} {:>6} {:>7} {:>8} {:>9} {:>7.1}",
            v.total,
            v.reuse,
            v.unique,
            v.spatial_reuse,
            v.temporal_reuse,
            v.reuse_factor()
        );
    }

    // 6. Latency, bandwidth, utilization, energy (Section V-B).
    let report = analysis.report()?;
    println!(
        "\nutilization: avg {:.2}, max {:.2} across {} time-stamps",
        report.utilization.average, report.utilization.max, report.utilization.time_stamps
    );
    println!(
        "latency: read {:.1}, write {:.1}, compute {:.1} -> total {:.1} cycles",
        report.latency.read,
        report.latency.write,
        report.latency.compute,
        report.latency.total()
    );
    println!(
        "bandwidth: interconnect {:.2}, scratchpad {:.2} elements/cycle",
        report.bandwidth.interconnect, report.bandwidth.scratchpad
    );
    println!("energy (MAC-normalized): {:.0}", report.energy.total());
    Ok(())
}
