//! MAERI-style reduction-tree mapping (Section VI-E).
//!
//! MAERI connects a 1D row of multipliers through a reconfigurable
//! reduction tree, so a convolution is mapped by *flattening* several
//! loop dimensions onto the one physical PE dimension — an affine
//! transformation that data-centric notation cannot express without
//! manually rewriting the loop nest. This example shows the flattened
//! space-stamp `PE[rx*3 + ry]` (one dot-product per tree pass), verifies
//! it is a legal dataflow, and compares it with a TPU-style 2D systolic
//! mapping of the same layer.
//!
//! Run with: `cargo run --release --example maeri_reduction_tree`

use tenet::core::{presets, Analysis, Dataflow};
use tenet::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A VGG-style 3x3 layer, channel-scaled to keep the demo quick.
    let conv = kernels::conv2d(16, 16, 14, 14, 3, 3)?;
    println!(
        "2D-CONV K=16 C=16 OX=OY=14 R=3x3: {} MACs\n",
        conv.instances()?
    );

    // MAERI: 9 multipliers feed one adder-tree pass per output pixel;
    // the 3x3 filter window is flattened onto the PE row.
    let maeri = Dataflow::new(["rx*3 + ry"], ["k", "c", "ox", "oy"]).named("MAERI tree (RXRY-P)");
    let maeri_arch = presets::maeri_like(9, 16.0);

    // TPU: output channels x input channels on an 8x8 systolic array.
    // Table III prints only the innermost two time dimensions; the filter
    // loops rx, ry must still appear in the full stamp for injectivity.
    let tpu = Dataflow::new(
        ["k % 8", "c % 8"],
        [
            "floor(k / 8)",
            "floor(c / 8)",
            "rx",
            "ry",
            "oy",
            "k % 8 + c % 8 + ox",
        ],
    )
    .named("(KC-P | OY,KCOX-T)");
    let tpu_arch = presets::tpu_like(8, 8, 16.0);

    println!(
        "{:<24} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "mapping", "latency", "util", "SBW", "IBW", "reuse(A)", "reuse(B)"
    );
    for (df, arch) in [(&maeri, &maeri_arch), (&tpu, &tpu_arch)] {
        let analysis = Analysis::new(&conv, df, arch)?;
        let report = analysis.report()?;
        println!(
            "{:<24} {:>9.0} {:>8.2} {:>8.2} {:>8.2} {:>10.1} {:>10.1}",
            df.name().unwrap_or("?"),
            report.latency.total(),
            report.utilization.average,
            report.bandwidth.scratchpad,
            report.bandwidth.interconnect,
            report.tensors["A"].volumes.reuse_factor(),
            report.tensors["B"].volumes.reuse_factor(),
        );
    }

    // The tree pass broadcasts the same input window to all 9 multipliers
    // in the same cycle: spatial reuse with time interval 0 (Section
    // IV-C, multicast row of Figure 4).
    let analysis = Analysis::new(&conv, &maeri, &maeri_arch)?;
    let va = analysis.volumes("A")?;
    println!(
        "\nMAERI input tensor A: {} accesses, {} spatial + {} temporal reuses",
        va.total, va.spatial_reuse, va.temporal_reuse
    );

    // Sweep the tree width: MAERI folds larger windows onto more
    // multipliers (Fig. 11's C1-C5 layers vary exactly this way).
    println!("\ntree width sweep (flattened window -> multipliers):");
    println!("{:<28} {:>9} {:>9}", "flattening", "PEs used", "latency");
    for (label, space, time_c, width) in [
        ("3x3 window  (rx*3 + ry)", "rx*3 + ry", "c", 9),
        ("row pair    (rx + 3*ry)", "rx + 3*ry", "c", 9),
        (
            "window + 2 channels",
            "(c % 2)*9 + rx*3 + ry",
            "floor(c / 2)",
            18,
        ),
    ] {
        let df = Dataflow::new([space], ["k", time_c, "ox", "oy"]);
        let arch = presets::maeri_like(width, 16.0);
        match Analysis::new(&conv, &df, &arch) {
            Ok(a) => {
                let r = a.report()?;
                println!(
                    "{label:<28} {:>9} {:>9.0}",
                    r.utilization.pes_used,
                    r.latency.total()
                );
            }
            Err(e) => println!("{label:<28} rejected: {e}"),
        }
    }
    Ok(())
}
