//! The Table I comparison as a runnable walk-through: the same GEMM
//! mapped with (a) a compute-centric schedule, (b) its exact
//! relation-centric lowering, and (c) a skewed relation-centric dataflow
//! no schedule can express — with the coarse model's reuse error
//! quantified on the Figure 1 convolution.
//!
//! Run with: `cargo run --release --example compute_vs_relation`

use tenet::compute::{evaluate, exactness_gap, expressible, Schedule};
use tenet::core::{Analysis, ArchSpec, Dataflow, Interconnect, TensorOp};
use tenet::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gemm = kernels::gemm(16, 16, 16)?;
    let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 16.0);

    // (a) A Timeloop-style mapping: tile i and j by 8, unroll the tiles
    // across the array, iterate (i_o, j_o, k) in time.
    let schedule = Schedule::new()
        .tile("i", 8)
        .tile("j", 8)
        .parallel("i_i")
        .parallel("j_i")
        .order(["i_o", "j_o", "k"])
        .named("timeloop-style");
    let coarse = evaluate(&gemm, &schedule, &arch)?;
    println!("compute-centric estimate:");
    println!(
        "  latency {:.0} cycles, utilization {:.2}",
        coarse.latency(),
        coarse.utilization
    );
    for (t, m) in &coarse.tensors {
        println!(
            "  {t}: reuse ~{:.0}x, unique ~{:.0}",
            m.reuse_factor, m.unique
        );
    }

    // (b) The exact lowering of the same schedule.
    let lowered = schedule.lower(&gemm)?;
    println!(
        "\nlowered dataflow: PE[{}] | T[{}]",
        lowered.space_exprs().join(", "),
        lowered.time_exprs().join(", ")
    );
    let exact = Analysis::new(&gemm, &lowered, &arch)?.report()?;
    println!("relation-centric exact:");
    println!(
        "  latency {:.0} cycles, utilization {:.2}",
        exact.latency.total(),
        exact.utilization.average
    );
    for (t, m) in &exact.tensors {
        println!(
            "  {t}: reuse {:.0}x, unique {}",
            m.volumes.reuse_factor(),
            m.volumes.unique
        );
    }

    // (c) The skewed wavefront of Figure 3 scaled up: outside the
    // schedule space entirely.
    let skewed = Dataflow::new(
        ["i % 8", "j % 8"],
        ["floor(i / 8)", "floor(j / 8)", "i % 8 + j % 8 + k"],
    )
    .named("(IJ-P | J,IJK-T)");
    println!(
        "\nskewed dataflow {} expressible as a schedule? {}",
        skewed.name().unwrap(),
        expressible(&skewed, &gemm)
    );
    let skew_report = Analysis::new(&gemm, &skewed, &arch)?.report()?;
    println!(
        "  exact latency {:.0} cycles (systolic wavefront)",
        skew_report.latency.total()
    );

    // (d) Where the coarse polynomial goes wrong: halo overlap in CONV.
    let conv1d = TensorOp::builder("conv1d")
        .dim("i", 4)
        .dim("j", 3)
        .read("A", ["i + j"])
        .read("B", ["j"])
        .write("Y", ["i"])
        .build()?;
    let s = Schedule::new().parallel("i").order(["j"]);
    let mesh = ArchSpec::new("4", [4], Interconnect::Mesh, 4.0);
    println!("\nFigure 1 1D-CONV, coarse vs exact unique traffic:");
    for (t, (est, exact)) in exactness_gap(&conv1d, &s, &mesh)? {
        let marker = if est as u128 != exact {
            "  <-- coarse model wrong"
        } else {
            ""
        };
        println!("  {t}: estimate {est:.0}, exact {exact}{marker}");
    }
    Ok(())
}
