//! The Section IV-A design-space comparison: how many dataflows each
//! notation can express, and a concrete skewed dataflow that only the
//! relation-centric notation captures.
//!
//! Run with: `cargo run --release --example design_space`

use tenet::core::Dataflow;
use tenet::dse::space_size;
use tenet::isl::Map;
use tenet::maestro::representable;
use tenet::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("design-space sizes under the paper's normalization:");
    println!(
        "{:>8} {:>18} {:>18}",
        "loops", "data-centric", "relation-centric"
    );
    for n in 2..=6 {
        println!(
            "{n:>8} {:>18} {:>18}",
            space_size::data_centric(n),
            space_size::relation_centric(n)
        );
    }
    println!(
        "\nGEMM (n=3): {} vs {} -> {}x larger (Section IV-A)",
        space_size::data_centric(3),
        space_size::relation_centric(3),
        space_size::relation_centric(3) / space_size::data_centric(3)
    );

    // The Figure 1(a) example: a skewed 1D-convolution dataflow.
    let conv = kernels::gemm(4, 4, 4)?; // any 3-loop nest
    let skewed = Dataflow::new(["i"], ["i + j", "k"]);
    let rect = Dataflow::new(["i"], ["j", "k"]);
    println!(
        "\nskewed dataflow  T[i+j]: data-centric representable? {}",
        representable(&skewed, &conv)
    );
    println!(
        "rectangular      T[j]  : data-centric representable? {}",
        representable(&rect, &conv)
    );

    // Skewing in action: the diagonal data access of Figure 1(a), written
    // directly in the notation and counted exactly.
    let access = Map::parse("{ T[t] -> A[i, j] : t = i + j and 0 <= i < 4 and 0 <= j < 3 }")?;
    println!("\ndiagonal access pattern {access}");
    for t in 0..6 {
        let slice = access.fix_in(0, t);
        println!("  cycle T[{t}]: {} elements of A in flight", slice.card()?);
    }
    Ok(())
}
