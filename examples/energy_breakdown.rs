//! Energy breakdown across dataflows (Section V: "TENET is able to
//! estimate various hardware metrics, including ... energy").
//!
//! The same GEMM is mapped with five Table III dataflows onto an 8x8
//! systolic array; the Eyeriss-style energy hierarchy (register ~ MAC,
//! NoC hop ~ 2x, scratchpad ~ 6x, DRAM ~ 200x) turns the volume metrics
//! into an energy split, showing *why* high-reuse dataflows win: they
//! convert scratchpad traffic into register and NoC traffic.
//!
//! Run with: `cargo run --release --example energy_breakdown`

use tenet::core::{presets, Analysis};
use tenet::workloads::{dataflows, kernels};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gemm = kernels::gemm(64, 64, 64)?;
    let arch2d = presets::tpu_like(8, 8, 64.0);
    let arch1d = presets::maeri_like(64, 64.0);

    println!("GEMM 64x64x64, Eyeriss-style energy table (MAC-normalized)\n");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>10} {:>8} {:>10}",
        "dataflow", "compute", "register", "NoC", "scratchpad", "DRAM", "total"
    );
    for df in dataflows::gemm_dataflows(8, 64) {
        let arch = if df.n_space() == 2 { &arch2d } else { &arch1d };
        let analysis = Analysis::new(&gemm, &df, arch)?;
        let e = analysis.energy()?;
        println!(
            "{:<22} {:>9.0} {:>9.0} {:>9.0} {:>10.0} {:>8.0} {:>10.0}",
            df.name().unwrap_or("?"),
            e.compute,
            e.register,
            e.noc,
            e.scratchpad,
            e.dram,
            e.total()
        );
    }

    // Sensitivity: the same dataflow under a flatter memory hierarchy
    // (scratchpad as cheap as a register) — spatial reuse stops paying.
    println!("\nenergy-table ablation for (IJ-P | J,IJK-T):");
    println!(
        "{:<34} {:>12} {:>12}",
        "energy model", "total energy", "spad share"
    );
    let df = &dataflows::gemm_dataflows(8, 64)[0];
    for (label, spad_cost) in [
        ("Eyeriss hierarchy (spad = 6x)", 6.0),
        ("flat (spad = 1x)", 1.0),
    ] {
        let mut arch = presets::tpu_like(8, 8, 64.0);
        arch.energy.scratchpad = spad_cost;
        let e = Analysis::new(&gemm, df, &arch)?.energy()?;
        println!(
            "{label:<34} {:>12.0} {:>11.1}%",
            e.total(),
            100.0 * e.scratchpad / e.total()
        );
    }
    Ok(())
}
