//! Compares three published accelerator dataflows — Eyeriss (row
//! stationary), ShiDianNao (output stationary), and NVDLA (channel
//! parallel) — on the same convolution layer, and cross-checks the
//! analytical model against the cycle-level simulator.
//!
//! Run with: `cargo run --release --example accelerator_compare`

use tenet::core::{presets, Analysis, AnalysisOptions};
use tenet::sim::{simulate, SimOptions};
use tenet::workloads::{dataflows, kernels};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size layer every dataflow can host: K=32, C=16, 13x13, 3x3.
    let layer = kernels::conv2d(32, 16, 13, 13, 3, 3)?;
    println!(
        "layer: K=32 C=16 OX=OY=13 RX=RY=3  ({} MACs)\n",
        layer.instances()?
    );
    println!(
        "{:<38} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "dataflow", "latency", "avgU", "maxU", "SBW", "sim-lat"
    );

    // Eyeriss: row stationary on a 12x14 array with multicast buses.
    {
        let df = dataflows::eyeriss_row_stationary();
        let arch = presets::eyeriss_noc(12, 14, 16.0);
        let opts = AnalysisOptions {
            reuse_window: 12,
            ..Default::default()
        };
        let a = Analysis::with_options(&layer, &df, &arch, opts)?;
        let r = a.report()?;
        let sim = simulate(&layer, &df, &arch, &SimOptions::default())?;
        println!(
            "{:<38} {:>10.0} {:>8.2} {:>8.2} {:>10.2} {:>10}",
            "Eyeriss (RYOY-P | OY,OX-T)",
            r.latency.total(),
            r.utilization.average,
            r.utilization.max,
            r.bandwidth.scratchpad,
            sim.latency()
        );
    }

    // ShiDianNao: output stationary on an 8x8 mesh.
    {
        let df = dataflows::conv_dataflows(8, 64)
            .into_iter()
            .find(|d| d.name() == Some("(OYOX-P | OY,OX-T)"))
            .unwrap();
        let arch = presets::shidiannao_like(16.0);
        let a = Analysis::new(&layer, &df, &arch)?;
        let r = a.report()?;
        let sim = simulate(&layer, &df, &arch, &SimOptions::default())?;
        println!(
            "{:<38} {:>10.0} {:>8.2} {:>8.2} {:>10.2} {:>10}",
            "ShiDianNao (OYOX-P | OY,OX-T)",
            r.latency.total(),
            r.utilization.average,
            r.utilization.max,
            r.bandwidth.scratchpad,
            sim.latency()
        );
    }

    // NVDLA: channel-parallel on an 8x8 mesh.
    {
        let df = dataflows::conv_dataflows(8, 64)
            .into_iter()
            .find(|d| d.name() == Some("(KC-P | OY,OX-T)"))
            .unwrap();
        let arch = presets::mesh(8, 8, 16.0);
        let a = Analysis::new(&layer, &df, &arch)?;
        let r = a.report()?;
        let sim = simulate(&layer, &df, &arch, &SimOptions::default())?;
        println!(
            "{:<38} {:>10.0} {:>8.2} {:>8.2} {:>10.2} {:>10}",
            "NVDLA (KC-P | OY,OX-T)",
            r.latency.total(),
            r.utilization.average,
            r.utilization.max,
            r.bandwidth.scratchpad,
            sim.latency()
        );
    }

    // TPU-style skewed systolic GEMM for contrast (Figure 3 scaled up).
    {
        let gemm = kernels::gemm(32, 32, 32)?;
        let df = &dataflows::gemm_dataflows(8, 64)[0];
        let arch = presets::tpu_like(8, 8, 16.0);
        let a = Analysis::new(&gemm, df, &arch)?;
        let r = a.report()?;
        let sim = simulate(&gemm, df, &arch, &SimOptions::default())?;
        println!(
            "{:<38} {:>10.0} {:>8.2} {:>8.2} {:>10.2} {:>10}",
            "TPU GEMM (IJ-P | J,IJK-T)",
            r.latency.total(),
            r.utilization.average,
            r.utilization.max,
            r.bandwidth.scratchpad,
            sim.latency()
        );
    }
    println!("\n(analytical latency assumes double buffering; the simulator");
    println!("serializes scratchpad fetches above the bandwidth budget)");
    Ok(())
}
