//! Dataflow design-space exploration for a 2D convolution layer
//! (Section VI-B): enumerate the rectilinear movement/assignment space,
//! evaluate every candidate with the exact performance model, and print
//! the Pareto frontier, highlighting the skewed dataflows that only
//! relation-centric notation can express.
//!
//! Run with: `cargo run --release --example conv_explorer`

use tenet::core::{ArchSpec, Interconnect};
use tenet::dse::{enumerate_all, explore, pareto};
use tenet::maestro::representable;
use tenet::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conv = kernels::conv2d(16, 16, 8, 8, 3, 3)?;
    let arch = ArchSpec::new("8x8-mesh", [8, 8], Interconnect::Mesh, 6.0);

    let candidates = enumerate_all(&conv, 8, 64)?;
    println!("enumerated {} candidate dataflows", candidates.len());

    let t0 = std::time::Instant::now();
    let points = explore(&conv, &arch, &candidates)?;
    println!(
        "evaluated {} valid dataflows in {:.1?}\n",
        points.len(),
        t0.elapsed()
    );

    println!("top 10 by latency:");
    println!(
        "{:<44} {:>10} {:>8} {:>10}",
        "dataflow", "latency", "SBW", "notation"
    );
    for p in points.iter().take(10) {
        let dc = if representable(&p.dataflow, &conv) {
            "both"
        } else {
            "TENET-only"
        };
        println!(
            "{:<44} {:>10.0} {:>8.2} {:>10}",
            p.dataflow.name().unwrap_or("<unnamed>"),
            p.latency(),
            p.sbw(),
            dc
        );
    }

    let front = pareto(&points);
    println!("\nPareto frontier: {} points", front.len());

    // The headline claim: the best dataflow overall vs the best one that
    // data-centric notation can express.
    let best = &points[0];
    let best_dc = points
        .iter()
        .find(|p| representable(&p.dataflow, &conv))
        .expect("some dataflow is data-centric representable");
    println!(
        "\nbest overall:       {:<44} latency {:>8.0}",
        best.dataflow.name().unwrap_or(""),
        best.latency()
    );
    println!(
        "best data-centric:  {:<44} latency {:>8.0}",
        best_dc.dataflow.name().unwrap_or(""),
        best_dc.latency()
    );
    println!(
        "latency reduction from relation-centric expressiveness: {:.1}%",
        100.0 * (1.0 - best.latency() / best_dc.latency())
    );
    Ok(())
}
