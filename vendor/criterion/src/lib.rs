//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The container this repo builds in has no network access, so the real
//! criterion crate cannot be fetched. This crate implements the subset of
//! the criterion 0.5 API that the `tenet-bench` benches use — enough to
//! `cargo bench` with real wall-clock measurements and a stable textual
//! report. Measurements use a warm-up pass followed by timed batches and
//! report the median batch ns/iter, which is robust to scheduler noise.
//!
//! It is intentionally tiny: no statistical bootstrap, no HTML reports,
//! no baselines. Results are also appended (JSON lines) to the file named
//! by `CRITERION_JSON_OUT` when that environment variable is set, so
//! external tooling can collect `{name, ns_per_iter, iters}` rows.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Measurement configuration and result sink (criterion API subset).
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1200),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    sample_size: usize,
    /// Filled in by [`Bencher::iter`]: median ns per iteration.
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: discover a batch size that runs ~1ms, while warming
        // caches. Also guards against pathologically slow bodies.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt < Duration::from_millis(1) && batch < 1 << 24 {
                batch *= 2;
            }
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measure;
        let mut total_iters: u64 = 0;
        while samples.len() < self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            total_iters += batch;
            samples.push(dt.as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline && samples.len() >= 5 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
        self.iters = total_iters;
    }
}

fn report(name: &str, b: &Bencher) {
    let ns = b.ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    };
    println!("{name:<50} time: {human:>14}   ({} iters)", b.iters);
    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"name\":\"{}\",\"ns_per_iter\":{:.2},\"iters\":{}}}",
                name.replace('"', "'"),
                ns,
                b.iters
            );
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            sample_size: self.sample_size,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(5);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut b = Bencher {
            warm_up: self.parent.warm_up,
            measure: self.parent.measure,
            sample_size: self.parent.sample_size,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(&full, &b);
        self
    }

    /// Finishes the group (no-op; criterion API compatibility).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter<D: Display>(p: D) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and parameter.
    pub fn new<D: Display>(name: &str, p: D) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Declares a group of benchmark functions (criterion API subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point (criterion API subset).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export of `std::hint::black_box` (criterion API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
