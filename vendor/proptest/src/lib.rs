//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real proptest cannot
//! be fetched. This crate implements the subset of the proptest 1.x API
//! that this repository's property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive`, range and tuple
//! strategies, [`collection::vec`], [`char::any`], a permissive string
//! strategy for `&str` regex literals, [`Just`], `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: generation is a fixed-seed
//! deterministic PRNG keyed on the test name (reproducible across runs and
//! machines), there is **no shrinking**, and `&str` strategies ignore the
//! regex and produce arbitrary printable strings. For the equivalence and
//! oracle tests in this repo those differences do not matter; determinism
//! is an advantage in CI.

use std::rc::Rc;

/// Deterministic splitmix64 PRNG driving all generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name and case index (plus `PROPTEST_SEED` if set).
    pub fn from_name_case(name: &str, case: u32) -> TestRng {
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                seed ^= v;
            }
        }
        TestRng {
            state: seed ^ ((case as u64).wrapping_mul(0xA24B_AED4_963E_E407)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let v = (self.next_u64() as u128) % span;
        (lo as i128 + v as i128) as i64
    }
}

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
        U: 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| f(inner.generate(rng)))
    }

    /// Chains generation: the generated value selects a follow-up strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| f(inner.generate(rng)).generate(rng))
    }

    /// Builds a recursive strategy: `f` maps a strategy for depth `d` to a
    /// strategy for depth `d + 1`; generation picks a random layer. The
    /// `_size` and `_branch` hints of the real API are accepted and
    /// ignored.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value> + 'static,
    {
        let mut layers: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let prev = layers.last().expect("nonempty").clone();
            layers.push(f(prev));
        }
        BoxedStrategy::new(move |rng| {
            let i = rng.below(layers.len() as u64) as usize;
            layers[i].generate(rng)
        })
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| inner.generate(rng))
    }
}

/// A clonable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i64_in(self.start as i64, self.end as i64 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.i64_in(*self.start() as i64, *self.end() as i64) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

impl Strategy for std::ops::RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.below(hi - lo + 1)
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A `&str` literal is treated as a (regex) string strategy. The pattern
/// is ignored; arbitrary printable strings (with occasional non-ASCII
/// characters) are produced.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(40) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let roll = rng.below(20);
            let ch = if roll < 16 {
                // Printable ASCII.
                char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('a')
            } else if roll < 19 {
                // Latin-1 / general unicode letters.
                char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('é')
            } else {
                // Structural characters likely to stress parsers.
                [
                    '{', '}', '[', ']', '(', ')', ';', ':', '-', '>', '<', '=', '%', '/', '*',
                ][rng.below(15) as usize]
            };
            s.push(ch);
        }
        s
    }
}

/// Uniform choice among same-valued strategies (backs `prop_oneof!`).
pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy::new(move |rng| {
        let i = rng.below(arms.len() as u64) as usize;
        arms[i].generate(rng)
    })
}

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, Strategy};

    /// Inclusive length range for [`vec`].
    #[derive(Clone, Copy)]
    pub struct SizeRange(pub usize, pub usize);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n, n)
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange(r.start, r.end - 1)
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*r.start(), *r.end())
        }
    }

    /// Vector of values from `elem`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S::Value: 'static,
    {
        let SizeRange(lo, hi) = size.into();
        BoxedStrategy::new(move |rng| {
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| elem.generate(rng)).collect()
        })
    }
}

/// Character strategies.
pub mod char {
    use super::BoxedStrategy;

    /// Any `char`, biased toward ASCII.
    pub fn any() -> BoxedStrategy<::std::primitive::char> {
        BoxedStrategy::new(|rng| {
            if rng.below(4) < 3 {
                ::std::primitive::char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('x')
            } else {
                loop {
                    let v = rng.below(0x11_0000) as u32;
                    if let Some(c) = ::std::primitive::char::from_u32(v) {
                        break c;
                    }
                }
            }
        })
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniform booleans.
    #[derive(Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = ::std::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> ::std::primitive::bool {
            rng.below(2) == 1
        }
    }

    /// Any boolean (uniform).
    pub const ANY: Any = Any;
}

/// A failed property-test case (the error side of test bodies; the real
/// crate's shrinking machinery is absent, so this is just a message).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Asserts a condition inside a `proptest!` body (fails the case, with the
/// generated inputs echoed by the harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a), stringify!($b), l, r, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}; {}) at {}:{}",
                stringify!($a), stringify!($b), l, r, format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::from_name_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("proptest '{}' case {}/{} failed: {}", stringify!($name), case, cfg.cases, msg);
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        bool, collection, one_of, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    /// Namespace alias matching real proptest's `prop::` re-export.
    pub mod prop {
        pub use crate::collection;
    }
}
