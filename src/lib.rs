//! # TENET — relation-centric tensor dataflow modeling
//!
//! A Rust reproduction of *TENET: A Framework for Modeling Tensor Dataflow
//! Based on Relation-centric Notation* (ISCA 2021), including a
//! from-scratch integer set library, the relation-centric performance
//! model, the MAESTRO-style data-centric baseline, a cycle-level golden
//! simulator, the paper's workloads and dataflows, design-space
//! exploration, and a concurrent HTTP/JSON analysis service.
//!
//! ```
//! use tenet::core::{Analysis, ArchSpec, Dataflow, Interconnect, TensorOp};
//!
//! // Figure 3 of the paper: GEMM on a 2x2 systolic array.
//! let gemm = TensorOp::builder("gemm")
//!     .dim("i", 2).dim("j", 2).dim("k", 4)
//!     .read("A", ["i", "k"]).read("B", ["k", "j"]).write("Y", ["i", "j"])
//!     .build()?;
//! let dataflow = Dataflow::new(["i", "j"], ["i + j + k"]);
//! let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
//! let report = Analysis::new(&gemm, &dataflow, &arch)?.report()?;
//! assert_eq!(report.macs, 16);
//! # Ok::<(), tenet::core::Error>(())
//! ```

pub use tenet_compute as compute;
pub use tenet_core as core;
pub use tenet_dse as dse;
pub use tenet_frontend as frontend;
pub use tenet_isl as isl;
pub use tenet_maestro as maestro;
pub use tenet_server as server;
pub use tenet_sim as sim;
pub use tenet_workloads as workloads;
