//! # tenet-maestro
//!
//! The data-centric baseline TENET is evaluated against: MAESTRO's
//! `SpatialMap` / `TemporalMap` / `Cluster` notation and a simplified
//! reimplementation of its polynomial cost model, preserving the
//! behavioural properties the paper's comparisons depend on (limited
//! expressiveness, polynomial reuse estimates, no output reuse).

#![warn(missing_docs)]

mod model;
mod notation;

pub use model::{evaluate, MaestroReport, MaestroTensor};
pub use notation::{representable, to_data_centric, DcMapping, Directive};
