//! A faithful simplified reimplementation of the MAESTRO analytical cost
//! model, *including its documented blind spots* (Sections II-C and VI-E):
//!
//! * reuse is estimated with closed-form polynomials over directive sizes,
//!   not by counting relations;
//! * only explicitly mapped dimensions participate — tensors indexed by an
//!   affine combination of iterators (e.g. `A[i+j]` in Figure 1c) have the
//!   extra iterators' reuse misattributed;
//! * output arrays report no reuse at all;
//! * sliding windows use valid-convolution extents, under-counting reuse
//!   for same-padded layers (Figure 12's 2916-vs-3136 filter reuse).
//!
//! These properties are intentional: every comparison figure in the paper
//! measures TENET against exactly this behaviour.

use crate::notation::{referenced_dims, DcMapping, Directive};
use std::collections::BTreeMap;
use tenet_core::{ArchSpec, Role, TensorOp};

/// Per-tensor estimate produced by the MAESTRO-style model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaestroTensor {
    /// Total accesses (one per MAC).
    pub total: f64,
    /// Estimated reuse factor (polynomial, not exact).
    pub reuse_factor: f64,
    /// `total / reuse_factor`.
    pub unique: f64,
}

/// The model's output.
#[derive(Debug, Clone, PartialEq)]
pub struct MaestroReport {
    /// PEs the mapping occupies.
    pub pes_used: f64,
    /// `pes_used / pe_count`, capped at 1.
    pub utilization: f64,
    /// Estimated compute delay in cycles.
    pub compute: f64,
    /// Estimated read delay in cycles.
    pub read: f64,
    /// Estimated write delay in cycles.
    pub write: f64,
    /// Per-tensor estimates.
    pub tensors: BTreeMap<String, MaestroTensor>,
}

impl MaestroReport {
    /// Overall latency: `max(compute, read, write)` (double buffering).
    pub fn latency(&self) -> f64 {
        self.compute.max(self.read).max(self.write)
    }
}

/// Number of window positions a directive produces on a dimension of the
/// given extent: `floor((extent - size)/offset) + 1`.
fn positions(extent: i64, size: i64, offset: i64) -> f64 {
    if extent < size || offset <= 0 {
        1.0
    } else {
        (((extent - size) / offset) + 1) as f64
    }
}

/// Evaluates a data-centric mapping with the MAESTRO-style cost model.
///
/// ```
/// use tenet_core::{ArchSpec, Interconnect, TensorOp};
/// use tenet_maestro::{evaluate, DcMapping};
///
/// // Figure 1: Y[i] += A[i+j] * B[j] with spatial i, temporal j.
/// let op = TensorOp::builder("conv1d")
///     .dim("i", 4).dim("j", 3)
///     .read("A", ["i + j"]).read("B", ["j"]).write("Y", ["i"])
///     .build()?;
/// let mapping = DcMapping::new().spatial(1, 1, "i").temporal(1, 1, "j");
/// let arch = ArchSpec::new("1d", [4], Interconnect::Multicast { radius: 3 }, 4.0);
/// let report = evaluate(&op, &mapping, &arch);
/// // MAESTRO credits A with reuse 8 (actual is 6, Figure 1c).
/// let a = &report.tensors["A"];
/// assert_eq!(a.total - a.unique, 8.0);
/// # Ok::<(), tenet_core::Error>(())
/// ```
pub fn evaluate(op: &TensorOp, mapping: &DcMapping, arch: &ArchSpec) -> MaestroReport {
    let extent = |dim: &str| -> i64 {
        op.dims()
            .iter()
            .find(|d| d.name == dim)
            .map(|d| d.extent())
            .unwrap_or(1)
    };
    // Steps per dimension (spatial positions and temporal steps).
    let mut spatial_pos: BTreeMap<String, f64> = BTreeMap::new();
    let mut temporal_steps: BTreeMap<String, f64> = BTreeMap::new();
    for d in &mapping.directives {
        match d {
            Directive::SpatialMap { size, offset, dim } => {
                spatial_pos.insert(dim.clone(), positions(extent(dim), *size, *offset));
            }
            Directive::TemporalMap { size, offset, dim } => {
                temporal_steps.insert(dim.clone(), positions(extent(dim), *size, *offset));
            }
            Directive::Cluster(_) => {}
        }
    }
    // Unmapped dimensions iterate sequentially.
    for d in op.dims() {
        if !spatial_pos.contains_key(&d.name) && !temporal_steps.contains_key(&d.name) {
            temporal_steps.insert(d.name.clone(), d.extent() as f64);
        }
    }
    let pe_count = arch.pe_count() as f64;
    let pes_used = spatial_pos.values().product::<f64>().min(pe_count).max(1.0);
    let utilization = (pes_used / pe_count).min(1.0);
    let macs: f64 = op.instances().unwrap_or(0) as f64;
    let compute = (macs / pes_used).ceil();

    // Per-tensor polynomial reuse: the product of the step counts of every
    // dimension the tensor does not (visibly) reference. For an index
    // expression combining several iterators, only the first iterator
    // counts as referenced — MAESTRO's primitives cannot describe the
    // composite movement (Figure 1c).
    let mut tensors = BTreeMap::new();
    let mut read = 0.0;
    let mut write = 0.0;
    let names: Vec<String> = {
        let mut v = Vec::new();
        for a in op.accesses() {
            if !v.contains(&a.tensor) {
                v.push(a.tensor.clone());
            }
        }
        v
    };
    for t in names {
        let role = op.role_of(&t).unwrap_or(Role::Input);
        let mut referenced: Vec<String> = Vec::new();
        for a in op.accesses().iter().filter(|a| a.tensor == t) {
            for e in &a.exprs {
                if let Some(first) = referenced_dims(e, op).first() {
                    if !referenced.contains(first) {
                        referenced.push(first.clone());
                    }
                }
            }
        }
        let mut factor = 1.0;
        for d in op.dims() {
            if referenced.contains(&d.name) {
                continue;
            }
            let steps = spatial_pos
                .get(&d.name)
                .or_else(|| temporal_steps.get(&d.name))
                .copied()
                .unwrap_or(d.extent() as f64);
            factor *= steps;
        }
        let reuse_factor = if role == Role::Output { 1.0 } else { factor };
        let unique = (macs / factor).max(1.0);
        match role {
            Role::Output => write += unique,
            Role::Input => read += unique,
        }
        tensors.insert(
            t,
            MaestroTensor {
                total: macs,
                reuse_factor,
                unique,
            },
        );
    }
    MaestroReport {
        pes_used,
        utilization,
        compute,
        read: read / arch.bandwidth,
        write: write / arch.bandwidth,
        tensors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_core::Interconnect;

    fn conv1d() -> TensorOp {
        TensorOp::builder("conv1d")
            .dim("i", 4)
            .dim("j", 3)
            .read("A", ["i + j"])
            .read("B", ["j"])
            .write("Y", ["i"])
            .build()
            .unwrap()
    }

    /// The Figure 1(c) calibration point: MAESTRO reports reuse 8 for A
    /// while the actual reuse is 6.
    #[test]
    fn figure1c_overestimates_reuse_of_a() {
        let op = conv1d();
        let mapping = DcMapping::new().spatial(1, 1, "i").temporal(1, 1, "j");
        let arch = ArchSpec::new("1d", [4], Interconnect::Multicast { radius: 3 }, 4.0);
        let r = evaluate(&op, &mapping, &arch);
        let a = &r.tensors["A"];
        assert_eq!(a.total, 12.0);
        assert_eq!(a.unique, 4.0); // actual footprint is 6
        assert_eq!(a.total - a.unique, 8.0); // paper: "Data-centric reuse: 8"
    }

    /// Output arrays never report reuse (Section VI-E).
    #[test]
    fn output_reuse_factor_is_one() {
        let op = conv1d();
        let mapping = DcMapping::new().spatial(1, 1, "i").temporal(1, 1, "j");
        let arch = ArchSpec::new("1d", [4], Interconnect::Multicast { radius: 3 }, 4.0);
        let r = evaluate(&op, &mapping, &arch);
        assert_eq!(r.tensors["Y"].reuse_factor, 1.0);
    }

    /// Sliding windows use valid-convolution extents: with output size 56
    /// and a 3-wide filter mapped as TemporalMap(3, 1), the filter reuse
    /// polynomial gives 54 × 54 = 2916 (the Figure 12 inception-4a value).
    #[test]
    fn figure12_filter_reuse_polynomial() {
        let op = TensorOp::builder("conv")
            .dim("k", 208)
            .dim("c", 96)
            .dim("ox", 56)
            .dim("oy", 56)
            .dim("rx", 3)
            .dim("ry", 3)
            .read("A", ["c", "ox + rx", "oy + ry"])
            .read("B", ["k", "c", "rx", "ry"])
            .write("Y", ["k", "ox", "oy"])
            .build()
            .unwrap();
        let mapping = DcMapping::new()
            .spatial(1, 1, "k")
            .temporal(1, 1, "c")
            .temporal(3, 1, "ox")
            .temporal(3, 1, "oy")
            .temporal(3, 3, "rx")
            .temporal(3, 3, "ry");
        let arch = ArchSpec::new("pe64", [64], Interconnect::Multicast { radius: 3 }, 16.0);
        let r = evaluate(&op, &mapping, &arch);
        let b = &r.tensors["B"];
        assert_eq!(b.reuse_factor, 54.0 * 54.0);
    }

    #[test]
    fn utilization_capped_at_one() {
        let op = conv1d();
        let mapping = DcMapping::new().spatial(1, 1, "i").temporal(1, 1, "j");
        let arch = ArchSpec::new("tiny", [2], Interconnect::Systolic1D, 4.0);
        let r = evaluate(&op, &mapping, &arch);
        assert!(r.utilization <= 1.0);
    }
}
