//! The data-centric notation (Kwon et al., MICRO'19): `SpatialMap`,
//! `TemporalMap` and `Cluster` directives, plus the expressiveness check
//! that separates it from the relation-centric notation (Table I,
//! Section IV-A).

use tenet_core::{Dataflow, TensorOp};

/// One data-centric directive.
///
/// `size` and `offset` follow MAESTRO's sliding-window semantics: the
/// mapped dimension is covered by windows of `size` elements advancing by
/// `offset` per step, giving `floor((extent - size)/offset) + 1` positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// Distributes windows of a dimension across PEs.
    SpatialMap {
        /// Window size.
        size: i64,
        /// Window stride.
        offset: i64,
        /// Loop dimension name.
        dim: String,
    },
    /// Iterates windows of a dimension across time-steps within a PE.
    TemporalMap {
        /// Window size.
        size: i64,
        /// Window stride.
        offset: i64,
        /// Loop dimension name.
        dim: String,
    },
    /// Groups PEs into sub-clusters of the given size.
    Cluster(i64),
}

/// A data-centric mapping: an ordered list of directives.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DcMapping {
    /// The ordered directives.
    pub directives: Vec<Directive>,
    /// Optional display name.
    pub name: Option<String>,
}

impl DcMapping {
    /// Starts an empty mapping.
    pub fn new() -> DcMapping {
        DcMapping::default()
    }

    /// Adds a `SpatialMap(size, offset) dim` directive.
    pub fn spatial(mut self, size: i64, offset: i64, dim: &str) -> Self {
        self.directives.push(Directive::SpatialMap {
            size,
            offset,
            dim: dim.to_string(),
        });
        self
    }

    /// Adds a `TemporalMap(size, offset) dim` directive.
    pub fn temporal(mut self, size: i64, offset: i64, dim: &str) -> Self {
        self.directives.push(Directive::TemporalMap {
            size,
            offset,
            dim: dim.to_string(),
        });
        self
    }

    /// Adds a `Cluster(size)` directive.
    pub fn cluster(mut self, size: i64) -> Self {
        self.directives.push(Directive::Cluster(size));
        self
    }

    /// Attaches a display name.
    pub fn named(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }
}

impl std::fmt::Display for Directive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Directive::SpatialMap { size, offset, dim } => {
                write!(f, "SpMap({size},{offset}) {dim}")
            }
            Directive::TemporalMap { size, offset, dim } => {
                write!(f, "TpMap({size},{offset}) {dim}")
            }
            Directive::Cluster(n) => write!(f, "Cluster({n}, P)"),
        }
    }
}

impl std::fmt::Display for DcMapping {
    /// Prints the Table III textual form:
    /// `1. SpMap(1,1) K; 2. TpMap(1,1) I; 3. TpMap(1,1) J`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, d) in self.directives.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}. {d}", i + 1)?;
        }
        Ok(())
    }
}

impl DcMapping {
    /// Parses the paper's textual directive form (Table III): numbered or
    /// plain `SpMap(size,offset) DIM` / `TpMap(...) DIM` /
    /// `SpatialMap(...) DIM` / `TemporalMap(...) DIM` / `Cluster(N)` /
    /// `Cluster(N, P)` entries separated by `;` or newlines.
    ///
    /// ```
    /// use tenet_maestro::DcMapping;
    /// let m = DcMapping::parse("1. SpMap(1,1) K; 2. TpMap(1,1) I; 3. TpMap(1,1) J")?;
    /// assert_eq!(m.directives.len(), 3);
    /// assert_eq!(DcMapping::parse(&m.to_string())?, m);
    /// # Ok::<(), String>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed entry.
    pub fn parse(text: &str) -> Result<DcMapping, String> {
        let mut mapping = DcMapping::new();
        for raw in text.split([';', '\n']) {
            let mut entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            // Strip a leading `N.` enumeration.
            if let Some(dot) = entry.find('.') {
                if entry[..dot].trim().chars().all(|c| c.is_ascii_digit())
                    && !entry[..dot].trim().is_empty()
                {
                    entry = entry[dot + 1..].trim();
                }
            }
            let open = entry
                .find('(')
                .ok_or_else(|| format!("`{entry}`: expected `(` after directive name"))?;
            let close = entry
                .find(')')
                .ok_or_else(|| format!("`{entry}`: missing `)`"))?;
            let head = entry[..open].trim();
            let args: Vec<&str> = entry[open + 1..close].split(',').map(str::trim).collect();
            let tail = entry[close + 1..].trim();
            let parse_num = |t: &str| -> Result<i64, String> {
                t.parse::<i64>()
                    .map_err(|_| format!("`{entry}`: `{t}` is not an integer"))
            };
            match head {
                "SpMap" | "SpatialMap" | "Sp" => {
                    if args.len() != 2 || tail.is_empty() {
                        return Err(format!("`{entry}`: expected SpMap(size,offset) DIM"));
                    }
                    mapping = mapping.spatial(parse_num(args[0])?, parse_num(args[1])?, tail);
                }
                "TpMap" | "TemporalMap" | "Tp" => {
                    if args.len() != 2 || tail.is_empty() {
                        return Err(format!("`{entry}`: expected TpMap(size,offset) DIM"));
                    }
                    mapping = mapping.temporal(parse_num(args[0])?, parse_num(args[1])?, tail);
                }
                "Cluster" => {
                    if args.is_empty() || args.len() > 2 || !tail.is_empty() {
                        return Err(format!("`{entry}`: expected Cluster(N) or Cluster(N, P)"));
                    }
                    mapping = mapping.cluster(parse_num(args[0])?);
                }
                other => {
                    return Err(format!(
                        "`{entry}`: unknown directive `{other}` (expected SpMap, TpMap, Cluster)"
                    ))
                }
            }
        }
        if mapping.directives.is_empty() {
            return Err("mapping text contains no directives".into());
        }
        Ok(mapping)
    }
}

/// Returns the distinct loop-iterator names referenced by a quasi-affine
/// expression in the paper's notation.
pub(crate) fn referenced_dims(expr: &str, op: &TensorOp) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let flush = |cur: &mut String, out: &mut Vec<String>| {
        if !cur.is_empty() {
            let ident = std::mem::take(cur);
            let is_dim = op.dims().iter().any(|d| d.name == ident);
            if is_dim && !out.contains(&ident) {
                out.push(ident);
            }
        }
    };
    for ch in expr.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            cur.push(ch);
        } else {
            flush(&mut cur, &mut out);
        }
    }
    flush(&mut cur, &mut out);
    out
}

/// Whether a relation-centric dataflow can be written in data-centric
/// notation: every space- and time-stamp dimension must be a function of a
/// *single* loop iterator (a plain dimension, `d mod c`, or `floor(d/c)`).
/// Affine combinations of several iterators — the skewed dataflows of
/// Figure 1(a) and the `i+j+k` time-stamps of Table III — are not
/// representable (Section IV-A).
pub fn representable(df: &Dataflow, op: &TensorOp) -> bool {
    df.space_exprs()
        .iter()
        .chain(df.time_exprs().iter())
        .all(|e| referenced_dims(e, op).len() <= 1)
}

/// Converts a representable dataflow into a data-centric mapping
/// (space dims become `SpatialMap(1,1)`, time dims in order become
/// `TemporalMap(1,1)`).
///
/// Returns `None` when the dataflow is not representable.
pub fn to_data_centric(df: &Dataflow, op: &TensorOp) -> Option<DcMapping> {
    if !representable(df, op) {
        return None;
    }
    let mut mapping = DcMapping::new();
    let mut seen: Vec<String> = Vec::new();
    for e in df.space_exprs() {
        let dims = referenced_dims(e, op);
        if let Some(d) = dims.first() {
            mapping = mapping.spatial(1, 1, d);
            seen.push(d.clone());
        }
    }
    for e in df.time_exprs() {
        let dims = referenced_dims(e, op);
        if let Some(d) = dims.first() {
            if !seen.contains(d) {
                mapping = mapping.temporal(1, 1, d);
                seen.push(d.clone());
            }
        }
    }
    // Remaining dims iterate sequentially.
    for d in op.dims() {
        if !seen.contains(&d.name) {
            mapping = mapping.temporal(1, 1, &d.name);
        }
    }
    if let Some(n) = df.name() {
        mapping = mapping.named(n);
    }
    Some(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_core::TensorOp;

    fn gemm() -> TensorOp {
        TensorOp::builder("gemm")
            .dim("i", 8)
            .dim("j", 8)
            .dim("k", 8)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap()
    }

    #[test]
    fn parses_table3_gemm_mapping() {
        let m = DcMapping::parse("1. SpMap(1,1) K\n2. TpMap(1,1) I\n3. TpMap(1,1) J").unwrap();
        assert_eq!(m.directives.len(), 3);
        assert!(matches!(
            m.directives[0],
            Directive::SpatialMap {
                size: 1,
                offset: 1,
                ..
            }
        ));
    }

    #[test]
    fn parses_eyeriss_mapping_with_cluster() {
        let text = "1. TpMap(4,4) C; 2. TpMap(16,16) K; 3. SpMap(3,1) Y; 4. TpMap(3,1) X; \
                    5. Cluster(3, P); 6. TpMap(1,1) C; 7. TpMap(1,1) K; 8. SpMap(1,1) Y; \
                    9. SpMap(1,1) RY";
        let m = DcMapping::parse(text).unwrap();
        assert_eq!(m.directives.len(), 9);
        assert_eq!(m.directives[4], Directive::Cluster(3));
    }

    #[test]
    fn display_round_trips() {
        let m = DcMapping::new()
            .spatial(1, 1, "K")
            .temporal(3, 1, "X")
            .cluster(8)
            .temporal(1, 1, "C");
        let text = m.to_string();
        let back = DcMapping::parse(&text).unwrap();
        assert_eq!(back.directives, m.directives);
    }

    #[test]
    fn rejects_malformed_directive() {
        assert!(DcMapping::parse("SpMap(1) K").is_err());
        assert!(DcMapping::parse("FooMap(1,1) K").is_err());
        assert!(DcMapping::parse("SpMap(1,1)").is_err());
        assert!(DcMapping::parse("").is_err());
        assert!(DcMapping::parse("SpMap(a,1) K").is_err());
    }

    #[test]
    fn skewed_dataflow_not_representable() {
        let op = gemm();
        // Figure 3 / Table III: the systolic time-stamp i+j+k is exactly
        // what data-centric notation cannot express.
        let skewed = Dataflow::new(["i", "j"], ["i + j + k"]);
        assert!(!representable(&skewed, &op));
        assert!(to_data_centric(&skewed, &op).is_none());
    }

    #[test]
    fn rectangular_dataflow_representable() {
        let op = gemm();
        // (K-P | I,J-T) from Table III has a data-centric form.
        let df = Dataflow::new(["k mod 8"], ["floor(k/8)", "i", "j"]);
        assert!(representable(&df, &op));
        let m = to_data_centric(&df, &op).unwrap();
        assert_eq!(m.directives.len(), 3);
        assert!(matches!(
            &m.directives[0],
            Directive::SpatialMap { dim, .. } if dim == "k"
        ));
    }

    #[test]
    fn referenced_dims_sees_through_mod_floor() {
        let op = gemm();
        assert_eq!(referenced_dims("i mod 8 + j mod 8 + k", &op).len(), 3);
        assert_eq!(referenced_dims("floor(i/8)", &op), vec!["i"]);
        assert_eq!(referenced_dims("3*(k mod 4)", &op), vec!["k"]);
    }

    #[test]
    fn builder_produces_named_mapping() {
        let m = DcMapping::new()
            .spatial(1, 1, "k")
            .temporal(1, 1, "i")
            .cluster(8)
            .named("(K-P | I,J-T)");
        assert_eq!(m.directives.len(), 3);
        assert_eq!(m.name.as_deref(), Some("(K-P | I,J-T)"));
    }
}
