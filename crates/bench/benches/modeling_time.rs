//! Figure 8 (Criterion-grade): modeling time for a single dataflow across
//! array sizes and interconnects, plus the MAESTRO baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tenet_bench::analyze_fitted;
use tenet_core::{ArchSpec, Interconnect};
use tenet_maestro::{evaluate, to_data_centric};
use tenet_workloads::{dataflows, kernels};

fn bench_tenet(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_tenet_modeling");
    g.sample_size(10);
    for pe in [4i64, 8, 16] {
        for ic in [
            Interconnect::Systolic1D,
            Interconnect::Systolic2D,
            Interconnect::Mesh,
        ] {
            let label = format!("gemm_{pe}x{pe}_{}", ic.label());
            let op = kernels::gemm(32, 32, 32).unwrap();
            let df = dataflows::gemm_dataflows(pe, pe * pe)[0].clone();
            g.bench_with_input(BenchmarkId::from_parameter(label), &ic, |b, ic| {
                b.iter(|| analyze_fitted(&op, &df, ic.clone(), 8.0, 1).unwrap())
            });
        }
    }
    g.finish();
}

fn bench_maestro(c: &mut Criterion) {
    let op = kernels::conv2d(32, 32, 8, 8, 3, 3).unwrap();
    let df = dataflows::conv_dataflows(8, 64)
        .into_iter()
        .find(|d| tenet_maestro::representable(d, &op))
        .unwrap();
    let mapping = to_data_centric(&df, &op).unwrap();
    let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Mesh, 8.0);
    c.bench_function("fig08_maestro_modeling", |b| {
        b.iter(|| evaluate(&op, &mapping, &arch))
    });
}

criterion_group!(benches, bench_tenet, bench_maestro);
criterion_main!(benches);
