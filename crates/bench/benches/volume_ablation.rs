//! Ablation: cost of the volume metrics as the design choices DESIGN.md
//! calls out are varied — reuse window width, interconnect complexity,
//! and skewed vs rectangular dataflows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tenet_core::{Analysis, AnalysisOptions, ArchSpec, Interconnect};
use tenet_workloads::{dataflows, kernels};

fn bench_window(c: &mut Criterion) {
    let op = kernels::conv2d(32, 16, 8, 8, 3, 3).unwrap();
    let df = dataflows::conv_dataflows(8, 64)
        .into_iter()
        .find(|d| d.name() == Some("(KC-P | OY,OX-T)"))
        .unwrap();
    let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Mesh, 8.0);
    let mut g = c.benchmark_group("ablation_reuse_window");
    g.sample_size(10);
    for w in [1u32, 4, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let opts = AnalysisOptions {
                    reuse_window: w,
                    ..Default::default()
                };
                let a = Analysis::with_options(&op, &df, &arch, opts).unwrap();
                a.volumes("B").unwrap()
            })
        });
    }
    g.finish();
}

fn bench_skew(c: &mut Criterion) {
    let op = kernels::gemm(64, 64, 64).unwrap();
    let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 8.0);
    let mut g = c.benchmark_group("ablation_skew");
    g.sample_size(10);
    for df in dataflows::gemm_dataflows(8, 64) {
        if df.n_space() != 2 {
            continue;
        }
        let name = df.name().unwrap().to_string();
        g.bench_with_input(BenchmarkId::from_parameter(name), &df, |b, df| {
            b.iter(|| {
                let a = Analysis::new(&op, df, &arch).unwrap();
                a.volumes("A").unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_window, bench_skew);
criterion_main!(benches);
