//! Microbenchmarks of the integer-set substrate: the operations the paper
//! lists in Section V-C (reverse, apply_range, card) on representative
//! relation shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use tenet_isl::Map;

fn bench_isl(c: &mut Criterion) {
    let theta = Map::parse(
        "{ S[i,j,k] -> ST[i mod 8, j mod 8, floor(i/8), floor(j/8), i mod 8 + j mod 8 + k] \
         : 0 <= i < 64 and 0 <= j < 64 and 0 <= k < 64 }",
    )
    .unwrap();
    let access =
        Map::parse("{ S[i,j,k] -> A[i,k] : 0 <= i < 64 and 0 <= j < 64 and 0 <= k < 64 }").unwrap();

    c.bench_function("isl_reverse", |b| b.iter(|| theta.reverse()));
    c.bench_function("isl_apply_range", |b| {
        b.iter(|| theta.reverse().apply_range(&access).unwrap())
    });
    let adf = theta.reverse().apply_range(&access).unwrap();
    c.bench_function("isl_card_assignment", |b| b.iter(|| adf.card().unwrap()));
    c.bench_function("isl_card_skewed_box", |b| {
        let s = tenet_isl::Set::parse(
            "{ A[x,y,z] : 0 <= x < 100 and 0 <= y < 100 and 0 <= z < 100 and x + y + z < 150 }",
        )
        .unwrap();
        b.iter(|| s.card().unwrap())
    });
    c.bench_function("isl_subtract", |b| {
        let a = tenet_isl::Set::parse("{ A[x,y] : 0 <= x < 50 and 0 <= y < 50 }").unwrap();
        let c2 = tenet_isl::Set::parse("{ A[x,y] : 10 <= x < 40 and 5 <= y < 45 }").unwrap();
        b.iter(|| a.subtract(&c2).unwrap().card().unwrap())
    });
    c.bench_function("isl_parse", |b| {
        b.iter(|| {
            Map::parse(
                "{ S[k,c,ox,oy,rx,ry] -> PE[k mod 8, c mod 8] : 0 <= k < 64 and 0 <= c < 64 }",
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_isl);
criterion_main!(benches);
