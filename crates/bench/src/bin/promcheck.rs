//! `promcheck` — conformance checker for the observability surface.
//!
//! Points at a running `tenet serve` or `tenet route` and asserts two
//! contracts end to end:
//!
//! 1. **`GET /metrics` is well-formed Prometheus text**: every sample
//!    line parses, every sample belongs to a `# TYPE`-declared family,
//!    and every histogram family is internally consistent — bucket
//!    counts monotone nondecreasing along increasing `le` bounds, a
//!    terminal `le="+Inf"` bucket, and a `_count` series equal to it,
//!    with `_sum` present. This is what a real scraper would require.
//! 2. **Traces assemble across tiers**: one `POST /v1/analyze` is sent
//!    with an explicit `X-Tenet-Trace-Id`, the response must echo it,
//!    and `GET /v1/trace/<id>` must return a timeline with at least
//!    `--min-spans` spans (default 4) spanning at least `--min-tiers`
//!    distinct tiers (default 2 — router plus worker; pass
//!    `--min-tiers 1` for a single-process worker target).
//!
//! Exits 0 when both hold, 1 on usage errors, 2 on a failed assertion —
//! the CI `obs-smoke` gate.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;
use tenet_core::json::Json;
use tenet_server::http::{Headers, ResponseReader};

/// The explicit trace id the probe request carries (16 hex digits, so
/// the echoed header must match it byte for byte).
const TRACE_ID: &str = "feedfacecafebeef";

fn main() {
    let mut target = None;
    let mut min_spans = 4usize;
    let mut min_tiers = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--min-spans" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => min_spans = n,
                None => usage("--min-spans needs an integer"),
            },
            "--min-tiers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => min_tiers = n,
                None => usage("--min-tiers needs an integer"),
            },
            other if !other.starts_with("--") && target.is_none() => {
                target = Some(other.to_string())
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(target) = target else {
        usage("missing target");
    };
    let addr = target
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string();

    let metrics = match request(&addr, "GET", "/metrics", "", &[]) {
        Ok((200, _, body)) => String::from_utf8_lossy(&body).into_owned(),
        Ok((status, _, _)) => fail(&format!("GET /metrics returned {status}")),
        Err(e) => fail(&format!("GET /metrics failed: {e}")),
    };
    match check_exposition(&metrics) {
        Ok(summary) => println!("promcheck: /metrics ok ({summary})"),
        Err(e) => fail(&format!("/metrics malformed: {e}")),
    }

    match check_trace(&addr, min_spans, min_tiers) {
        Ok(summary) => println!("promcheck: trace ok ({summary})"),
        Err(e) => fail(&format!("trace check failed: {e}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("promcheck: {msg}");
    eprintln!("usage: promcheck http://HOST:PORT [--min-spans N] [--min-tiers N]");
    std::process::exit(1);
}

fn fail(msg: &str) -> ! {
    eprintln!("promcheck: FAILED: {msg}");
    std::process::exit(2);
}

/// One request on a fresh connection; returns status, lowercased
/// headers, body.
fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<(u16, Headers, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut reader = ResponseReader::new(stream.try_clone()?);
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: promcheck\r\n");
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!(
        "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    ));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    reader.next_response_with_headers()
}

/// One parsed sample line: family-qualified name, labels, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value separator in `{line}`"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("unparseable value in `{line}`"))?;
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let inner = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in `{line}`"))?;
            let mut labels = Vec::new();
            for pair in inner.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad label `{pair}` in `{line}`"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value in `{line}`"))?;
                labels.push((k.to_string(), v.to_string()));
            }
            (name.to_string(), labels)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name in `{line}`"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// The family a sample belongs to: histogram series map back to the
/// declared base name.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Validates a Prometheus text exposition; returns a short summary.
fn check_exposition(text: &str) -> Result<String, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or("empty TYPE line")?;
            let kind = it
                .next()
                .ok_or_else(|| format!("TYPE `{name}` has no kind"))?;
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("family `{name}` declared twice"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        samples.push(parse_sample(line)?);
    }
    if samples.is_empty() {
        return Err("no samples".into());
    }

    // Every sample must belong to a declared family, and histogram
    // series suffixes must only hang off histogram families.
    for s in &samples {
        let family = family_of(&s.name);
        let declared = types
            .get(family)
            .or_else(|| types.get(&s.name))
            .ok_or_else(|| format!("sample `{}` has no # TYPE declaration", s.name))?;
        if s.name != family && !types.contains_key(&s.name) && declared != "histogram" {
            return Err(format!(
                "series `{}` hangs off non-histogram family `{family}`",
                s.name
            ));
        }
    }

    // Histogram internal consistency, per label-set (minus `le`).
    let mut histograms = 0usize;
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        histograms += 1;
        // Buckets grouped by their non-le labels, in exposition order.
        let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let group_key = |labels: &[(String, String)]| {
            labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        for s in samples
            .iter()
            .filter(|s| s.name == format!("{family}_bucket"))
        {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("`{family}_bucket` sample without le label"))?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .map_err(|_| format!("`{family}` has unparseable le `{le}`"))?
            };
            groups
                .entry(group_key(&s.labels))
                .or_default()
                .push((bound, s.value));
        }
        if groups.is_empty() {
            return Err(format!("histogram `{family}` has no buckets"));
        }
        for (key, buckets) in &groups {
            let mut prev_bound = f64::NEG_INFINITY;
            let mut prev_count = -1.0;
            for &(bound, count) in buckets {
                if bound <= prev_bound {
                    return Err(format!("`{family}{{{key}}}` le bounds not increasing"));
                }
                if count < prev_count {
                    return Err(format!("`{family}{{{key}}}` bucket counts not cumulative"));
                }
                (prev_bound, prev_count) = (bound, count);
            }
            if prev_bound != f64::INFINITY {
                return Err(format!("`{family}{{{key}}}` missing le=\"+Inf\" bucket"));
            }
            let count_series = samples
                .iter()
                .find(|s| s.name == format!("{family}_count") && group_key(&s.labels) == *key)
                .ok_or_else(|| format!("`{family}{{{key}}}` has no _count series"))?;
            if count_series.value != prev_count {
                return Err(format!(
                    "`{family}{{{key}}}` _count {} != +Inf bucket {prev_count}",
                    count_series.value
                ));
            }
            if !samples
                .iter()
                .any(|s| s.name == format!("{family}_sum") && group_key(&s.labels) == *key)
            {
                return Err(format!("`{family}{{{key}}}` has no _sum series"));
            }
        }
    }
    if histograms == 0 {
        return Err("no histogram families".into());
    }
    if !types.contains_key("tenet_worker_requests_total") {
        return Err("missing tenet_worker_requests_total".into());
    }
    Ok(format!(
        "{} samples, {} families, {histograms} histogram(s)",
        samples.len(),
        types.len()
    ))
}

/// Sends a traced analyze request, then asserts the assembled timeline
/// is deep and wide enough.
fn check_trace(addr: &str, min_spans: usize, min_tiers: usize) -> Result<String, String> {
    let problem = "for (i = 0; i < 4; i++)\n\
         \x20 for (j = 0; j < 4; j++)\n\
         \x20   for (k = 0; k < 4; k++)\n\
         \x20     S: Y[i][j] += A[i][k] * B[k][j];\n\n\
         { S[i,j,k] -> (PE[i,j] | T[i + j + k]) }\n\n\
         arch \"4x4\" { array = [4, 4] interconnect = systolic2d bandwidth = 8 }\n";
    let body = Json::obj([("problem", Json::from(problem))]).to_string();
    let (status, headers, _) = request(
        addr,
        "POST",
        "/v1/analyze",
        &body,
        &[("X-Tenet-Trace-Id", TRACE_ID)],
    )
    .map_err(|e| format!("traced analyze failed: {e}"))?;
    if status != 200 {
        return Err(format!("traced analyze returned {status}"));
    }
    let echoed = headers
        .iter()
        .find(|(k, _)| k == "x-tenet-trace-id")
        .map(|(_, v)| v.as_str())
        .ok_or("response did not echo X-Tenet-Trace-Id")?;
    if echoed != TRACE_ID {
        return Err(format!("echoed trace id `{echoed}` != `{TRACE_ID}`"));
    }

    let (status, _, body) = request(addr, "GET", &format!("/v1/trace/{TRACE_ID}"), "", &[])
        .map_err(|e| format!("trace fetch failed: {e}"))?;
    if status != 200 {
        return Err(format!("GET /v1/trace/{TRACE_ID} returned {status}"));
    }
    let doc = Json::parse(std::str::from_utf8(&body).map_err(|e| e.to_string())?)
        .map_err(|e| format!("trace body is not JSON: {e}"))?;
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("trace body has no records array")?;
    let mut spans = 0usize;
    let mut tiers = BTreeSet::new();
    for rec in records {
        if let Some(tier) = rec.get("tier").and_then(Json::as_str) {
            tiers.insert(tier.to_string());
        }
        spans += rec
            .get("spans")
            .and_then(Json::as_arr)
            .map(<[Json]>::len)
            .unwrap_or(0);
    }
    if spans < min_spans {
        return Err(format!("only {spans} span(s), need >= {min_spans}"));
    }
    if tiers.len() < min_tiers {
        return Err(format!(
            "only {} tier(s) ({:?}), need >= {min_tiers}",
            tiers.len(),
            tiers
        ));
    }
    Ok(format!(
        "{} record(s), {spans} spans across tiers {:?}",
        records.len(),
        tiers
    ))
}
