//! Hardware design-space exploration (the right branch of Figure 2):
//! co-explores PE array shapes, interconnects, and scratchpad bandwidths
//! for GEMM and 2D-CONV under a fixed PE budget, printing the best
//! (architecture, dataflow) pairs.
//!
//! Run with: `cargo run --release -p tenet-bench --bin hardware_dse`

use tenet_core::Interconnect;
use tenet_dse::hardware::{co_explore, HardwareSpace};
use tenet_workloads::kernels;

fn main() {
    // Scaled workloads keep the sweep in the minutes range; the paper's
    // own DSE budget is "under an hour" for 25,920 dataflows.
    let space = HardwareSpace {
        pe_budget: 16,
        interconnects: vec![
            Interconnect::Systolic1D,
            Interconnect::Systolic2D,
            Interconnect::Mesh,
        ],
        bandwidths: vec![16.0],
        include_1d: true,
        max_candidates: 24,
        threads: 4,
    };

    for (label, op) in [
        ("GEMM 16x16x16", kernels::gemm(16, 16, 16).unwrap()),
        (
            "2D-CONV K=8 C=8 8x8 r3x3",
            kernels::conv2d(8, 8, 8, 8, 3, 3).unwrap(),
        ),
    ] {
        println!("== {label}: hardware DSE under a 16-PE budget ==");
        println!(
            "{:<18} {:>6} {:>10} {:>8} {:>10} {:>10} {:>7}",
            "architecture", "bw", "latency", "util", "SBW", "energy", "cands"
        );
        let points = co_explore(&op, &space).expect("exploration succeeds");
        for p in points.iter().take(12) {
            let r = &p.best.report;
            println!(
                "{:<18} {:>6.0} {:>10.0} {:>8.2} {:>10.2} {:>10.0} {:>7}",
                p.arch.name,
                p.arch.bandwidth,
                r.latency.total(),
                r.utilization.average,
                r.bandwidth.scratchpad,
                r.energy.total(),
                p.valid_candidates,
            );
        }
        let best = &points[0];
        println!(
            "best: {} @ {:.0} elem/cycle with dataflow PE[{}] | T[{}]\n",
            best.arch.name,
            best.arch.bandwidth,
            best.best.dataflow.space_exprs().join(", "),
            best.best.dataflow.time_exprs().join(", "),
        );
    }
}
