//! Figure 7: normalized latency and bandwidth for the four real-world
//! applications of Table IV (GoogLeNet, MobileNet, ALS, Transformer),
//! TENET vs the MAESTRO baseline.
//!
//! Latency is normalized to the ideal latency (MACs / #multipliers);
//! bandwidth is UniqueVolume / compute delay. MAESTRO "cannot provide the
//! results for the complete ALS and Transformer application" (its notation
//! lacks the operators), so those columns print `x` — as in the paper.

use tenet_bench::analyze_fitted;
use tenet_core::{ArchSpec, Interconnect};
use tenet_maestro::{evaluate, representable, to_data_centric};
use tenet_workloads::{dataflows, networks};

struct Row {
    app: &'static str,
    tenet_lat: f64,
    tenet_bw: f64,
    maestro_lat: Option<f64>,
    maestro_bw: Option<f64>,
}

/// Candidate dataflows for a layer: the Table III conv dataflows for
/// standard/pointwise layers; channel/output-parallel schedules for
/// depthwise layers (which have no `k` dimension).
fn candidates(kind: networks::ConvKind) -> Vec<tenet_core::Dataflow> {
    use tenet_core::Dataflow;
    if kind == networks::ConvKind::Depthwise {
        vec![
            Dataflow::new(
                ["c mod 8".to_string(), "ox mod 8".to_string()],
                vec![
                    "floor(c/8)".to_string(),
                    "floor(ox/8)".to_string(),
                    "ry".to_string(),
                    "rx".to_string(),
                    "oy".to_string(),
                ],
            )
            .named("(COX-P | OY-T)"),
            Dataflow::new(
                ["c mod 8".to_string(), "oy mod 8".to_string()],
                vec![
                    "floor(c/8)".to_string(),
                    "floor(oy/8)".to_string(),
                    "ry".to_string(),
                    "rx".to_string(),
                    "ox".to_string(),
                ],
            )
            .named("(COY-P | OX-T)"),
        ]
    } else {
        dataflows::conv_dataflows(8, 64)
            .into_iter()
            .filter(|d| d.n_space() == 2)
            .collect()
    }
}

fn conv_app(name: &'static str, layers: &[networks::ConvShape]) -> Row {
    let mut tenet_lat = 0.0;
    let mut tenet_bw: f64 = 0.0;
    let mut maestro_lat = 0.0;
    let mut maestro_bw: f64 = 0.0;
    let mut ideal = 0.0;
    let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Mesh, 8.0);
    for l in layers {
        let op = l.op().unwrap();
        // TENET: best candidate dataflow for this layer.
        let mut best: Option<(f64, f64)> = None;
        for df in candidates(l.kind) {
            if let Ok(r) = analyze_fitted(&op, &df, Interconnect::Mesh, 8.0, 1) {
                let lat = r.latency.total();
                if best.is_none() || lat < best.unwrap().0 {
                    best = Some((lat, r.bandwidth.scratchpad));
                }
            }
        }
        let (lat, bw) = best.expect("at least one conv dataflow applies");
        let w = l.count as f64;
        tenet_lat += w * lat;
        tenet_bw = tenet_bw.max(bw);
        ideal += w * (op.instances().unwrap() as f64) / 64.0;
        // MAESTRO: the best dataflow *expressible in data-centric
        // notation*, evaluated with the exact model (the comparison is
        // about notation expressiveness, as in Figure 6). The baseline
        // cost model is still exercised to confirm the mapping converts.
        let mut mbest: Option<(f64, f64)> = None;
        for df in candidates(l.kind) {
            if !representable(&df, &op) {
                continue;
            }
            if let Some(m) = to_data_centric(&df, &op) {
                let _ = evaluate(&op, &m, &arch);
            }
            if let Ok(r) = analyze_fitted(&op, &df, Interconnect::Mesh, 8.0, 1) {
                let lat = r.latency.total();
                if mbest.is_none() || lat < mbest.unwrap().0 {
                    mbest = Some((lat, r.bandwidth.scratchpad));
                }
            }
        }
        let (mlat, mbw) = mbest.expect("a representable conv dataflow exists");
        maestro_lat += w * mlat;
        maestro_bw = maestro_bw.max(mbw);
    }
    Row {
        app: name,
        tenet_lat: tenet_lat / ideal,
        tenet_bw,
        maestro_lat: Some(maestro_lat / ideal),
        maestro_bw: Some(maestro_bw),
    }
}

fn main() {
    let mut rows = Vec::new();
    // Spatial extents are halved to keep the dataflow sweep fast; the
    // latency normalization (vs ideal MACs/PE) is scale-invariant.
    let google: Vec<_> = networks::googlenet().iter().map(|l| l.scaled(2)).collect();
    let mobile: Vec<_> = networks::mobilenet().iter().map(|l| l.scaled(2)).collect();
    rows.push(conv_app("GoogLeNet", &google));
    rows.push(conv_app("MobileNet", &mobile));

    // ALS (MTTKRP): TENET only. The reduced shape keeps the run short;
    // extents scale volumes linearly and leave normalized metrics stable.
    {
        let op = networks::als_mttkrp_small().unwrap();
        let mut best: Option<(f64, f64)> = None;
        for df in dataflows::mttkrp_dataflows(8) {
            if let Ok(r) = analyze_fitted(&op, &df, Interconnect::Mesh, 8.0, 1) {
                let lat = r.latency.total();
                if best.is_none() || lat < best.unwrap().0 {
                    best = Some((lat, r.bandwidth.scratchpad));
                }
            }
        }
        let (lat, bw) = best.unwrap();
        let ideal = op.instances().unwrap() as f64 / 64.0;
        rows.push(Row {
            app: "ALS",
            tenet_lat: lat / ideal,
            tenet_bw: bw,
            maestro_lat: None,
            maestro_bw: None,
        });
    }
    // Transformer (MMc): TENET only.
    {
        let op = networks::transformer_mmc().unwrap();
        let mut best: Option<(f64, f64)> = None;
        for df in dataflows::mmc_dataflows(8) {
            if let Ok(r) = analyze_fitted(&op, &df, Interconnect::Mesh, 8.0, 1) {
                let lat = r.latency.total();
                if best.is_none() || lat < best.unwrap().0 {
                    best = Some((lat, r.bandwidth.scratchpad));
                }
            }
        }
        let (lat, bw) = best.unwrap();
        let ideal = op.instances().unwrap() as f64 / 64.0;
        rows.push(Row {
            app: "Transformer",
            tenet_lat: lat / ideal,
            tenet_bw: bw,
            maestro_lat: None,
            maestro_bw: None,
        });
    }

    println!(
        "Figure 7: large-scale applications (latency normalized to ideal; bandwidth in elem/cycle)"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "app", "TENET lat", "TENET bw", "MAESTRO lat", "MAESTRO bw"
    );
    for r in &rows {
        println!(
            "{:<12} {:>12.3} {:>12.2} {:>14} {:>14}",
            r.app,
            r.tenet_lat,
            r.tenet_bw,
            r.maestro_lat.map_or("x".into(), |v| format!("{v:.3}")),
            r.maestro_bw.map_or("x".into(), |v| format!("{v:.2}")),
        );
    }
}
