//! Figure 8: wall-clock modeling time for a single dataflow, TENET vs the
//! MAESTRO-style baseline, across PE array sizes and interconnects.
//!
//! The paper reports ~1e-2 s for MAESTRO and ~1e-1 s for TENET, with
//! TENET's time growing with interconnect complexity and staying largely
//! insensitive to array size. Absolute numbers depend on the host; the
//! relative shape is what this binary regenerates. (Criterion-grade
//! timings: `cargo bench --bench modeling_time`.)

use std::time::Instant;
use tenet_bench::analyze_fitted;
use tenet_core::{ArchSpec, Interconnect};
use tenet_maestro::{evaluate, to_data_centric};
use tenet_workloads::{dataflows, kernels};

fn time_tenet(op: &tenet_core::TensorOp, df: &tenet_core::Dataflow, ic: Interconnect) -> f64 {
    let t0 = Instant::now();
    let _ = analyze_fitted(op, df, ic, 8.0, 1).unwrap();
    t0.elapsed().as_secs_f64()
}

fn main() {
    println!("Figure 8: modeling time for a single dataflow (seconds)");
    println!(
        "{:<10} {:<8} {:>12} {:>12}",
        "kernel", "array", "interconnect", "time(s)"
    );
    for (kname, pe) in [
        ("2D-CONV", 4i64),
        ("2D-CONV", 8),
        ("2D-CONV", 16),
        ("GEMM", 4),
        ("GEMM", 8),
        ("GEMM", 16),
    ] {
        for ic in [
            Interconnect::Systolic1D,
            Interconnect::Systolic2D,
            Interconnect::Mesh,
        ] {
            let label = ic.label();
            let t = if kname == "GEMM" {
                let op = kernels::gemm(32, 32, 32).unwrap();
                let df = &dataflows::gemm_dataflows(pe, pe * pe)[0];
                time_tenet(&op, df, ic)
            } else {
                let op = kernels::conv2d(32, 32, 8, 8, 3, 3).unwrap();
                let df = &dataflows::conv_dataflows(pe, pe * pe)[0];
                time_tenet(&op, df, ic)
            };
            println!(
                "{kname:<10} {:<8} {label:>12} {t:>12.4}",
                format!("{pe}x{pe}")
            );
        }
    }
    // MAESTRO baseline modeling time (polynomials: near-instant).
    let op = kernels::conv2d(32, 32, 8, 8, 3, 3).unwrap();
    let df = dataflows::conv_dataflows(8, 64)
        .into_iter()
        .find(|d| tenet_maestro::representable(d, &op))
        .unwrap();
    let mapping = to_data_centric(&df, &op).unwrap();
    let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Mesh, 8.0);
    let t0 = Instant::now();
    let iters = 1000;
    for _ in 0..iters {
        let _ = evaluate(&op, &mapping, &arch);
    }
    let t = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{:<10} {:<8} {:>12} {t:>12.6}", "2D-CONV", "8x8", "MAESTRO");
    println!();
    println!("Expected shape: MAESTRO orders of magnitude faster; TENET time grows");
    println!("with interconnect complexity (mesh > 2D-sys > 1D-sys), not array size.");
}
