//! `servload` — closed-loop load generator for the analysis service,
//! single-process or sharded.
//!
//! N client threads each hold one keep-alive connection and drive a
//! fixed request mix (several `analyze` variants, a `dse` sweep, and
//! periodic `stats` probes) as fast as the target answers. Latency is
//! recorded per request; dedup effectiveness comes from the target's own
//! `/v1/stats` deltas — for a router target, the merged cluster document
//! plus the per-shard hit distribution. Results are written as
//! `BENCH_server.json` at the repo root — a committed artifact tracked
//! across PRs, like the other `BENCH_*.json` files.
//!
//! Modes:
//!
//! * **Self-hosted** (no target argument): spins up an in-process
//!   `tenet_server::Server` on an ephemeral port, loads it, then drains
//!   it — the reproducible configuration the committed artifact uses.
//!   The drain writes a warm-state snapshot, and a second phase
//!   (`restart_replay`) boots a fresh process from that file and replays
//!   the identical mix: a restored shard must answer its old keys warm,
//!   so the phase's p50 should sit in the single phase's warm regime
//!   (recorded as `vs_single_p50`) and the restored process must serve
//!   the whole replay without a single cold recompute
//!   (`restored_cold_misses`).
//!   With `--router`, two more phases boot a `tenet_router::Router` and
//!   load it identically — once over two HTTP workers (`router_http`)
//!   and once over two in-process cores behind the local transport
//!   (`router_local`) — so the artifact records the single-process
//!   baseline and both sharded transports side by side, including each
//!   router phase's throughput as a fraction of the single baseline.
//! * **External** (`servload http://127.0.0.1:8091 ...`): targets an
//!   already-running `tenet serve` — or, with `--router`, a running
//!   `tenet route` (the CI cluster-smoke step).
//!
//! `--smoke` asserts zero 5xx responses and a nonzero success count —
//! plus, in router mode, that more than one shard carried traffic and
//! that every loaded shard served warm dedup hits — exiting nonzero
//! otherwise (and skips the artifact unless `--out` is given).
//!
//! Robustness knobs: `--deadline-ms N` stamps every data-path request
//! with `X-Tenet-Deadline-Ms: N`, and `--fault-plan key=value[,...]`
//! (repeatable, self-hosted `--router` only) wraps worker transports in
//! seeded [`FaultTransport`]s — the chaos-smoke configuration. Each
//! phase records its `failures` (deadline-clipped 504s, admission 429s,
//! explicitly degraded partials) alongside the status classes; 504s are
//! deliberately not 5xx for the smoke gate, since an honored deadline is
//! the contract working.
//!
//! `--trace` additionally harvests each response's
//! `X-Tenet-Server-Timing` header and records the per-phase latency
//! breakdown (queue, parse, dedup, compute, isl, serialize, …) as a
//! `phases` object in the artifact — mean microseconds and sample count
//! per phase, the attribution view next to the end-to-end quantiles.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tenet_core::json::Json;
use tenet_router::{
    FaultPlan, FaultTransport, HttpTransport, LocalTransport, Router, RouterConfig, Transport,
    WorkerSpec,
};
use tenet_server::http::{Headers, ResponseReader};
use tenet_server::{Server, ServerConfig, WorkerCore};

/// The gemm problem text the analyze variants are built from.
fn gemm_problem(n: usize, bandwidth: usize) -> String {
    format!(
        "for (i = 0; i < {n}; i++)\n\
         \x20 for (j = 0; j < {n}; j++)\n\
         \x20   for (k = 0; k < {n}; k++)\n\
         \x20     S: Y[i][j] += A[i][k] * B[k][j];\n\n\
         {{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }}\n\n\
         arch \"{n}x{n}\" {{ array = [{n}, {n}] interconnect = systolic2d bandwidth = {bandwidth} }}\n"
    )
}

/// One request of the mix: method, path, body.
#[derive(Clone)]
struct Shot {
    method: &'static str,
    path: &'static str,
    body: String,
}

/// The committed mixed workload: six analyze variants over three problem
/// shapes × two reuse windows, plus one dse sweep. Stats probes are
/// injected separately by the client loop.
fn workload() -> Vec<Shot> {
    let mut shots = Vec::new();
    for (n, bw) in [(4usize, 8usize), (6, 12), (8, 16)] {
        for window in [1u64, 2] {
            shots.push(Shot {
                method: "POST",
                path: "/v1/analyze",
                body: Json::obj([
                    ("problem", Json::from(gemm_problem(n, bw))),
                    ("window", Json::from(window)),
                ])
                .to_string(),
            });
        }
    }
    shots.push(Shot {
        method: "POST",
        path: "/v1/dse",
        body: Json::obj([
            ("problem", Json::from(gemm_problem(4, 8))),
            ("pe", Json::from(4u64)),
            ("top", Json::from(3u64)),
            ("threads", Json::from(2u64)),
        ])
        .to_string(),
    });
    shots
}

struct Cli {
    target: Option<String>,
    threads: usize,
    requests: usize,
    out: Option<String>,
    smoke: bool,
    router: bool,
    trace: bool,
    deadline_ms: Option<u64>,
    fault_plans: Vec<FaultPlan>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        target: None,
        threads: 4,
        requests: 250,
        out: None,
        smoke: false,
        router: false,
        trace: false,
        deadline_ms: None,
        fault_plans: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                cli.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--threads needs a positive integer")?
            }
            "--requests" => {
                cli.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--requests needs a positive integer")?
            }
            "--out" => cli.out = Some(args.next().ok_or("--out needs a path")?),
            "--smoke" => cli.smoke = true,
            "--router" => cli.router = true,
            "--trace" => cli.trace = true,
            "--deadline-ms" => {
                cli.deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or("--deadline-ms needs a positive integer")?,
                )
            }
            "--fault-plan" => {
                let spec = args.next().ok_or("--fault-plan needs key=value[,...]")?;
                cli.fault_plans.push(FaultPlan::parse(&spec)?);
            }
            other if !other.starts_with("--") && cli.target.is_none() => {
                cli.target = Some(other.to_string())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !cli.fault_plans.is_empty() && cli.target.is_some() {
        return Err(
            "--fault-plan wraps self-hosted worker transports; it cannot reach an external target"
                .into(),
        );
    }
    if !cli.fault_plans.is_empty() && !cli.router {
        return Err(
            "--fault-plan needs --router (faults are injected at the router's transports)".into(),
        );
    }
    Ok(cli)
}

/// Wraps worker `i`'s transport in every fault plan that targets it
/// (`worker=N` scoping, `None` = all workers). Wrapping composes.
fn wrap_faults(mut inner: Box<dyn Transport>, i: usize, plans: &[FaultPlan]) -> Box<dyn Transport> {
    for plan in plans {
        if plan.only_worker.is_none_or(|w| w == i) {
            inner = Box::new(FaultTransport::new(inner, plan.clone()));
        }
    }
    inner
}

/// Normalizes `http://host:port/` or `host:port` to `host:port`.
fn normalize_addr(target: &str) -> String {
    target
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string()
}

/// Sends one request on an open connection and reads the response.
/// `deadline_ms` rides along as `X-Tenet-Deadline-Ms` on data-path
/// shots (analyze/dse); operator probes are never deadlined.
fn send(
    stream: &mut TcpStream,
    reader: &mut ResponseReader<TcpStream>,
    shot: &Shot,
    deadline_ms: Option<u64>,
) -> std::io::Result<(u16, Vec<u8>)> {
    write_shot(stream, shot, deadline_ms, None)?;
    reader.next_response()
}

/// Like [`send`] but opts the request into tracing (span recording is
/// gated on a client-sent id) and returns the response headers, for
/// runs that harvest the `X-Tenet-Server-Timing` phase breakdown.
fn send_traced(
    stream: &mut TcpStream,
    reader: &mut ResponseReader<TcpStream>,
    shot: &Shot,
    deadline_ms: Option<u64>,
    trace_id: u64,
) -> std::io::Result<(u16, Headers, Vec<u8>)> {
    write_shot(stream, shot, deadline_ms, Some(trace_id))?;
    reader.next_response_with_headers()
}

fn write_shot(
    stream: &mut TcpStream,
    shot: &Shot,
    deadline_ms: Option<u64>,
    trace_id: Option<u64>,
) -> std::io::Result<()> {
    let data_path = shot.path == "/v1/analyze" || shot.path == "/v1/dse";
    let deadline = match deadline_ms {
        Some(ms) if data_path => format!("X-Tenet-Deadline-Ms: {ms}\r\n"),
        _ => String::new(),
    };
    let trace = match trace_id {
        Some(id) if data_path => format!("X-Tenet-Trace-Id: {id:x}\r\n"),
        _ => String::new(),
    };
    let head = format!(
        "{} {} HTTP/1.1\r\nHost: servload\r\nContent-Type: application/json\r\n{deadline}{trace}Content-Length: {}\r\n\r\n",
        shot.method,
        shot.path,
        shot.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(shot.body.as_bytes())
}

/// Folds one `Server-Timing` header value (`name;dur=<ms>,...`) into a
/// per-phase `(total_ms, samples)` accumulator.
fn accumulate_server_timing(value: &str, acc: &mut BTreeMap<String, (f64, u64)>) {
    for entry in value.split(',') {
        let mut parts = entry.trim().split(';');
        let Some(name) = parts.next().filter(|n| !n.is_empty()) else {
            continue;
        };
        for attr in parts {
            if let Some(ms) = attr.trim().strip_prefix("dur=") {
                if let Ok(ms) = ms.parse::<f64>() {
                    let slot = acc.entry(name.to_string()).or_insert((0.0, 0));
                    slot.0 += ms;
                    slot.1 += 1;
                }
            }
        }
    }
}

/// Opens a keep-alive connection pair (write half + buffered read half).
fn connect(addr: &str) -> std::io::Result<(TcpStream, ResponseReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    stream.set_nodelay(true)?;
    let reader = ResponseReader::new(stream.try_clone()?);
    Ok((stream, reader))
}

fn fetch_stats(addr: &str) -> Option<Json> {
    let (mut s, mut r) = connect(addr).ok()?;
    let shot = Shot {
        method: "GET",
        path: "/v1/stats",
        body: String::new(),
    };
    let (status, body) = send(&mut s, &mut r, &shot, None).ok()?;
    if status != 200 {
        return None;
    }
    Json::parse(std::str::from_utf8(&body).ok()?).ok()
}

struct ThreadResult {
    latencies_us: Vec<u64>,
    by_class: [u64; 4], // 2xx, 4xx, 5xx/other, 504-deadline
    /// 504s: requests the deadline clipped entirely. Deliberately not a
    /// 5xx for smoke purposes — an honored deadline is the contract
    /// working, not the service failing.
    deadline_exceeded: u64,
    /// 429s: requests the router's admission control shed.
    rejected_429: u64,
    /// 200s whose body was an explicit partial (`"truncated":true`).
    degraded: u64,
    /// Per-phase `(total_ms, samples)` from `X-Tenet-Server-Timing`
    /// headers; empty unless the run collects them (`--trace`).
    phase_ms: BTreeMap<String, (f64, u64)>,
}

fn client_loop(
    addr: &str,
    shots: &[Shot],
    requests: usize,
    seed: usize,
    deadline_ms: Option<u64>,
    trace: bool,
) -> ThreadResult {
    let mut result = ThreadResult {
        latencies_us: Vec::with_capacity(requests),
        by_class: [0; 4],
        deadline_exceeded: 0,
        rejected_429: 0,
        degraded: 0,
        phase_ms: BTreeMap::new(),
    };
    let stats_probe = Shot {
        method: "GET",
        path: "/v1/stats",
        body: String::new(),
    };
    let (mut stream, mut reader) = match connect(addr) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("servload: connect failed: {e}");
            result.by_class[2] += requests as u64;
            return result;
        }
    };
    for i in 0..requests {
        // Every 32nd request probes live stats; the rest walk the mix,
        // phase-shifted per thread so leaders interleave with waiters.
        let shot = if i % 32 == 31 {
            &stats_probe
        } else {
            &shots[(seed + i) % shots.len()]
        };
        let t0 = Instant::now();
        let outcome = if trace {
            // A unique nonzero id per request (thread in the high bits);
            // the server only records spans for requests that carry one.
            let trace_id = ((seed as u64 + 1) << 32) | i as u64;
            send_traced(&mut stream, &mut reader, shot, deadline_ms, trace_id).map(
                |(status, headers, body)| {
                    for (name, value) in &headers {
                        if name == "x-tenet-server-timing" {
                            accumulate_server_timing(value, &mut result.phase_ms);
                        }
                    }
                    (status, body)
                },
            )
        } else {
            send(&mut stream, &mut reader, shot, deadline_ms)
        };
        match outcome {
            Ok((status, body)) => {
                result
                    .latencies_us
                    .push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                let class = match status {
                    200..=299 => {
                        if body
                            .windows(b"\"truncated\":true".len())
                            .any(|w| w == b"\"truncated\":true")
                        {
                            result.degraded += 1;
                        }
                        0
                    }
                    429 => {
                        result.rejected_429 += 1;
                        1
                    }
                    400..=499 => 1,
                    504 => {
                        result.deadline_exceeded += 1;
                        3
                    }
                    _ => 2,
                };
                result.by_class[class] += 1;
            }
            Err(e) => {
                eprintln!("servload: request failed: {e}");
                result.by_class[2] += 1;
                // Reconnect and continue; a dropped keep-alive connection
                // must not sink the whole thread's sample.
                match connect(addr) {
                    Ok(pair) => (stream, reader) = pair,
                    Err(_) => break,
                }
            }
        }
    }
    result
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// The dedup counters of a stats document — a worker's own, or the
/// merged cluster view when the target is a router.
fn dedup_counts(stats: &Json) -> (u64, u64, u64) {
    let d = stats
        .get("merged")
        .and_then(|m| m.get("dedup"))
        .or_else(|| stats.get("dedup"));
    let f = |k: &str| d.and_then(|d| d.get(k)).and_then(Json::as_u64).unwrap_or(0);
    (f("hits"), f("inflight_waits"), f("misses"))
}

/// Per-shard `(worker, routed, dedup_hits, dedup_waits, dedup_misses)`
/// row of a router stats document.
type ShardRow = (u64, u64, u64, u64, u64);

/// The shard rows of a router stats document; `None` for a plain worker
/// target. Shards whose stats fetch failed (`stats: null` — a worker
/// dark at snapshot time, e.g. mid-flap under a fault plan) are skipped:
/// a zeroed row would fabricate a "served no hits" smoke failure.
fn shard_counts(stats: &Json) -> Option<Vec<ShardRow>> {
    Some(
        stats
            .get("shards")?
            .as_arr()?
            .iter()
            .filter(|s| matches!(s.get("stats"), Some(doc) if !matches!(doc, Json::Null)))
            .map(|s| {
                let dedup = |k: &str| {
                    s.get("stats")
                        .and_then(|d| d.get("dedup"))
                        .and_then(|d| d.get(k))
                        .and_then(Json::as_u64)
                        .unwrap_or(0)
                };
                (
                    s.get("worker").and_then(Json::as_u64).unwrap_or(0),
                    s.get("routed").and_then(Json::as_u64).unwrap_or(0),
                    dedup("hits"),
                    dedup("inflight_waits"),
                    dedup("misses"),
                )
            })
            .collect(),
    )
}

/// Everything one measured phase produced: the artifact fragment plus
/// the numbers the smoke gate checks.
struct Phase {
    report: Json,
    n_2xx: u64,
    n_5xx: u64,
    shards_loaded: usize,
    shards_without_warm_hits: usize,
}

/// Warm-up, measure, and summarize one target. `label` names the phase
/// in the artifact and the log line.
fn run_phase(label: &str, addr: &str, cli: &Cli, router_mode: bool) -> Phase {
    let shots = workload();
    // Warm-up: every distinct request once, so the measured phase sees
    // the steady state (dedup LRU and ISL memo populated) — the regime a
    // long-running service lives in. Never deadlined: a clipped warm-up
    // would leave caches cold and the measured phase unrepresentative.
    {
        let (mut s, mut r) = connect(addr).expect("warm-up connect");
        for shot in &shots {
            let (status, body) = send(&mut s, &mut r, shot, None).expect("warm-up request");
            assert!(
                status < 500,
                "warm-up {} failed ({status}): {}",
                shot.path,
                String::from_utf8_lossy(&body)
            );
        }
    }

    let before = fetch_stats(addr);
    let t0 = Instant::now();
    let results: Vec<ThreadResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cli.threads)
            .map(|t| {
                let addr = addr.to_string();
                let shots = &shots;
                scope.spawn(move || {
                    client_loop(
                        &addr,
                        shots,
                        cli.requests,
                        t * 3,
                        cli.deadline_ms,
                        cli.trace,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();
    let after = fetch_stats(addr);

    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let (n_2xx, n_4xx, n_5xx, n_504) = results.iter().fold((0, 0, 0, 0), |acc, r| {
        (
            acc.0 + r.by_class[0],
            acc.1 + r.by_class[1],
            acc.2 + r.by_class[2],
            acc.3 + r.by_class[3],
        )
    });
    let (deadline_exceeded, rejected_429, degraded) = results.iter().fold((0, 0, 0), |acc, r| {
        (
            acc.0 + r.deadline_exceeded,
            acc.1 + r.rejected_429,
            acc.2 + r.degraded,
        )
    });
    let total = n_2xx + n_4xx + n_5xx + n_504;
    let throughput = total as f64 / wall.as_secs_f64();
    if before.is_none() || after.is_none() {
        eprintln!("servload: warning: a /v1/stats probe failed; dedup deltas are unreliable");
    }
    let (h1, w1, m1) = before.as_ref().map(dedup_counts).unwrap_or((0, 0, 0));
    let (h2, w2, m2) = after.as_ref().map(dedup_counts).unwrap_or((0, 0, 0));
    let (dh, dw, dm) = (
        h2.saturating_sub(h1),
        w2.saturating_sub(w1),
        m2.saturating_sub(m1),
    );
    let dedup_total = dh + dw + dm;
    let dedup_rate = if dedup_total == 0 {
        0.0
    } else {
        (dh + dw) as f64 / dedup_total as f64
    };

    let mut fields = vec![
        (
            "mode".to_string(),
            Json::from(match (cli.target.is_some(), router_mode) {
                (false, false) => "self-hosted",
                (false, true) => "self-hosted-router",
                (true, false) => "external",
                (true, true) => "external-router",
            }),
        ),
        ("threads".to_string(), Json::from(cli.threads)),
        ("requests".to_string(), Json::from(total)),
        (
            "wall_ms".to_string(),
            Json::from((wall.as_secs_f64() * 1e4).round() / 10.0),
        ),
        ("throughput_rps".to_string(), Json::from(throughput.round())),
        ("p50_us".to_string(), Json::from(quantile(&latencies, 0.50))),
        ("p99_us".to_string(), Json::from(quantile(&latencies, 0.99))),
        (
            "status".to_string(),
            Json::obj([
                ("s2xx", Json::from(n_2xx)),
                ("s4xx", Json::from(n_4xx)),
                ("s5xx", Json::from(n_5xx)),
                ("s504", Json::from(n_504)),
            ]),
        ),
        (
            "failures".to_string(),
            Json::obj([
                ("deadline_exceeded", Json::from(deadline_exceeded)),
                ("rejected_429", Json::from(rejected_429)),
                ("degraded", Json::from(degraded)),
            ]),
        ),
        (
            "dedup".to_string(),
            Json::obj([
                ("hits", Json::from(dh)),
                ("inflight_waits", Json::from(dw)),
                ("misses", Json::from(dm)),
                ("hit_rate", Json::from((dedup_rate * 1e4).round() / 1e4)),
            ]),
        ),
    ];

    // Router targets additionally record the per-shard hit distribution:
    // how the consistent hash spread the measured traffic, and that each
    // loaded shard served its repeats from its own dedup layer.
    let mut shards_loaded = 0;
    let mut shards_without_warm_hits = 0;
    if router_mode {
        let b = before.as_ref().and_then(shard_counts).unwrap_or_default();
        let a = after.as_ref().and_then(shard_counts).unwrap_or_default();
        let mut rows = Vec::new();
        for &(worker, routed2, h2, w2, m2) in &a {
            // Snapshots are matched by worker id, not position: a shard
            // with a failed stats fetch is absent from one snapshot.
            let (routed1, h1, w1, m1) = b
                .iter()
                .find(|&&(w, ..)| w == worker)
                .map(|&(_, r, h, w, m)| (r, h, w, m))
                .unwrap_or((0, 0, 0, 0));
            let routed = routed2.saturating_sub(routed1);
            let served = (h2 + w2).saturating_sub(h1 + w1);
            let misses = m2.saturating_sub(m1);
            if routed > 0 {
                shards_loaded += 1;
                if served == 0 {
                    shards_without_warm_hits += 1;
                }
            }
            rows.push(Json::obj([
                ("worker", Json::from(worker)),
                ("routed", Json::from(routed)),
                ("dedup_hits", Json::from(served)),
                ("dedup_misses", Json::from(misses)),
            ]));
        }
        fields.push(("per_shard".to_string(), Json::Arr(rows)));
    }
    // With --trace, fold every thread's Server-Timing samples into a
    // per-phase mean: where a request's time actually went
    // (queue / parse / dedup / compute / isl / serialize at the worker;
    // queue / upstream / backoff / router at the router tier).
    if cli.trace {
        let mut acc: BTreeMap<String, (f64, u64)> = BTreeMap::new();
        for r in &results {
            for (name, (ms, n)) in &r.phase_ms {
                let slot = acc.entry(name.clone()).or_insert((0.0, 0));
                slot.0 += ms;
                slot.1 += n;
            }
        }
        let rows: Vec<(String, Json)> = acc
            .into_iter()
            .map(|(name, (ms, n))| {
                let mean_us = if n == 0 { 0.0 } else { ms * 1e3 / n as f64 };
                (
                    name,
                    Json::obj([
                        ("mean_us", Json::from((mean_us * 10.0).round() / 10.0)),
                        ("samples", Json::from(n)),
                    ]),
                )
            })
            .collect();
        fields.push(("phases".to_string(), Json::Obj(rows)));
    }
    fields.push((
        "mix".to_string(),
        Json::obj([
            ("analyze_variants", Json::from(6u64)),
            ("dse_variants", Json::from(1u64)),
            ("stats_every", Json::from(32u64)),
        ]),
    ));

    println!(
        "servload[{label}]: {total} requests in {:.1} ms -> {throughput:.0} req/s \
         (p50 {} us, p99 {} us, 5xx {n_5xx}, deadline {deadline_exceeded}, \
         429 {rejected_429}, degraded {degraded}, dedup hit rate {dedup_rate:.4})",
        wall.as_secs_f64() * 1e3,
        quantile(&latencies, 0.50),
        quantile(&latencies, 0.99),
    );

    Phase {
        report: Json::Obj(fields),
        n_2xx,
        n_5xx,
        shards_loaded,
        shards_without_warm_hits,
    }
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("servload: {e}");
            eprintln!(
                "usage: servload [http://HOST:PORT] [--router] [--trace] [--threads N] \
                 [--requests N-per-thread] [--deadline-ms MS] \
                 [--fault-plan key=value[,...]] [--out FILE] [--smoke]"
            );
            std::process::exit(1);
        }
    };

    let mut phases: Vec<(&str, Phase)> = Vec::new();
    match &cli.target {
        // External: one phase against the given server or router.
        Some(t) => {
            let label = if cli.router { "router" } else { "single" };
            phases.push((
                label,
                run_phase(label, &normalize_addr(t), &cli, cli.router),
            ));
        }
        // Self-hosted: the single-process baseline (which snapshots its
        // warm state on drain), a restart-replay phase restored from
        // that snapshot, then (with --router) the sharded tier over two
        // workers — same workload, same box.
        None => {
            let snap_path =
                std::env::temp_dir().join(format!("servload-snap-{}.snap", std::process::id()));
            let _ = std::fs::remove_file(&snap_path);
            let server = Server::bind(ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 4,
                snapshot_file: Some(snap_path.clone()),
                ..Default::default()
            })
            .expect("bind ephemeral server");
            let addr = server.local_addr().to_string();
            let handle = server.handle();
            let join = std::thread::spawn(move || server.run());
            phases.push(("single", run_phase("single", &addr, &cli, false)));
            handle.shutdown();
            let _ = join.join();

            // Restart-replay: a fresh process restored from the drained
            // server's snapshot answers the same mix. Everything it
            // serves — warm-up included — must come out of the restored
            // dedup cache, never be recomputed.
            let restored = Server::bind(ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 4,
                snapshot_file: Some(snap_path.clone()),
                ..Default::default()
            })
            .expect("bind restored server");
            let addr = restored.local_addr().to_string();
            let handle = restored.handle();
            let join = std::thread::spawn(move || restored.run());
            phases.push((
                "restart_replay",
                run_phase("restart_replay", &addr, &cli, false),
            ));
            let restored_cold = fetch_stats(&addr)
                .and_then(|s| s.get("dedup")?.get("misses")?.as_u64())
                .unwrap_or(u64::MAX);
            if let Some((_, phase)) = phases.last_mut() {
                if let Json::Obj(fields) = &mut phase.report {
                    fields.push((
                        "restored_cold_misses".to_string(),
                        Json::from(restored_cold),
                    ));
                }
            }
            handle.shutdown();
            let _ = join.join();
            let _ = std::fs::remove_file(&snap_path);

            if cli.router {
                let router_config = RouterConfig {
                    addr: "127.0.0.1:0".into(),
                    threads: 4,
                    ..Default::default()
                };
                // The worker parks a thread per keep-alive connection, so
                // it needs headroom over the router's connection-pool
                // bound (probes and stats fan-outs must never queue
                // behind parked proxy sockets).
                let worker_threads = router_config.upstream_connections + 2;
                let workers: Vec<_> = (0..2)
                    .map(|_| {
                        Server::spawn(ServerConfig {
                            addr: "127.0.0.1:0".into(),
                            threads: worker_threads,
                            ..Default::default()
                        })
                        .expect("spawn worker")
                    })
                    .collect();
                let router = if cli.fault_plans.is_empty() {
                    Router::spawn(RouterConfig {
                        workers: workers.iter().map(|w| w.addr().to_string()).collect(),
                        ..router_config.clone()
                    })
                    .expect("spawn router")
                } else {
                    // Fault plans wrap each worker's HTTP transport, so
                    // the chaos applies to the real pooled wire path.
                    let specs = workers
                        .iter()
                        .enumerate()
                        .map(|(i, w)| {
                            let http = Box::new(HttpTransport::new(
                                w.addr(),
                                router_config.upstream_connections,
                            ));
                            WorkerSpec::Custom(wrap_faults(http, i, &cli.fault_plans))
                        })
                        .collect();
                    Router::spawn_with_workers(router_config.clone(), specs)
                        .expect("spawn faulted router")
                };
                let addr = router.addr().to_string();
                phases.push(("router_http", run_phase("router_http", &addr, &cli, true)));
                let _ = router.shutdown_and_join();
                for w in workers {
                    let _ = w.shutdown_and_join();
                }

                // The same sharded tier with zero worker sockets: two
                // in-process cores behind direct dispatch — the transport
                // that collapses the loopback tax.
                let cores: Vec<Arc<WorkerCore>> = (0..2)
                    .map(|_| {
                        WorkerCore::new(ServerConfig {
                            addr: "in-process".into(),
                            ..Default::default()
                        })
                    })
                    .collect();
                let specs = cores
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        if cli.fault_plans.is_empty() {
                            WorkerSpec::Local(Arc::clone(c))
                        } else {
                            let local = Box::new(LocalTransport::new(Arc::clone(c)));
                            WorkerSpec::Custom(wrap_faults(local, i, &cli.fault_plans))
                        }
                    })
                    .collect();
                let router =
                    Router::spawn_with_workers(router_config, specs).expect("spawn local router");
                let addr = router.addr().to_string();
                phases.push(("router_local", run_phase("router_local", &addr, &cli, true)));
                let _ = router.shutdown_and_join();
            }
        }
    }

    // With a single-process baseline in the run, record each router
    // phase's throughput as a fraction of it — the loopback-tax number
    // the local transport exists to fix.
    if let Some(single_rps) = phases
        .iter()
        .find(|(label, _)| *label == "single")
        .and_then(|(_, p)| p.report.get("throughput_rps"))
        .and_then(Json::as_f64)
        .filter(|&r| r > 0.0)
    {
        for (label, phase) in phases.iter_mut() {
            if !label.starts_with("router") {
                continue;
            }
            let rps = phase
                .report
                .get("throughput_rps")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if let Json::Obj(fields) = &mut phase.report {
                fields.push((
                    "vs_single_throughput".to_string(),
                    Json::from(((rps / single_rps) * 1e4).round() / 1e4),
                ));
            }
        }
    }
    // The restart-replay phase records its p50 relative to the
    // steady-state warm baseline: a restored process should sit in the
    // same warm regime, not pay a cold-start tax per request.
    if let Some(single_p50) = phases
        .iter()
        .find(|(label, _)| *label == "single")
        .and_then(|(_, p)| p.report.get("p50_us"))
        .and_then(Json::as_f64)
        .filter(|&r| r > 0.0)
    {
        if let Some((_, phase)) = phases
            .iter_mut()
            .find(|(label, _)| *label == "restart_replay")
        {
            let p50 = phase
                .report
                .get("p50_us")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if let Json::Obj(fields) = &mut phase.report {
                fields.push((
                    "vs_single_p50".to_string(),
                    Json::from(((p50 / single_p50) * 1e4).round() / 1e4),
                ));
            }
        }
    }

    // One phase → the phase's flat document (the committed single-process
    // schema); two phases → one section per phase, side by side.
    let report = if phases.len() == 1 {
        let mut fields = vec![("bench".to_string(), Json::from("servload"))];
        if let Json::Obj(pairs) = &phases[0].1.report {
            fields.extend(pairs.clone());
        }
        Json::Obj(fields)
    } else {
        let mut fields = vec![("bench".to_string(), Json::from("servload"))];
        for (label, phase) in &phases {
            fields.push((label.to_string(), phase.report.clone()));
        }
        Json::Obj(fields)
    };

    let out_path = cli.out.clone().or_else(|| {
        if cli.smoke {
            None // a smoke run against a foreign server is not an artifact
        } else {
            let dir = std::env::var("PERFBENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
            Some(format!("{dir}/BENCH_server.json"))
        }
    });
    if let Some(path) = out_path {
        // Pretty-print the top level for diff-friendly commits.
        let mut text = String::from("{\n");
        if let Json::Obj(pairs) = &report {
            for (i, (k, v)) in pairs.iter().enumerate() {
                text.push_str(&format!(
                    "  {}: {v}{}\n",
                    Json::from(k.as_str()),
                    if i + 1 < pairs.len() { "," } else { "" }
                ));
            }
        }
        text.push_str("}\n");
        std::fs::write(&path, text).expect("write artifact");
        println!("servload: wrote {path}");
    }

    if cli.smoke {
        let mut failed = false;
        for (label, phase) in &phases {
            if phase.n_5xx > 0 || phase.n_2xx == 0 {
                eprintln!(
                    "servload: SMOKE FAILED [{label}] (2xx {}, 5xx {})",
                    phase.n_2xx, phase.n_5xx
                );
                failed = true;
            }
        }
        // Router smoke: in every router phase (HTTP and local alike),
        // the hash must actually shard (more than one worker loaded) and
        // every loaded shard must have served warm dedup hits — the
        // property the sharded tier exists for. Under a fault plan the
        // spread gates don't hold by design: a flapping worker is off
        // the ring for much of the run, concentrating keys on the
        // survivors and recomputing them cold after each revival. The
        // chaos gate is the zero-5xx assertion above.
        let sharding_gates = cli.fault_plans.is_empty();
        for (label, phase) in phases
            .iter()
            .filter(|(l, _)| sharding_gates && l.starts_with("router"))
        {
            if phase.shards_loaded < 2 {
                eprintln!(
                    "servload: SMOKE FAILED [{label}] only {} shard(s) carried traffic",
                    phase.shards_loaded
                );
                failed = true;
            }
            if phase.shards_without_warm_hits > 0 {
                eprintln!(
                    "servload: SMOKE FAILED [{label}] {} loaded shard(s) served no dedup hits",
                    phase.shards_without_warm_hits
                );
                failed = true;
            }
        }
        // Restart smoke: a restored process must replay its old keys
        // without recomputing a single one. Only gated on clean runs —
        // under a deadline or a fault plan, clipped requests can leave
        // leader claims uncounted either way.
        if cli.deadline_ms.is_none() && cli.fault_plans.is_empty() {
            for (label, phase) in phases.iter().filter(|(l, _)| *l == "restart_replay") {
                let cold = phase
                    .report
                    .get("restored_cold_misses")
                    .and_then(Json::as_u64)
                    .unwrap_or(u64::MAX);
                if cold != 0 {
                    eprintln!(
                        "servload: SMOKE FAILED [{label}] restored process recomputed \
                         {cold} request(s) cold"
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(2);
        }
        println!(
            "servload: smoke ok (zero 5xx across {} phase(s))",
            phases.len()
        );
    }
}
