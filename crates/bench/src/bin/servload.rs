//! `servload` — closed-loop load generator for the analysis service.
//!
//! N client threads each hold one keep-alive connection and drive a
//! fixed request mix (several `analyze` variants, a `dse` sweep, and
//! periodic `stats` probes) as fast as the server answers. Latency is
//! recorded per request; dedup effectiveness comes from the server's own
//! `/v1/stats` deltas. Results are written as `BENCH_server.json` at the
//! repo root — a committed artifact tracked across PRs, like the other
//! `BENCH_*.json` files.
//!
//! Modes:
//!
//! * **Self-hosted** (no target argument): spins up an in-process
//!   `tenet_server::Server` on an ephemeral port, loads it, then drains
//!   it — the reproducible configuration the committed artifact uses.
//! * **External** (`servload http://127.0.0.1:8091 ...`): targets an
//!   already-running `tenet serve`, e.g. the CI smoke step.
//!
//! `--smoke` asserts zero 5xx responses and a nonzero success count,
//! exiting nonzero otherwise (and skips the artifact unless `--out` is
//! given).

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use tenet_core::json::Json;
use tenet_server::http::ResponseReader;
use tenet_server::{Server, ServerConfig};

/// The gemm problem text the analyze variants are built from.
fn gemm_problem(n: usize, bandwidth: usize) -> String {
    format!(
        "for (i = 0; i < {n}; i++)\n\
         \x20 for (j = 0; j < {n}; j++)\n\
         \x20   for (k = 0; k < {n}; k++)\n\
         \x20     S: Y[i][j] += A[i][k] * B[k][j];\n\n\
         {{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }}\n\n\
         arch \"{n}x{n}\" {{ array = [{n}, {n}] interconnect = systolic2d bandwidth = {bandwidth} }}\n"
    )
}

/// One request of the mix: method, path, body.
#[derive(Clone)]
struct Shot {
    method: &'static str,
    path: &'static str,
    body: String,
}

/// The committed mixed workload: six analyze variants over three problem
/// shapes × two reuse windows, plus one dse sweep. Stats probes are
/// injected separately by the client loop.
fn workload() -> Vec<Shot> {
    let mut shots = Vec::new();
    for (n, bw) in [(4usize, 8usize), (6, 12), (8, 16)] {
        for window in [1u64, 2] {
            shots.push(Shot {
                method: "POST",
                path: "/v1/analyze",
                body: Json::obj([
                    ("problem", Json::from(gemm_problem(n, bw))),
                    ("window", Json::from(window)),
                ])
                .to_string(),
            });
        }
    }
    shots.push(Shot {
        method: "POST",
        path: "/v1/dse",
        body: Json::obj([
            ("problem", Json::from(gemm_problem(4, 8))),
            ("pe", Json::from(4u64)),
            ("top", Json::from(3u64)),
            ("threads", Json::from(2u64)),
        ])
        .to_string(),
    });
    shots
}

struct Cli {
    target: Option<String>,
    threads: usize,
    requests: usize,
    out: Option<String>,
    smoke: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        target: None,
        threads: 4,
        requests: 250,
        out: None,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                cli.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--threads needs a positive integer")?
            }
            "--requests" => {
                cli.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--requests needs a positive integer")?
            }
            "--out" => cli.out = Some(args.next().ok_or("--out needs a path")?),
            "--smoke" => cli.smoke = true,
            other if !other.starts_with("--") && cli.target.is_none() => {
                cli.target = Some(other.to_string())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

/// Normalizes `http://host:port/` or `host:port` to `host:port`.
fn normalize_addr(target: &str) -> String {
    target
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string()
}

/// Sends one request on an open connection and reads the response.
fn send(
    stream: &mut TcpStream,
    reader: &mut ResponseReader<TcpStream>,
    shot: &Shot,
) -> std::io::Result<(u16, Vec<u8>)> {
    let head = format!(
        "{} {} HTTP/1.1\r\nHost: servload\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        shot.method,
        shot.path,
        shot.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(shot.body.as_bytes())?;
    reader.next_response()
}

/// Opens a keep-alive connection pair (write half + buffered read half).
fn connect(addr: &str) -> std::io::Result<(TcpStream, ResponseReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    stream.set_nodelay(true)?;
    let reader = ResponseReader::new(stream.try_clone()?);
    Ok((stream, reader))
}

fn fetch_stats(addr: &str) -> Option<Json> {
    let (mut s, mut r) = connect(addr).ok()?;
    let shot = Shot {
        method: "GET",
        path: "/v1/stats",
        body: String::new(),
    };
    let (status, body) = send(&mut s, &mut r, &shot).ok()?;
    if status != 200 {
        return None;
    }
    Json::parse(std::str::from_utf8(&body).ok()?).ok()
}

struct ThreadResult {
    latencies_us: Vec<u64>,
    by_class: [u64; 3], // 2xx, 4xx, 5xx/other
}

fn client_loop(addr: &str, shots: &[Shot], requests: usize, seed: usize) -> ThreadResult {
    let mut result = ThreadResult {
        latencies_us: Vec::with_capacity(requests),
        by_class: [0; 3],
    };
    let stats_probe = Shot {
        method: "GET",
        path: "/v1/stats",
        body: String::new(),
    };
    let (mut stream, mut reader) = match connect(addr) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("servload: connect failed: {e}");
            result.by_class[2] += requests as u64;
            return result;
        }
    };
    for i in 0..requests {
        // Every 32nd request probes live stats; the rest walk the mix,
        // phase-shifted per thread so leaders interleave with waiters.
        let shot = if i % 32 == 31 {
            &stats_probe
        } else {
            &shots[(seed + i) % shots.len()]
        };
        let t0 = Instant::now();
        match send(&mut stream, &mut reader, shot) {
            Ok((status, _body)) => {
                result
                    .latencies_us
                    .push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                let class = match status {
                    200..=299 => 0,
                    400..=499 => 1,
                    _ => 2,
                };
                result.by_class[class] += 1;
            }
            Err(e) => {
                eprintln!("servload: request failed: {e}");
                result.by_class[2] += 1;
                // Reconnect and continue; a dropped keep-alive connection
                // must not sink the whole thread's sample.
                match connect(addr) {
                    Ok(pair) => (stream, reader) = pair,
                    Err(_) => break,
                }
            }
        }
    }
    result
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn dedup_counts(stats: &Json) -> (u64, u64, u64) {
    let d = stats.get("dedup");
    let f = |k: &str| d.and_then(|d| d.get(k)).and_then(Json::as_u64).unwrap_or(0);
    (f("hits"), f("inflight_waits"), f("misses"))
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("servload: {e}");
            eprintln!(
                "usage: servload [http://HOST:PORT] [--threads N] [--requests N-per-thread] \
                 [--out FILE] [--smoke]"
            );
            std::process::exit(1);
        }
    };

    // Self-host when no target was given.
    let (addr, self_hosted) = match &cli.target {
        Some(t) => (normalize_addr(t), None),
        None => {
            let config = ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 4,
                ..Default::default()
            };
            let server = Server::bind(config).expect("bind ephemeral server");
            let addr = server.local_addr().to_string();
            let handle = server.handle();
            let join = std::thread::spawn(move || server.run());
            (addr, Some((handle, join)))
        }
    };

    let shots = workload();
    // Warm-up: every distinct request once, so the measured phase sees
    // the steady state (dedup LRU and ISL memo populated) — the regime a
    // long-running service lives in.
    {
        let (mut s, mut r) = connect(&addr).expect("warm-up connect");
        for shot in &shots {
            let (status, body) = send(&mut s, &mut r, shot).expect("warm-up request");
            assert!(
                status < 500,
                "warm-up {} failed ({status}): {}",
                shot.path,
                String::from_utf8_lossy(&body)
            );
        }
    }

    let before = fetch_stats(&addr);
    let t0 = Instant::now();
    let results: Vec<ThreadResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cli.threads)
            .map(|t| {
                let addr = addr.clone();
                let shots = &shots;
                scope.spawn(move || client_loop(&addr, shots, cli.requests, t * 3))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();
    let after = fetch_stats(&addr);

    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let (n_2xx, n_4xx, n_5xx) = results.iter().fold((0, 0, 0), |acc, r| {
        (
            acc.0 + r.by_class[0],
            acc.1 + r.by_class[1],
            acc.2 + r.by_class[2],
        )
    });
    let total = n_2xx + n_4xx + n_5xx;
    let throughput = total as f64 / wall.as_secs_f64();
    if before.is_none() || after.is_none() {
        eprintln!("servload: warning: a /v1/stats probe failed; dedup deltas are unreliable");
    }
    let (h1, w1, m1) = before.as_ref().map(dedup_counts).unwrap_or((0, 0, 0));
    let (h2, w2, m2) = after.as_ref().map(dedup_counts).unwrap_or((0, 0, 0));
    let (dh, dw, dm) = (
        h2.saturating_sub(h1),
        w2.saturating_sub(w1),
        m2.saturating_sub(m1),
    );
    let dedup_total = dh + dw + dm;
    let dedup_rate = if dedup_total == 0 {
        0.0
    } else {
        (dh + dw) as f64 / dedup_total as f64
    };

    let report = Json::obj([
        ("bench", Json::from("servload")),
        (
            "mode",
            Json::from(if self_hosted.is_some() {
                "self-hosted"
            } else {
                "external"
            }),
        ),
        ("threads", Json::from(cli.threads)),
        ("requests", Json::from(total)),
        (
            "wall_ms",
            Json::from((wall.as_secs_f64() * 1e4).round() / 10.0),
        ),
        ("throughput_rps", Json::from(throughput.round())),
        ("p50_us", Json::from(quantile(&latencies, 0.50))),
        ("p99_us", Json::from(quantile(&latencies, 0.99))),
        (
            "status",
            Json::obj([
                ("s2xx", Json::from(n_2xx)),
                ("s4xx", Json::from(n_4xx)),
                ("s5xx", Json::from(n_5xx)),
            ]),
        ),
        (
            "dedup",
            Json::obj([
                ("hits", Json::from(dh)),
                ("inflight_waits", Json::from(dw)),
                ("misses", Json::from(dm)),
                ("hit_rate", Json::from((dedup_rate * 1e4).round() / 1e4)),
            ]),
        ),
        (
            "mix",
            Json::obj([
                ("analyze_variants", Json::from(6u64)),
                ("dse_variants", Json::from(1u64)),
                ("stats_every", Json::from(32u64)),
            ]),
        ),
    ]);

    println!(
        "servload: {total} requests in {:.1} ms -> {throughput:.0} req/s \
         (p50 {} us, p99 {} us, 5xx {n_5xx}, dedup hit rate {dedup_rate:.4})",
        wall.as_secs_f64() * 1e3,
        quantile(&latencies, 0.50),
        quantile(&latencies, 0.99),
    );

    // Tear the self-hosted server down cleanly.
    if let Some((handle, join)) = self_hosted {
        handle.shutdown();
        let _ = join.join();
    }

    let out_path = cli.out.clone().or_else(|| {
        if cli.smoke {
            None // a smoke run against a foreign server is not an artifact
        } else {
            let dir = std::env::var("PERFBENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
            Some(format!("{dir}/BENCH_server.json"))
        }
    });
    if let Some(path) = out_path {
        // Pretty-print the top level for diff-friendly commits.
        let mut text = String::from("{\n");
        if let Json::Obj(pairs) = &report {
            for (i, (k, v)) in pairs.iter().enumerate() {
                text.push_str(&format!(
                    "  {}: {v}{}\n",
                    Json::from(k.as_str()),
                    if i + 1 < pairs.len() { "," } else { "" }
                ));
            }
        }
        text.push_str("}\n");
        std::fs::write(&path, text).expect("write artifact");
        println!("servload: wrote {path}");
    }

    if cli.smoke {
        if n_5xx > 0 || n_2xx == 0 {
            eprintln!("servload: SMOKE FAILED (2xx {n_2xx}, 5xx {n_5xx})");
            std::process::exit(2);
        }
        println!("servload: smoke ok ({n_2xx} successful requests, zero 5xx)");
    }
}
