//! Figure 10: interconnect (IBW) and scratchpad (SBW) bandwidth
//! requirements per tensor across three interconnect topologies
//! (2D-systolic, mesh, 1D-systolic).

use tenet_bench::analyze_fitted;
use tenet_core::{Dataflow, Interconnect, TensorOp};
use tenet_workloads::{dataflows, kernels};

fn study(op: &TensorOp, dfs: &[Dataflow]) {
    println!("--- {} ---", op.name());
    println!(
        "{:<28} {:>8} {:<7} {:>9} {:>9}",
        "dataflow", "topo", "tensor", "IBW", "SBW"
    );
    for df in dfs {
        if df.n_space() != 2 {
            continue; // topology sweep applies to 2-D arrays
        }
        for ic in [
            Interconnect::Systolic2D,
            Interconnect::Mesh,
            Interconnect::Systolic1D,
        ] {
            let label = ic.label();
            let r = match analyze_fitted(op, df, ic, 8.0, 1) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("skip {:?} on {label}: {e}", df.name());
                    continue;
                }
            };
            let mut first = true;
            for t in r.tensors.keys() {
                println!(
                    "{:<28} {:>8} {:<7} {:>9.3} {:>9.3}",
                    if first { df.name().unwrap_or("") } else { "" },
                    if first { label } else { "" },
                    t,
                    r.bandwidth.interconnect_per_tensor[t],
                    r.bandwidth.scratchpad_per_tensor[t],
                );
                first = false;
            }
        }
    }
    println!();
}

fn main() {
    println!("Figure 10: bandwidth requirements per interconnect topology");
    println!("(elements/cycle; multicast wires assumed present, Section VI-D)\n");
    let conv = kernels::conv2d(32, 16, 14, 14, 3, 3).unwrap();
    let conv_dfs: Vec<Dataflow> = dataflows::conv_dataflows(8, 64)
        .into_iter()
        .filter(|d| {
            let n = d.name().unwrap_or("");
            n.contains("RYOY")
                || n.contains("OYOX")
                || n.contains("(KC-P | OY,OX-T)")
                || n.contains("KCOX")
                || n.contains("C,KOX")
        })
        .collect();
    study(&conv, &conv_dfs);
    study(
        &kernels::gemm(32, 32, 32).unwrap(),
        &dataflows::gemm_dataflows(8, 64),
    );
    study(
        &kernels::mttkrp(16, 16, 16, 16).unwrap(),
        &dataflows::mttkrp_dataflows(8),
    );
    study(
        &kernels::jacobi2d(34).unwrap(),
        &dataflows::jacobi_dataflows(8, 64),
    );
}
