//! Figure 11: latency and PE-utilization estimation accuracy.
//!
//! The paper compares TENET's and MAESTRO's estimates against the numbers
//! reported by the Eyeriss and MAERI silicon. This reproduction uses the
//! cycle-level simulator (`tenet-sim`) as the golden reference — the same
//! dataflow executed on a PE array with finite scratchpad bandwidth —
//! and reports each model's relative error. Layers are channel-scaled so
//! the instance-by-instance simulation stays tractable (geometry, and
//! therefore per-layer error structure, is preserved).

use tenet_core::{presets, Analysis, AnalysisOptions, ArchSpec, Interconnect};
use tenet_maestro::{evaluate, DcMapping};
use tenet_sim::{simulate, ReusePolicy, SimOptions};
use tenet_workloads::{dataflows, networks};

fn pct_err(model: f64, golden: f64) -> f64 {
    100.0 * (model - golden).abs() / golden
}

fn main() {
    println!("Figure 11: latency / utilization accuracy vs cycle-level simulation\n");

    // ---- (a)/(b): Eyeriss row-stationary dataflow on AlexNet C1..C5 ----
    println!("Eyeriss row-stationary on AlexNet (12x14 array, multicast NoC)");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>9} {:>9} | {:>8} {:>8} {:>8}",
        "layer", "sim lat", "TENET lat", "MAESTRO", "T err%", "M err%", "sim U", "T util", "M util"
    );
    let mut terr = Vec::new();
    let mut merr = Vec::new();
    for l in networks::alexnet() {
        let l = l.scaled_channels(4);
        if l.rx != 3 {
            // The 12-row row-stationary mapping is only injective for 3x3
            // filters (ry + 3*(c mod 4) tiles exactly); Eyeriss maps
            // CONV1/CONV2 with dedicated configurations the paper does
            // not specify, so the accuracy study covers CONV3-5.
            eprintln!("skip {} (row-stationary needs rx = 3)", l.name);
            continue;
        }
        let op = l.op().unwrap();
        let df = if l.ox > 14 {
            dataflows::eyeriss_row_stationary_tiled(14)
        } else {
            dataflows::eyeriss_row_stationary()
        };
        let mut arch = presets::eyeriss_noc(12, 14, 16.0);
        if df.used_pes(&op).is_err() {
            eprintln!("skip {}", l.name);
            continue;
        }
        // Golden: the same dataflow executed cycle by cycle under the
        // reuse discipline the interconnect supports (Adjacent); the
        // Resident policy is available for RF-capacity sensitivity runs.
        let sim = match simulate(
            &op,
            &df,
            &arch,
            &SimOptions {
                policy: ReusePolicy::Adjacent,
                rf_capacity: None,
                ..Default::default()
            },
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skip {} (sim): {e}", l.name);
                continue;
            }
        };
        arch.bandwidth = 16.0;
        let opts = AnalysisOptions {
            reuse_window: 12,
            ..Default::default()
        };
        let analysis = match Analysis::with_options(&op, &df, &arch, opts) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("skip {} (model): {e}", l.name);
                continue;
            }
        };
        let lat = analysis.latency().unwrap().total();
        let util = analysis.utilization().unwrap().average;
        // MAESTRO models only the c = 0 case of the row-stationary mapping
        // (Section VI-E): filter rows spatial, outputs spatial.
        let mapping = DcMapping::new()
            .temporal(4, 4, "c")
            .temporal(16, 16, "k")
            .spatial(l.rx, 1, "oy")
            .temporal(l.rx, 1, "ox")
            .spatial(1, 1, "ry")
            .temporal(1, 1, "rx");
        let m = evaluate(&op, &mapping, &arch);
        let golden_lat = sim.latency() as f64;
        let golden_util = sim.avg_utilization();
        terr.push(pct_err(lat, golden_lat));
        merr.push(pct_err(m.latency(), golden_lat));
        println!(
            "{:<8} {:>12} {:>12.0} {:>12.0} {:>8.1}% {:>8.1}% | {:>8.3} {:>8.3} {:>8.3}",
            l.name,
            sim.latency(),
            lat,
            m.latency(),
            pct_err(lat, golden_lat),
            pct_err(m.latency(), golden_lat),
            golden_util,
            util,
            m.utilization,
        );
    }
    let tavg = 100.0 - terr.iter().sum::<f64>() / terr.len() as f64;
    let mavg = 100.0 - merr.iter().sum::<f64>() / merr.len() as f64;
    println!("latency estimation accuracy: TENET {tavg:.1}%  MAESTRO {mavg:.1}%\n");

    // ---- (c)/(d): MAERI dataflow on VGG C1-1..C5-1 ----------------------
    println!("MAERI dataflow on VGG-16 (64 multipliers, multicast tree)");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>9} {:>9} | {:>8} {:>8}",
        "layer", "sim lat", "TENET lat", "MAESTRO", "T err%", "M err%", "sim U", "T util"
    );
    let mut terr = Vec::new();
    let mut merr = Vec::new();
    let vgg_scale = [8i64, 4, 4, 4, 4];
    for (i, l) in networks::vgg16().iter().enumerate() {
        let l = l.scaled(vgg_scale[i]);
        let op = l.op().unwrap();
        let df = dataflows::maeri_dataflow(64);
        let arch = ArchSpec::new("maeri", [64], Interconnect::Multicast { radius: 3 }, 16.0);
        let sim = match simulate(
            &op,
            &df,
            &arch,
            &SimOptions {
                policy: ReusePolicy::Adjacent,
                rf_capacity: None,
                ..Default::default()
            },
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skip {} (sim): {e}", l.name);
                continue;
            }
        };
        let opts = AnalysisOptions {
            reuse_window: 4,
            ..Default::default()
        };
        let analysis = Analysis::with_options(&op, &df, &arch, opts).unwrap();
        let lat = analysis.latency().unwrap().total();
        let util = analysis.utilization().unwrap().average;
        let mapping = DcMapping::new()
            .spatial(1, 1, "k")
            .temporal(1, 1, "c")
            .temporal(l.rx, 1, "oy")
            .temporal(l.rx, 1, "ox");
        let m = evaluate(&op, &mapping, &arch);
        let golden_lat = sim.latency() as f64;
        terr.push(pct_err(lat, golden_lat));
        merr.push(pct_err(m.latency(), golden_lat));
        println!(
            "{:<8} {:>12} {:>12.0} {:>12.0} {:>8.1}% {:>8.1}% | {:>8.3} {:>8.3}",
            l.name,
            sim.latency(),
            lat,
            m.latency(),
            pct_err(lat, golden_lat),
            pct_err(m.latency(), golden_lat),
            sim.avg_utilization(),
            util,
        );
    }
    let tavg = 100.0 - terr.iter().sum::<f64>() / terr.len() as f64;
    let mavg = 100.0 - merr.iter().sum::<f64>() / merr.len() as f64;
    println!("latency estimation accuracy: TENET {tavg:.1}%  MAESTRO {mavg:.1}%");
}
