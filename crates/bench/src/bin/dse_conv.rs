//! Section VI-B: dataflow design-space exploration for 2D-CONV.
//!
//! The paper prunes the space to 12 x 12 x 180 = 25,920 dataflows and
//! explores it in under an hour. This binary enumerates the rectilinear
//! movement/assignment space for a scaled CONV, evaluates every candidate,
//! and reports the Pareto frontier and best design.

use std::time::Instant;
use tenet_core::{ArchSpec, Interconnect};
use tenet_dse::{enumerate_all, explore, pareto, space_size};
use tenet_workloads::kernels;

fn main() {
    println!("Design-space sizes (Section IV-A):");
    println!(
        "  GEMM (n=3): relation-centric 2^9 = {}  vs data-centric 3!*C(3,2) = {}  ({}x)",
        space_size::relation_centric(3),
        space_size::data_centric(3),
        space_size::relation_centric(3) / space_size::data_centric(3)
    );
    println!(
        "  2D-CONV (n=6): relation-centric 2^36 = {}  vs data-centric {}",
        space_size::relation_centric(6),
        space_size::data_centric(6)
    );
    println!(
        "  paper's pruned CONV space: 12*12*180 = {}",
        space_size::pruned_conv_space()
    );
    println!();

    let op = kernels::conv2d(16, 16, 8, 8, 3, 3).unwrap();
    let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Mesh, 8.0);
    let t0 = Instant::now();
    let candidates = enumerate_all(&op, 8, 64).unwrap();
    println!("enumerated {} candidate dataflows", candidates.len());
    let points = explore(&op, &arch, &candidates).unwrap();
    println!(
        "evaluated {} valid dataflows in {:.1?}",
        points.len(),
        t0.elapsed()
    );
    let front = pareto(&points);
    println!("\nPareto frontier (latency vs scratchpad bandwidth):");
    println!("{:<40} {:>12} {:>10}", "dataflow", "latency", "SBW");
    for p in front.iter().take(12) {
        println!(
            "{:<40} {:>12.0} {:>10.2}",
            p.dataflow.name().unwrap_or(""),
            p.latency(),
            p.sbw()
        );
    }
    let best = &points[0];
    println!(
        "\nbest dataflow: {}  latency {:.0}  SBW {:.2}",
        best.dataflow.name().unwrap_or(""),
        best.latency(),
        best.sbw()
    );
}
