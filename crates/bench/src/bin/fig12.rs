//! Figure 12: data-reuse (ReuseFactor) accuracy, TENET vs MAESTRO, on
//! AlexNet, VGG-16, GoogLeNet, and MobileNet.
//!
//! Key paper oracles reproduced here: AlexNet CONV3 filter reuse
//! 13 x 13 = 169 and output reuse 12 x 12 = 144 under the Eyeriss
//! row-stationary dataflow; GoogLeNet inception-4a filter reuse
//! 56 x 56 = 3136 (TENET) vs 54 x 54 = 2916 (MAESTRO); MAESTRO reports no
//! reuse for output arrays and low pw-CONV input reuse.

use tenet_bench::analyze_fitted;
use tenet_core::{presets, Analysis, AnalysisOptions, Dataflow, Interconnect, Role};
use tenet_maestro::{evaluate, DcMapping};
use tenet_workloads::{dataflows, networks};

fn conv_mapping(l: &networks::ConvShape) -> DcMapping {
    // The generic data-centric conv mapping MAESTRO users write: output
    // channels spatial, sliding windows over the output plane.
    DcMapping::new()
        .spatial(1, 1, "k")
        .temporal(1, 1, "c")
        .temporal(l.rx, 1, "ox")
        .temporal(l.rx, 1, "oy")
        .temporal(l.rx, l.rx, "rx")
        .temporal(l.rx, l.rx, "ry")
}

fn print_layer(
    layer: &networks::ConvShape,
    tenet: &tenet_core::PerformanceReport,
    maestro: &tenet_maestro::MaestroReport,
) {
    for (t, m) in &tenet.tensors {
        let kind = match (m.role, t.as_str()) {
            (Role::Output, _) => "output",
            (_, "A") => "input",
            _ => "filter",
        };
        let mf = maestro.tensors.get(t).map(|x| x.reuse_factor);
        println!(
            "{:<10} {:<7} {:>12.1} {:>12}",
            layer.name,
            kind,
            m.volumes.reuse_factor(),
            mf.map_or("-".into(), |v| format!("{v:.1}")),
        );
    }
}

fn main() {
    println!("Figure 12: reuse factor, TENET (exact) vs MAESTRO (polynomial)\n");
    println!(
        "{:<10} {:<7} {:>12} {:>12}",
        "layer", "tensor", "TENET", "MAESTRO"
    );

    // --- AlexNet: Eyeriss row-stationary on 12x14 with multicast NoC. ---
    println!("-- AlexNet, (RYOY-P | OY,OX-T) row-stationary, 12x14 --");
    for l in networks::alexnet() {
        if l.rx > 3 || l.ox > 14 {
            // CONV1/CONV2 need tiling/bigger arrays; Figure 12 discusses
            // CONV3-5 where the row-stationary shape fits directly.
            continue;
        }
        // Reuse factors are invariant under channel scaling (they depend
        // on the spatial geometry); scale to keep the sweep fast.
        let l = l.scaled_channels(4);
        let op = l.op().unwrap();
        let df = dataflows::eyeriss_row_stationary();
        let arch = presets::eyeriss_noc(12, 14, 16.0);
        let opts = AnalysisOptions {
            reuse_window: 12,
            ..Default::default()
        };
        let analysis = Analysis::with_options(&op, &df, &arch, opts).unwrap();
        let report = analysis.report().unwrap();
        let m = evaluate(&op, &conv_mapping(&l), &arch);
        print_layer(&l, &report, &m);
        if l.name == "CONV3" {
            let filter = report.tensors["B"].volumes.reuse_factor();
            let output = report.tensors["Y"].volumes.reuse_factor();
            assert!(
                (filter - 169.0).abs() < 1.0,
                "CONV3 filter reuse = {filter}"
            );
            assert!(
                (output - 144.0).abs() < 1.0,
                "CONV3 output reuse = {output}"
            );
            println!("    ^ paper oracle: filter 13x13 = 169, output 12x12 = 144  OK");
        }
    }

    // --- VGG-16: ShiDianNao output-stationary on 8x8 mesh. ---
    println!("-- VGG16, (OYOX-P | OY,OX-T) output-stationary, 8x8 --");
    for l in networks::vgg16() {
        let l = l.scaled_channels(4); // keep runtimes short; factors unchanged
        let op = l.op().unwrap();
        let df: Dataflow = dataflows::conv_dataflows(8, 64)
            .into_iter()
            .find(|d| d.name() == Some("(OYOX-P | OY,OX-T)"))
            .unwrap();
        match analyze_fitted(&op, &df, Interconnect::Mesh, 16.0, 4) {
            Ok(report) => {
                let arch = presets::shidiannao_like(16.0);
                let m = evaluate(&op, &conv_mapping(&l), &arch);
                print_layer(&l, &report, &m);
            }
            Err(e) => eprintln!("skip {}: {e}", l.name),
        }
    }

    // --- GoogLeNet: NVDLA-style (KC-P | OY,OX-T) on 8x8. ---
    println!("-- GoogLeNet, (KC-P | OY,OX-T), 8x8 --");
    for l in networks::googlenet() {
        let l = l.scaled_channels(8);
        let op = l.op().unwrap();
        let df: Dataflow = dataflows::conv_dataflows(8, 64)
            .into_iter()
            .find(|d| d.name() == Some("(KC-P | OY,OX-T)"))
            .unwrap();
        match analyze_fitted(&op, &df, Interconnect::Mesh, 16.0, 1) {
            Ok(report) => {
                let arch = presets::mesh(8, 8, 16.0);
                let m = evaluate(&op, &conv_mapping(&l), &arch);
                print_layer(&l, &report, &m);
                if l.name == "Incpt-4a" {
                    let t = report.tensors["B"].volumes.reuse_factor();
                    let mm = m.tensors["B"].reuse_factor;
                    assert!((t - 3136.0).abs() < 1.0, "TENET filter reuse = {t}");
                    assert!((mm - 2916.0).abs() < 1.0, "MAESTRO filter reuse = {mm}");
                    println!("    ^ paper oracle: TENET 3136 vs MAESTRO 2916  OK");
                }
            }
            Err(e) => eprintln!("skip {}: {e}", l.name),
        }
    }

    // --- MobileNet: output-stationary (OYOX-P | K,C-T) on 8x8. ---
    println!("-- MobileNet, (OYOX-P | K,C-T), 8x8 --");
    for l in networks::mobilenet() {
        let l = l.scaled_channels(2);
        let op = l.op().unwrap();
        let time: Vec<String> = if l.kind == networks::ConvKind::Depthwise {
            vec![
                "floor(oy/8)".into(),
                "floor(ox/8)".into(),
                "rx".into(),
                "ry".into(),
                "c".into(),
            ]
        } else {
            vec![
                "floor(oy/8)".into(),
                "floor(ox/8)".into(),
                "rx".into(),
                "ry".into(),
                "k".into(),
                "c".into(),
            ]
        };
        let df = Dataflow::new(vec!["oy mod 8".to_string(), "ox mod 8".to_string()], time)
            .named("(OYOX-P | K,C-T)");
        match analyze_fitted(&op, &df, Interconnect::Mesh, 16.0, 1) {
            Ok(report) => {
                let arch = presets::mesh(8, 8, 16.0);
                let m = evaluate(&op, &conv_mapping(&l), &arch);
                print_layer(&l, &report, &m);
            }
            Err(e) => eprintln!("skip {}: {e}", l.name),
        }
    }
}
