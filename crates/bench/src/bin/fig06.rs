//! Figure 6: latency of TENET-only (skewed) dataflows vs the best
//! data-centric dataflow, swept over scratchpad bandwidth.
//!
//! The relation-centric dataflows with affine time-stamps cannot be
//! expressed in data-centric notation; the figure shows they dominate as
//! bandwidth shrinks (paper: up to 47.4% / 77% latency reduction; 37.4%
//! and 51.4% on average for CONV and GEMM).

use tenet_bench::{analyze_fitted, latency_at, BITS_PER_ELEMENT};
use tenet_core::{Interconnect, PerformanceReport};
use tenet_maestro::representable;
use tenet_workloads::{dataflows, kernels};

fn sweep(title: &str, reports: &[(String, bool, PerformanceReport)]) {
    println!("== {title} ==");
    print!("{:>10}", "bw(bit/c)");
    for (name, rc_only, _) in reports {
        print!(
            "  {:>26}",
            format!("{}{}", name, if *rc_only { " [TENET-only]" } else { "" })
        );
    }
    println!();
    let mut avg_red = 0.0;
    let mut n = 0u32;
    for bits in [160.0, 144.0, 128.0, 112.0, 96.0, 80.0, 64.0] {
        let bw = bits / BITS_PER_ELEMENT;
        print!("{bits:>10}");
        let best_dc = reports
            .iter()
            .filter(|(_, rc_only, _)| !*rc_only)
            .map(|(_, _, r)| latency_at(r, bw))
            .fold(f64::INFINITY, f64::min);
        let best_rc = reports
            .iter()
            .map(|(_, _, r)| latency_at(r, bw))
            .fold(f64::INFINITY, f64::min);
        for (_, _, r) in reports {
            print!("  {:>26.0}", latency_at(r, bw));
        }
        let red = 100.0 * (1.0 - best_rc / best_dc);
        println!("   | reduction {red:>5.1}%");
        avg_red += red;
        n += 1;
    }
    println!(
        "average latency reduction vs best data-centric dataflow: {:.1}%",
        avg_red / n as f64
    );
    println!();
}

fn main() {
    // --- 2D-CONV ---------------------------------------------------------
    let conv = kernels::conv2d(64, 64, 14, 14, 3, 3).unwrap();
    let mut conv_reports = Vec::new();
    for df in dataflows::conv_dataflows(8, 64) {
        let name = df.name().unwrap().to_string();
        // The comparison uses a mesh network (Section VI-A).
        match analyze_fitted(&conv, &df, Interconnect::Mesh, 8.0, 1) {
            Ok(r) => conv_reports.push((name, !representable(&df, &conv), r)),
            Err(e) => eprintln!("skipping {name}: {e}"),
        }
    }
    // Keep the figure's three series: the two affine TENET dataflows and
    // the best data-centric one.
    let mut keep: Vec<(String, bool, PerformanceReport)> = Vec::new();
    for (name, rc, r) in &conv_reports {
        if name.contains("KCOX") || name.contains("KOXC") {
            keep.push((name.clone(), *rc, r.clone()));
        }
    }
    if let Some(best_dc) = conv_reports
        .iter()
        .filter(|(_, rc, _)| !*rc)
        .min_by(|a, b| a.2.latency.total().total_cmp(&b.2.latency.total()))
    {
        keep.push((
            format!("MAESTRO-best {}", best_dc.0),
            false,
            best_dc.2.clone(),
        ));
    }
    sweep("2D-CONV (K=64 C=64 14x14, 3x3) on mesh", &keep);

    // --- GEMM -------------------------------------------------------------
    let gemm = kernels::gemm(64, 64, 64).unwrap();
    let mut gemm_reports = Vec::new();
    for df in dataflows::gemm_dataflows(8, 64) {
        let name = df.name().unwrap().to_string();
        match analyze_fitted(&gemm, &df, Interconnect::Mesh, 8.0, 1) {
            Ok(r) => gemm_reports.push((name, !representable(&df, &gemm), r)),
            Err(e) => eprintln!("skipping {name}: {e}"),
        }
    }
    let mut keep: Vec<(String, bool, PerformanceReport)> = Vec::new();
    for (name, rc, r) in &gemm_reports {
        if name.contains("IJK") && (name.starts_with("(IJ") || name.starts_with("(KJ")) {
            keep.push((name.clone(), *rc, r.clone()));
        }
    }
    if let Some(best_dc) = gemm_reports
        .iter()
        .filter(|(_, rc, _)| !*rc)
        .min_by(|a, b| a.2.latency.total().total_cmp(&b.2.latency.total()))
    {
        keep.push((
            format!("MAESTRO-best {}", best_dc.0),
            false,
            best_dc.2.clone(),
        ));
    }
    sweep("GEMM (64x64x64) on mesh", &keep);
}
