//! Table I: feature comparison of the four notations, with the
//! expressiveness claims checked programmatically.

use tenet_compute::{exactness_gap, expressible as cc_expressible, Schedule};
use tenet_core::{ArchSpec, Interconnect};
use tenet_maestro::representable;
use tenet_workloads::{dataflows, kernels};

fn main() {
    println!("Table I: Comparison between notations (checked claims marked *)");
    println!();
    let rows = [
        (
            "Instance execution sequence",
            "loop order",
            "temporal maps",
            "multi-dim time-stamp",
        ),
        (
            "PE workload assignment",
            "parallel directive",
            "spatial maps",
            "multi-dim space-stamp",
        ),
        ("Affine loop transformation", "no", "no", "yes *"),
        ("Spatial architectures", "yes", "yes", "yes"),
        ("PE interconnection model", "no", "no", "yes"),
        ("Precise reuse analysis", "no", "no", "yes *"),
        ("Data assignment analysis", "partial", "yes", "yes"),
        ("Bandwidth analysis", "partial", "yes", "yes"),
        ("Latency / energy modeling", "partial", "yes", "yes"),
        ("General tensor apps", "no", "no", "yes *"),
    ];
    println!(
        "{:<30} {:<18} {:<15} {:<22}",
        "Feature", "Compute-centric", "Data-centric", "Relation-centric"
    );
    for (f, a, b, c) in rows {
        println!("{f:<30} {a:<18} {b:<15} {c:<22}");
    }
    println!();

    // Claim check 1: affine (skewed) dataflows exist in the relation-centric
    // space that the data-centric notation cannot express.
    let gemm = kernels::gemm(16, 16, 16).unwrap();
    let all = dataflows::gemm_dataflows(8, 64);
    let inexpressible: Vec<&str> = all
        .iter()
        .filter(|d| !representable(d, &gemm))
        .filter_map(|d| d.name())
        .collect();
    println!("* GEMM Table III dataflows NOT expressible in data-centric notation:");
    for n in &inexpressible {
        println!("    {n}");
    }
    assert_eq!(inexpressible.len(), 3, "the three skewed GEMM dataflows");

    // Claim check 2: the same skewed dataflows are also outside the
    // compute-centric schedule space (no affine loop transformation).
    let cc_inexpressible: Vec<&str> = all
        .iter()
        .filter(|d| !cc_expressible(d, &gemm))
        .filter_map(|d| d.name())
        .collect();
    println!("* ... and NOT expressible as compute-centric schedules either:");
    for n in &cc_inexpressible {
        println!("    {n}");
    }
    assert_eq!(cc_inexpressible, inexpressible);

    // Claim check 3: the compute-centric reuse polynomial is coarse. For
    // the halo-overlapping 1D-CONV of Figure 1, the product-of-unroll-
    // factors estimate of unique traffic is 2x the exact value.
    let conv1d = tenet_core::TensorOp::builder("conv1d")
        .dim("i", 4)
        .dim("j", 3)
        .read("A", ["i + j"])
        .read("B", ["j"])
        .write("Y", ["i"])
        .build()
        .unwrap();
    let schedule = Schedule::new().parallel("i").order(["j"]);
    let arch = ArchSpec::new("4", [4], Interconnect::Mesh, 4.0);
    let gap = exactness_gap(&conv1d, &schedule, &arch).unwrap();
    let (est, exact) = gap["A"];
    println!();
    println!("* Coarse reuse analysis (Interstellar-style product of unroll factors)");
    println!("  on Figure 1's 1D-CONV, tensor A: estimate {est:.0} vs exact {exact} unique");
    assert!(est as u128 > exact);

    // Claim check 4: general tensor apps (MTTKRP, Jacobi) are first-class.
    let mt = kernels::mttkrp(8, 8, 8, 8).unwrap();
    assert!(dataflows::mttkrp_dataflows(8)
        .iter()
        .all(|d| d.is_injective(&mt).unwrap()));
    println!("* MTTKRP / Jacobi-2D dataflows validate (general tensor apps).");
}
