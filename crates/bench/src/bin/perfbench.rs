//! Perf-trajectory runner: times the ISL substrate and the modeling
//! pipeline in both cache modes and writes `BENCH_isl.json` /
//! `BENCH_modeling.json` at the repo root (or `PERFBENCH_OUT_DIR`), so the
//! speedups are tracked as committed artifacts across PRs.
//!
//! Unlike `cargo bench` (interactive exploration), this runner is built
//! for CI-style comparisons: fixed workloads, median-of-batches timing,
//! explicit cold (cache disabled) and warm (cache enabled) phases, and the
//! cache hit rate observed during the warm phase.

use std::fmt::Write as _;
use std::time::Instant;
use tenet_core::{isl_cache, Interconnect};
use tenet_dse::{enumerate_2d, explore_with_stats};
use tenet_isl::{Map, Set};
use tenet_workloads::{dataflows, kernels};

/// Median ns/iter of `f`, with warm-up, batching, and a time budget.
fn time_ns<O>(mut f: impl FnMut() -> O) -> f64 {
    // Warm-up and batch sizing.
    let mut batch: u64 = 1;
    let warm_deadline = Instant::now() + std::time::Duration::from_millis(150);
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        if t0.elapsed() < std::time::Duration::from_millis(2) && batch < 1 << 22 {
            batch *= 2;
        }
        if Instant::now() >= warm_deadline {
            break;
        }
    }
    let mut samples = Vec::new();
    let deadline = Instant::now() + std::time::Duration::from_millis(600);
    while samples.len() < 15 {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        if Instant::now() >= deadline && samples.len() >= 5 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Entry {
    op: String,
    cold_ns: f64,
    warm_ns: f64,
    hit_rate: f64,
}

/// Measures `f` cold (cache off) then warm (cache cleared, then enabled),
/// capturing the warm-phase hit rate.
fn measure<O>(op: &str, mut f: impl FnMut() -> O) -> Entry {
    isl_cache::set_enabled(false);
    let cold_ns = time_ns(&mut f);
    isl_cache::clear();
    isl_cache::set_enabled(true);
    let before = isl_cache::stats();
    let warm_ns = time_ns(&mut f);
    let after = isl_cache::stats();
    let (h, m) = (after.hits - before.hits, after.misses - before.misses);
    Entry {
        op: op.to_string(),
        cold_ns,
        warm_ns,
        hit_rate: if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        },
    }
}

fn write_json(path: &std::path::Path, entries: &[Entry], extra: &str) {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"op\": \"{}\", \"cold_ns_per_iter\": {:.1}, \"warm_ns_per_iter\": {:.1}, \
             \"speedup\": {:.2}, \"warm_cache_hit_rate\": {:.4}}}",
            e.op,
            e.cold_ns,
            e.warm_ns,
            e.cold_ns / e.warm_ns.max(1e-9),
            e.hit_rate
        );
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]");
    if !extra.is_empty() {
        out.push_str(",\n  ");
        out.push_str(extra);
    }
    out.push_str("\n}\n");
    std::fs::write(path, out).expect("write bench artifact");
    println!("wrote {}", path.display());
}

fn bench_isl(dir: &std::path::Path) {
    let theta_text = "{ S[i,j,k] -> ST[i mod 8, j mod 8, floor(i/8), floor(j/8), \
                      i mod 8 + j mod 8 + k] : 0 <= i < 64 and 0 <= j < 64 and 0 <= k < 64 }";
    let access_text = "{ S[i,j,k] -> A[i,k] : 0 <= i < 64 and 0 <= j < 64 and 0 <= k < 64 }";
    let theta = Map::parse(theta_text).unwrap();
    let access = Map::parse(access_text).unwrap();
    let adf = theta.reverse().apply_range(&access).unwrap();
    let skewed = Set::parse(
        "{ A[x,y,z] : 0 <= x < 100 and 0 <= y < 100 and 0 <= z < 100 and x + y + z < 150 }",
    )
    .unwrap();
    let sub_a = Set::parse("{ A[x,y] : 0 <= x < 50 and 0 <= y < 50 }").unwrap();
    let sub_b = Set::parse("{ A[x,y] : 10 <= x < 40 and 5 <= y < 45 }").unwrap();
    // Box ∩ k≥2 independent slab directions: the zonotope-like shapes the
    // multi-slab closed form covers (previously the recursive fallback).
    let two_slab = Set::parse(
        "{ A[x,y,z] : 0 <= x < 60 and 0 <= y < 60 and 0 <= z < 60 \
         and 20 <= x + y and x + y <= 70 and 15 <= y + z and y + z <= 80 }",
    )
    .unwrap();
    let three_slab = Set::parse(
        "{ A[x,y,z] : 0 <= x < 40 and 0 <= y < 40 and 0 <= z < 40 \
         and 10 <= x + y and x + y <= 60 and 5 <= y + z and y + z <= 70 \
         and 0 <= x + z and x + z <= 50 }",
    )
    .unwrap();
    // Coupled slabs (disjoint supports survive the pinning) and a long
    // two-variable chain: the PR 10 closed forms — coupled-slab floor-sum
    // products and the pair-chain value-table DP.
    let coupled_slab = Set::parse(
        "{ A[x,y,z,w] : 0 <= x < 30 and 0 <= y < 30 and 0 <= z < 30 and 0 <= w < 30 \
         and 10 <= x + y and x + y <= 40 and 5 <= z + w and z + w <= 45 }",
    )
    .unwrap();
    let pair_chain = Set::parse(
        "{ A[a,b,c,d,e] : 0 <= a <= 1999 and 0 <= b <= 1999 and 0 <= c <= 1999 \
         and 0 <= d <= 1999 and 0 <= e <= 1999 \
         and 0 <= a - b and 0 <= b - c and 0 <= c - d and 0 <= d - e }",
    )
    .unwrap();
    assert_eq!(two_slab.card().unwrap(), 109_459);
    assert_eq!(three_slab.card().unwrap(), 41_553);
    assert_eq!(coupled_slab.card().unwrap(), 535_156);
    assert_eq!(pair_chain.card().unwrap(), 268_002_335_000_400);

    let entries = vec![
        measure("isl_reverse", || theta.reverse()),
        measure("isl_apply_range", || {
            theta.reverse().apply_range(&access).unwrap()
        }),
        measure("isl_card_assignment", || adf.card().unwrap()),
        measure("isl_card_skewed_box", || skewed.card().unwrap()),
        measure("isl_subtract", || {
            sub_a.subtract(&sub_b).unwrap().card().unwrap()
        }),
        measure("isl_card_two_slab", || two_slab.card().unwrap()),
        measure("isl_card_three_slab", || three_slab.card().unwrap()),
        measure("isl_card_coupled_slab", || coupled_slab.card().unwrap()),
        measure("isl_card_pair_chain", || pair_chain.card().unwrap()),
        measure("isl_parse", || Map::parse(theta_text).unwrap()),
    ];
    for e in &entries {
        println!(
            "{:<24} cold {:>12.0} ns  warm {:>10.0} ns  ({:>8.1}x, hit rate {:.1}%)",
            e.op,
            e.cold_ns,
            e.warm_ns,
            e.cold_ns / e.warm_ns.max(1e-9),
            e.hit_rate * 100.0
        );
    }
    write_json(&dir.join("BENCH_isl.json"), &entries, "");
}

fn bench_modeling(dir: &std::path::Path) {
    let mut entries = Vec::new();
    for pe in [4i64, 8] {
        for ic in [Interconnect::Systolic1D, Interconnect::Mesh] {
            let label = format!("modeling_gemm_{pe}x{pe}_{}", ic.label());
            let op = kernels::gemm(32, 32, 32).unwrap();
            let df = dataflows::gemm_dataflows(pe, pe * pe)[0].clone();
            let ic2 = ic.clone();
            entries.push(measure(&label, move || {
                tenet_bench::analyze_fitted(&op, &df, ic2.clone(), 8.0, 1).unwrap()
            }));
        }
    }
    for e in &entries {
        println!(
            "{:<28} cold {:>12.0} ns  warm {:>12.0} ns  ({:>6.1}x, hit rate {:.1}%)",
            e.op,
            e.cold_ns,
            e.warm_ns,
            e.cold_ns / e.warm_ns.max(1e-9),
            e.hit_rate * 100.0
        );
    }

    // End-to-end DSE amortization on a small GEMM sweep.
    let op = kernels::gemm(16, 16, 16).unwrap();
    let arch = tenet_core::ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 16.0);
    let candidates = enumerate_2d(&op, 8).unwrap();
    isl_cache::clear();
    isl_cache::set_enabled(true);
    let t0 = Instant::now();
    let (points, stats) = explore_with_stats(&op, &arch, &candidates).unwrap();
    let dse_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "dse_gemm_8x8: {} candidates -> {} points in {:.1} ms (cache hit rate {:.1}%)",
        candidates.len(),
        points.len(),
        dse_ms,
        stats.hit_rate() * 100.0
    );
    // Cold-vs-warm ratio per preset as its own block: the warm path must
    // stay flat while cold analysis keeps getting cheaper.
    let mut ratios = String::from("\"cold_warm_ratio\": {");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            ratios,
            "{}\"{}\": {:.2}",
            if i == 0 { "" } else { ", " },
            e.op,
            e.cold_ns / e.warm_ns.max(1e-9)
        );
    }
    ratios.push_str("},\n  ");
    let extra = format!(
        "{ratios}\"dse\": {{\"bench\": \"dse_gemm_8x8\", \"candidates\": {}, \"evaluated\": {}, \
         \"wall_ms\": {:.1}, \"cache_hit_rate\": {:.4}}}",
        candidates.len(),
        stats.evaluated,
        dse_ms,
        stats.hit_rate()
    );
    write_json(&dir.join("BENCH_modeling.json"), &entries, &extra);
}

/// Fast CI guard (`--smoke`): asserts the closed-form counting fast paths
/// are actually taken — each dispatch counter must advance while counting
/// a box, a single-slab prism, and a k≥2 multi-slab shape — and that the
/// counts are the known-exact values. Panics (nonzero exit) on failure.
fn smoke() {
    isl_cache::set_enabled(false); // force real computation, no memo replay
    let before = tenet_isl::fast_path_stats();
    let boxy = Set::parse("{ A[x, y] : 0 <= x < 7 and 0 <= y < 9 }").unwrap();
    assert_eq!(boxy.card().unwrap(), 63, "box count");
    let slab = Set::parse(
        "{ A[x, y, t] : 0 <= x < 8 and 0 <= y < 8 and 0 <= t < 20 and 3 <= x + y + t and x + y + t <= 18 }",
    )
    .unwrap();
    assert_eq!(slab.card().unwrap(), 758, "slab count");
    let multi = Set::parse(
        "{ A[x, y, z] : 0 <= x < 10 and 0 <= y < 10 and 0 <= z < 10 \
         and 3 <= x + y and x + y <= 14 and 2 <= y + z and y + z <= 15 }",
    )
    .unwrap();
    assert_eq!(multi.card().unwrap(), 778, "multi-slab count");
    // Disjoint-support slab pair: both slabs must survive the pinning and
    // close through the coupled-slab floor-sum product.
    let coupled = Set::parse(
        "{ A[x, y, z, w] : 0 <= x < 8 and 0 <= y < 8 and 0 <= z < 8 and 0 <= w < 8 \
         and 3 <= x + y and x + y <= 10 and 2 <= z + w and z + w <= 12 }",
    )
    .unwrap();
    assert_eq!(coupled.card().unwrap(), 2784, "coupled-slab count");
    // Monotone 5-chain: too wide for the multi-slab odometer, exactly the
    // pair-chain value-table DP's shape (multichoose(2000, 5)).
    let chain = Set::parse(
        "{ A[a, b, c, d, e] : 0 <= a <= 1999 and 0 <= b <= 1999 and 0 <= c <= 1999 \
         and 0 <= d <= 1999 and 0 <= e <= 1999 \
         and 0 <= a - b and 0 <= b - c and 0 <= c - d and 0 <= d - e }",
    )
    .unwrap();
    assert_eq!(
        chain.card().unwrap(),
        268_002_335_000_400,
        "pair-chain count"
    );
    // One-sided box: feasibility probes saturate through the residual-box
    // branch (bounded boxes collapse through the window drop instead).
    let open_box = Set::parse("{ A[x, y] : x >= 0 and y >= 0 }").unwrap();
    assert!(!open_box.is_empty().unwrap(), "open box must be non-empty");
    let after = tenet_isl::fast_path_stats();
    assert!(
        after.box_counts > before.box_counts,
        "residual-box fast path not taken: {before:?} -> {after:?}"
    );
    assert!(
        after.window_counts > before.window_counts,
        "functional-window fast path not taken: {before:?} -> {after:?}"
    );
    assert!(
        after.slab_counts > before.slab_counts,
        "slab fast path not taken: {before:?} -> {after:?}"
    );
    assert!(
        after.multi_slab_counts > before.multi_slab_counts,
        "multi-slab fast path not taken: {before:?} -> {after:?}"
    );
    assert!(
        after.coupled_slab_counts > before.coupled_slab_counts,
        "coupled-slab fast path not taken: {before:?} -> {after:?}"
    );
    assert!(
        after.pair_chain_counts > before.pair_chain_counts,
        "pair-chain fast path not taken: {before:?} -> {after:?}"
    );
    // The memo layer must replay bit-identically on a warm hit.
    isl_cache::clear();
    isl_cache::set_enabled(true);
    let m = Map::parse("{ S[i, j] -> PE[i] : 0 <= i < 9 and 0 <= j < 7 }").unwrap();
    let cold = m.card().unwrap();
    let warm = m.card().unwrap();
    assert_eq!(cold, warm, "memo replay");
    assert!(
        isl_cache::stats().hits > 0,
        "warm card lookup must hit the memo"
    );
    println!("perfbench smoke ok: fast paths {before:?} -> {after:?}");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let dir = std::env::var("PERFBENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let dir = std::path::PathBuf::from(dir);
    bench_isl(&dir);
    bench_modeling(&dir);
}
