//! Table III: the twenty named dataflows, their relation-centric notation,
//! and their data-centric form when one exists.

use tenet_core::{Dataflow, TensorOp};
use tenet_maestro::{representable, to_data_centric};
use tenet_workloads::{dataflows, kernels};

fn print_group(title: &str, op: &TensorOp, dfs: &[Dataflow]) {
    println!("== {title} ==");
    for df in dfs {
        println!("  {}", df.name().unwrap_or("<unnamed>"));
        println!("    space: PE[{}]", df.space_exprs().join(", "));
        println!("    time:  T[{}]", df.time_exprs().join(", "));
        match to_data_centric(df, op) {
            Some(m) => {
                let dirs: Vec<String> = m.directives.iter().map(|d| format!("{d:?}")).collect();
                println!("    data-centric: {}", dirs.join("; "));
            }
            None => println!("    data-centric: x (requires affine transformation)"),
        }
        assert_eq!(representable(df, op), to_data_centric(df, op).is_some());
    }
    println!();
}

fn main() {
    print_group(
        "GEMM",
        &kernels::gemm(16, 16, 16).unwrap(),
        &dataflows::gemm_dataflows(8, 64),
    );
    print_group(
        "2D-CONV",
        &kernels::conv2d(16, 16, 8, 8, 3, 3).unwrap(),
        &dataflows::conv_dataflows(8, 64),
    );
    print_group(
        "MTTKRP",
        &kernels::mttkrp(8, 8, 8, 8).unwrap(),
        &dataflows::mttkrp_dataflows(8),
    );
    print_group(
        "Jacobi-2D",
        &kernels::jacobi2d(18).unwrap(),
        &dataflows::jacobi_dataflows(8, 64),
    );
    print_group(
        "MMc",
        &kernels::mmc(8, 8, 8, 8).unwrap(),
        &dataflows::mmc_dataflows(8),
    );
}
