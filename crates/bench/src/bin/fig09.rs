//! Figure 9: the critical metrics (temporal/spatial reuse per tensor, max
//! and average PE utilization, latency) for every Table III dataflow of
//! GEMM, 2D-CONV, MTTKRP, and Jacobi-2D, under a systolic interconnect.

use tenet_bench::analyze_fitted;
use tenet_core::{Interconnect, Role, TensorOp};
use tenet_workloads::{dataflows, kernels};

fn report(op: &TensorOp, dfs: &[tenet_core::Dataflow]) {
    println!("--- {} ---", op.name());
    println!(
        "{:<28} {:<7} {:>10} {:>10} {:>8} {:>8} {:>12}",
        "dataflow", "tensor", "tmp.reuse", "sp.reuse", "maxU", "avgU", "latency"
    );
    let n = op.instances().unwrap() as f64;
    for df in dfs {
        // The figure applies the systolic topology to every dataflow.
        let ic = if df.n_space() == 1 {
            Interconnect::Systolic1D
        } else {
            Interconnect::Systolic2D
        };
        let r = match analyze_fitted(op, df, ic, 8.0, 1) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skip {:?}: {e}", df.name());
                continue;
            }
        };
        let mut first = true;
        for (t, m) in &r.tensors {
            let label = match m.role {
                Role::Output => "output".to_string(),
                Role::Input => format!("input-{t}"),
            };
            println!(
                "{:<28} {:<7} {:>10.3} {:>10.3} {:>8} {:>8} {:>12}",
                if first { df.name().unwrap_or("") } else { "" },
                label,
                m.volumes.temporal_reuse as f64 / n,
                m.volumes.spatial_reuse as f64 / n,
                if first {
                    format!("{:.2}", r.utilization.max)
                } else {
                    String::new()
                },
                if first {
                    format!("{:.2}", r.utilization.average)
                } else {
                    String::new()
                },
                if first {
                    format!("{:.0}", r.latency.total())
                } else {
                    String::new()
                },
            );
            first = false;
        }
    }
    println!();
}

fn main() {
    println!("Figure 9: critical metrics per dataflow (systolic interconnect)");
    println!("reuse volumes normalized by the instance count\n");
    report(
        &kernels::gemm(64, 64, 64).unwrap(),
        &dataflows::gemm_dataflows(8, 64),
    );
    report(
        &kernels::conv2d(64, 16, 16, 16, 3, 3).unwrap(),
        &dataflows::conv_dataflows(8, 64),
    );
    report(
        &kernels::mttkrp(32, 32, 32, 32).unwrap(),
        &dataflows::mttkrp_dataflows(8),
    );
    report(
        &kernels::jacobi2d(66).unwrap(),
        &dataflows::jacobi_dataflows(8, 64),
    );
}
