//! # tenet-bench
//!
//! The benchmark harness regenerating every table and figure of the TENET
//! evaluation (Section VI). Each `fig*` / `table*` binary prints the rows
//! or series of the corresponding figure; `cargo bench` runs the
//! Criterion timing studies (Figure 8 and the ablations).

#![warn(missing_docs)]

use tenet_core::{
    Analysis, AnalysisOptions, ArchSpec, Dataflow, Interconnect, PerformanceReport, Result, Role,
    TensorOp,
};

/// Builds an architecture whose PE array exactly fits the space-stamps a
/// dataflow uses (the paper's Section VI-C experiments do not normalize
/// dataflows onto one array size).
pub fn arch_for(
    df: &Dataflow,
    op: &TensorOp,
    interconnect: Interconnect,
    bandwidth: f64,
) -> Result<ArchSpec> {
    let used = df.used_pes(op)?;
    let mut dims = Vec::with_capacity(used.n_dim());
    for d in 0..used.n_dim() {
        let (_, hi) = used.dim_bounds(d)?;
        dims.push(hi + 1);
    }
    Ok(ArchSpec::new("fitted", dims, interconnect, bandwidth))
}

/// Latency of a report re-evaluated at a different scratchpad bandwidth
/// (volumes are bandwidth-independent, so sweeps are free).
pub fn latency_at(report: &PerformanceReport, bandwidth: f64) -> f64 {
    let unique_in = report.unique_volume(Role::Input) as f64;
    let unique_out = report.unique_volume(Role::Output) as f64;
    report
        .latency
        .compute
        .max(unique_in / bandwidth)
        .max(unique_out / bandwidth)
}

/// Runs the full analysis for one dataflow on a fitted array.
pub fn analyze_fitted(
    op: &TensorOp,
    df: &Dataflow,
    interconnect: Interconnect,
    bandwidth: f64,
    window: u32,
) -> Result<PerformanceReport> {
    let arch = arch_for(df, op, interconnect, bandwidth)?;
    let options = AnalysisOptions {
        reuse_window: window,
        ..Default::default()
    };
    Analysis::with_options(op, df, &arch, options)?.report()
}

/// Prints a row of right-aligned columns.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Bits per tensor element assumed when converting the paper's bit/cycle
/// bandwidth axis to elements/cycle (16-bit fixed point, as in Eyeriss).
pub const BITS_PER_ELEMENT: f64 = 16.0;
