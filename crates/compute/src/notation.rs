//! The compute-centric notation (Table I, first column): imperative loop
//! transformation directives in the style of Timeloop's mapping language
//! and Interstellar's Halide-based scheduling primitives.
//!
//! A [`Schedule`] transforms the original loop nest with three directive
//! kinds:
//!
//! * `tile(dim, factor)` — loop blocking, splitting `dim` into an outer
//!   quotient loop `dim_o` and an inner remainder loop `dim_i`;
//! * `parallel(part)` — assigns a (possibly tiled) loop to one PE-array
//!   dimension, in call order (Timeloop's `parallel`/Interstellar's
//!   `unroll`);
//! * `order([parts...])` — the temporal loop order, outermost first.
//!
//! The notation deliberately has *no* way to express an affine
//! combination of loops (`i + j + k`) as a schedule dimension — that is
//! the expressiveness gap Section II-C describes, checked by
//! [`expressible`].

use std::collections::BTreeMap;
use tenet_core::{Dataflow, TensorOp};

/// One loop part after tiling: the whole dim, its quotient, or its
/// remainder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Part {
    /// An untiled original dimension.
    Whole(String),
    /// `dim_o = floor(dim / factor)`.
    Outer(String, i64),
    /// `dim_i = dim mod factor`.
    Inner(String, i64),
}

impl Part {
    pub(crate) fn expr(&self) -> String {
        match self {
            Part::Whole(d) => d.clone(),
            Part::Outer(d, f) => format!("floor({d} / {f})"),
            Part::Inner(d, f) => format!("{d} % {f}"),
        }
    }

    pub(crate) fn dim(&self) -> &str {
        match self {
            Part::Whole(d) | Part::Outer(d, _) | Part::Inner(d, _) => d,
        }
    }

    /// Trip count of this part given the original extent.
    pub(crate) fn extent(&self, dim_extent: i64) -> i64 {
        match self {
            Part::Whole(_) => dim_extent,
            Part::Outer(_, f) => (dim_extent + f - 1) / f,
            Part::Inner(_, f) => (*f).min(dim_extent),
        }
    }
}

/// A compute-centric schedule: tiling + parallel assignment + loop order.
///
/// ```
/// use tenet_compute::Schedule;
/// // Timeloop-style mapping of GEMM onto an 8x8 array:
/// //   tile i and j by 8, unroll the inner tiles spatially,
/// //   iterate (i_o, j_o, k) in time.
/// let s = Schedule::new()
///     .tile("i", 8)
///     .tile("j", 8)
///     .parallel("i_i")
///     .parallel("j_i")
///     .order(["i_o", "j_o", "k"]);
/// assert_eq!(s.n_parallel(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    tiles: BTreeMap<String, i64>,
    parallel: Vec<String>,
    order: Vec<String>,
    name: Option<String>,
}

/// An error raised while checking a schedule against an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError(pub String);

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid schedule: {}", self.0)
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Starts an empty schedule.
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Splits `dim` into `dim_o` (quotient) and `dim_i` (remainder of
    /// size `factor`). The paper calls this `blocking`.
    pub fn tile(mut self, dim: &str, factor: i64) -> Schedule {
        self.tiles.insert(dim.to_string(), factor);
        self
    }

    /// Assigns a loop part to the next PE-array dimension.
    pub fn parallel(mut self, part: &str) -> Schedule {
        self.parallel.push(part.to_string());
        self
    }

    /// Sets the temporal loop order, outermost first.
    pub fn order<S: Into<String>, I: IntoIterator<Item = S>>(mut self, parts: I) -> Schedule {
        self.order = parts.into_iter().map(Into::into).collect();
        self
    }

    /// Attaches a display name.
    pub fn named(mut self, name: &str) -> Schedule {
        self.name = Some(name.to_string());
        self
    }

    /// The display name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Number of parallel (spatial) directives.
    pub fn n_parallel(&self) -> usize {
        self.parallel.len()
    }

    /// The tile factor of `dim`, if tiled.
    pub fn tile_factor(&self, dim: &str) -> Option<i64> {
        self.tiles.get(dim).copied()
    }

    pub(crate) fn parallel_parts(&self, op: &TensorOp) -> Result<Vec<Part>, ScheduleError> {
        self.parallel.iter().map(|p| self.resolve(p, op)).collect()
    }

    pub(crate) fn temporal_parts(&self, op: &TensorOp) -> Result<Vec<Part>, ScheduleError> {
        self.order.iter().map(|p| self.resolve(p, op)).collect()
    }

    // Resolves a part name like `i`, `i_o`, `i_i` against the op's dims
    // and the tiling table.
    fn resolve(&self, part: &str, op: &TensorOp) -> Result<Part, ScheduleError> {
        let dims: Vec<&str> = op.dims().iter().map(|d| d.name.as_str()).collect();
        if dims.contains(&part) {
            if self.tiles.contains_key(part) {
                return Err(ScheduleError(format!(
                    "`{part}` is tiled; schedule its parts `{part}_o` and `{part}_i`"
                )));
            }
            return Ok(Part::Whole(part.to_string()));
        }
        for (suffix, outer) in [("_o", true), ("_i", false)] {
            if let Some(base) = part.strip_suffix(suffix) {
                if dims.contains(&base) {
                    let f = self.tiles.get(base).copied().ok_or_else(|| {
                        ScheduleError(format!(
                            "`{part}` refers to a tile of `{base}`, but `{base}` is not tiled"
                        ))
                    })?;
                    return Ok(if outer {
                        Part::Outer(base.to_string(), f)
                    } else {
                        Part::Inner(base.to_string(), f)
                    });
                }
            }
        }
        Err(ScheduleError(format!(
            "`{part}` is neither a loop of `{}` nor a tile part",
            op.name()
        )))
    }

    /// Checks structural legality against `op`: every loop (or both parts
    /// of a tiled loop) appears exactly once across `parallel` and
    /// `order`, and tile factors are positive.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] naming the offending part.
    pub fn check(&self, op: &TensorOp) -> Result<(), ScheduleError> {
        for (dim, f) in &self.tiles {
            if *f <= 0 {
                return Err(ScheduleError(format!(
                    "tile factor of `{dim}` must be positive"
                )));
            }
            if !op.dims().iter().any(|d| &d.name == dim) {
                return Err(ScheduleError(format!(
                    "tiled `{dim}` is not a loop of the op"
                )));
            }
        }
        let mut seen: Vec<String> = Vec::new();
        for p in self.parallel.iter().chain(self.order.iter()) {
            self.resolve(p, op)?;
            if seen.contains(p) {
                return Err(ScheduleError(format!("`{p}` scheduled twice")));
            }
            seen.push(p.clone());
        }
        // Coverage: every dim contributes all its parts.
        for d in op.dims() {
            let needed: Vec<String> = match self.tiles.get(&d.name) {
                Some(_) => vec![format!("{}_o", d.name), format!("{}_i", d.name)],
                None => vec![d.name.clone()],
            };
            for n in needed {
                if !seen.contains(&n) {
                    return Err(ScheduleError(format!(
                        "part `{n}` of loop `{}` is not scheduled",
                        d.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Lowers the schedule to an exactly equivalent relation-centric
    /// [`Dataflow`] — the subsumption direction of Table I: every
    /// compute-centric mapping corresponds to a (mod/floor-only, skew-free)
    /// relation.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] when [`Schedule::check`] fails.
    pub fn lower(&self, op: &TensorOp) -> Result<Dataflow, ScheduleError> {
        self.check(op)?;
        let space: Vec<String> = self.parallel_parts(op)?.iter().map(Part::expr).collect();
        let time: Vec<String> = self.temporal_parts(op)?.iter().map(Part::expr).collect();
        let df = Dataflow::new(space, time);
        Ok(match &self.name {
            Some(n) => df.named(n),
            None => df,
        })
    }
}

/// Whether a relation-centric dataflow is expressible as a
/// compute-centric schedule: every stamp dimension must be a *single*
/// loop (possibly tiled: `d`, `d mod f`, or `floor(d / f)`), with no
/// affine combination of distinct loops (Section II-C / Figure 1).
pub fn expressible(df: &Dataflow, op: &TensorOp) -> bool {
    let dims: Vec<String> = op.dims().iter().map(|d| d.name.clone()).collect();
    df.space_exprs()
        .iter()
        .chain(df.time_exprs().iter())
        .all(|e| single_loop_expr(e, &dims))
}

// `d`, `d % f`, `floor(d / f)` for exactly one known loop `d`.
fn single_loop_expr(text: &str, dims: &[String]) -> bool {
    let Ok(e) = tenet_frontend::Expr::parse(text) else {
        return false;
    };
    let vars = e.free_vars();
    if vars.len() != 1 || !dims.contains(&vars[0]) {
        return false;
    }
    use tenet_frontend::Expr;
    match e {
        Expr::Var(_) => true,
        Expr::Mod(inner, _) | Expr::FloorDiv(inner, _) => matches!(*inner, Expr::Var(_)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm() -> TensorOp {
        TensorOp::builder("gemm")
            .dim("i", 16)
            .dim("j", 16)
            .dim("k", 16)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap()
    }

    fn tpu_schedule() -> Schedule {
        Schedule::new()
            .tile("i", 8)
            .tile("j", 8)
            .parallel("i_i")
            .parallel("j_i")
            .order(["i_o", "j_o", "k"])
    }

    #[test]
    fn legal_schedule_checks() {
        tpu_schedule().check(&gemm()).unwrap();
    }

    #[test]
    fn lowering_produces_tiled_dataflow() {
        let df = tpu_schedule().lower(&gemm()).unwrap();
        assert_eq!(df.space_exprs(), ["i % 8", "j % 8"]);
        assert_eq!(df.time_exprs(), ["floor(i / 8)", "floor(j / 8)", "k"]);
    }

    #[test]
    fn lowered_dataflow_is_injective() {
        let op = gemm();
        let df = tpu_schedule().lower(&op).unwrap();
        assert!(df.is_injective(&op).unwrap());
        assert_eq!(df.used_pes(&op).unwrap().card().unwrap(), 64);
    }

    #[test]
    fn missing_part_is_rejected() {
        let s = Schedule::new()
            .tile("i", 8)
            .parallel("i_i")
            .order(["j", "k"]); // i_o missing
        let err = s.check(&gemm()).unwrap_err();
        assert!(err.0.contains("i_o"));
    }

    #[test]
    fn double_scheduling_is_rejected() {
        let s = Schedule::new().parallel("i").order(["i", "j", "k"]);
        let err = s.check(&gemm()).unwrap_err();
        assert!(err.0.contains("twice"));
    }

    #[test]
    fn tiled_whole_dim_cannot_be_scheduled() {
        let s = Schedule::new().tile("i", 4).parallel("i").order(["j", "k"]);
        let err = s.check(&gemm()).unwrap_err();
        assert!(err.0.contains("its parts"));
    }

    #[test]
    fn unknown_part_is_rejected() {
        let s = Schedule::new().parallel("z").order(["i", "j", "k"]);
        assert!(s.check(&gemm()).is_err());
    }

    #[test]
    fn tile_part_of_untiled_dim_is_rejected() {
        let s = Schedule::new().parallel("i_i").order(["i_o", "j", "k"]);
        let err = s.check(&gemm()).unwrap_err();
        assert!(err.0.contains("not tiled"));
    }

    #[test]
    fn zero_tile_factor_is_rejected() {
        let s = Schedule::new()
            .tile("i", 0)
            .parallel("i_i")
            .order(["i_o", "j", "k"]);
        assert!(s.check(&gemm()).is_err());
    }

    #[test]
    fn non_dividing_tile_factor_is_exact() {
        // 16 tiled by 5: quotient extent ceil(16/5) = 4, remainder 5.
        let op = gemm();
        let s = Schedule::new()
            .tile("i", 5)
            .parallel("i_i")
            .order(["i_o", "j", "k"]);
        let df = s.lower(&op).unwrap();
        assert!(df.is_injective(&op).unwrap());
        // PEs 0..4 used (5 wide).
        assert_eq!(df.used_pes(&op).unwrap().card().unwrap(), 5);
    }

    #[test]
    fn expressible_accepts_tiled_skew_free() {
        let op = gemm();
        let df = tpu_schedule().lower(&op).unwrap();
        assert!(expressible(&df, &op));
    }

    #[test]
    fn expressible_rejects_skewed_time_stamp() {
        let op = gemm();
        // Figure 3: the systolic wavefront i + j + k is not a schedule.
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        assert!(!expressible(&df, &op));
    }

    #[test]
    fn expressible_rejects_multi_dim_space_stamp() {
        let op = gemm();
        // Eyeriss-style packing of two loops onto one PE dim.
        let df = Dataflow::new(["j + 3*(i % 4)"], ["i", "k"]);
        assert!(!expressible(&df, &op));
    }

    #[test]
    fn part_extents() {
        assert_eq!(Part::Outer("i".into(), 5).extent(16), 4);
        assert_eq!(Part::Inner("i".into(), 5).extent(16), 5);
        assert_eq!(Part::Whole("i".into()).extent(16), 16);
        assert_eq!(Part::Inner("i".into(), 32).extent(16), 16);
    }
}
