//! # tenet-compute
//!
//! The compute-centric baseline of Table I: Timeloop/Interstellar-style
//! schedules (loop order, tiling, parallel directives), the
//! coarse product-of-unroll-factors analytical model those tools use,
//! and an exact lowering into the relation-centric notation.
//!
//! Three claims of the paper become checkable code here:
//!
//! 1. **Subsumption** — every compute-centric schedule lowers to a
//!    relation-centric [`tenet_core::Dataflow`] ([`Schedule::lower`]);
//! 2. **Expressiveness gap** — skewed dataflows such as Figure 3's
//!    `T[i+j+k]` are *not* expressible as any schedule
//!    ([`expressible`]);
//! 3. **Accuracy gap** — the coarse reuse polynomial misestimates
//!    halo-overlapping accesses where the exact integer-set model does
//!    not ([`exactness_gap`]).
//!
//! ```
//! use tenet_compute::Schedule;
//! use tenet_core::{ArchSpec, Interconnect, TensorOp};
//!
//! let gemm = TensorOp::builder("gemm")
//!     .dim("i", 16).dim("j", 16).dim("k", 16)
//!     .read("A", ["i", "k"]).read("B", ["k", "j"]).write("Y", ["i", "j"])
//!     .build()?;
//! let schedule = Schedule::new()
//!     .tile("i", 8).tile("j", 8)
//!     .parallel("i_i").parallel("j_i")
//!     .order(["i_o", "j_o", "k"]);
//! let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 16.0);
//! let coarse = tenet_compute::evaluate(&gemm, &schedule, &arch)?;
//! assert_eq!(coarse.utilization, 1.0);
//! // The same schedule, exactly, in relation-centric notation:
//! let df = schedule.lower(&gemm).unwrap();
//! assert_eq!(df.space_exprs(), ["i % 8", "j % 8"]);
//! # Ok::<(), tenet_core::Error>(())
//! ```

#![warn(missing_docs)]

mod model;
mod notation;

pub use model::{evaluate, exactness_gap, CcModel, CcTensor};
pub use notation::{expressible, Schedule, ScheduleError};
