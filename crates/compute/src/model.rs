//! The coarse compute-centric analytical model.
//!
//! Section II-C: "previous compute-centric notation-based models only
//! analyze data reuse opportunities in a coarse-grained manner ...
//! Interstellar calculates data reuse using the product of unroll
//! factors." This module reproduces that style of estimate *on purpose*:
//! the reuse factor of a tensor is the product of the trip counts of
//! every scheduled loop part that does not index the tensor. The
//! estimate ignores interconnect reachability, halo overlaps of strided
//! windows, and multi-level temporal reuse — exactly the blind spots the
//! relation-centric model fixes. [`exactness_gap`] quantifies the error
//! against the exact model for the same schedule.

use crate::notation::Schedule;
use std::collections::BTreeMap;
use tenet_core::{Analysis, ArchSpec, Result, Role, TensorOp};
use tenet_frontend::Expr;

/// Coarse per-tensor estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct CcTensor {
    /// Input or output.
    pub role: Role,
    /// Total accesses (`#accesses x |D_S|` contributions of this tensor).
    pub total: f64,
    /// Estimated reuse factor: product of non-indexing loop trip counts.
    pub reuse_factor: f64,
    /// Estimated scratchpad traffic `total / reuse_factor`.
    pub unique: f64,
}

/// The coarse model output.
#[derive(Debug, Clone, PartialEq)]
pub struct CcModel {
    /// Per-tensor estimates.
    pub tensors: BTreeMap<String, CcTensor>,
    /// Estimated compute latency (cycles).
    pub compute_latency: f64,
    /// Estimated memory latency (cycles) at the given bandwidth.
    pub memory_latency: f64,
    /// Estimated average PE utilization.
    pub utilization: f64,
}

impl CcModel {
    /// Overall latency estimate: compute/memory overlap is assumed
    /// perfect (double buffering), as in the paper's latency model.
    pub fn latency(&self) -> f64 {
        self.compute_latency.max(self.memory_latency)
    }
}

/// Evaluates a schedule with the coarse compute-centric model.
///
/// # Errors
///
/// Returns a [`tenet_core::Error`] when the schedule is structurally
/// invalid for `op`.
pub fn evaluate(op: &TensorOp, schedule: &Schedule, arch: &ArchSpec) -> Result<CcModel> {
    schedule
        .check(op)
        .map_err(|e| tenet_core::Error::Invalid(e.to_string()))?;
    let extents: BTreeMap<&str, i64> = op
        .dims()
        .iter()
        .map(|d| (d.name.as_str(), d.extent()))
        .collect();

    let parallel = schedule
        .parallel_parts(op)
        .map_err(|e| tenet_core::Error::Invalid(e.to_string()))?;
    let temporal = schedule
        .temporal_parts(op)
        .map_err(|e| tenet_core::Error::Invalid(e.to_string()))?;

    let instances: f64 = extents.values().map(|&e| e as f64).product();

    // Which original dims index each tensor (scanned from the access
    // expressions — the coarse model does not see affine structure, only
    // "does loop d appear").
    let mut model_tensors = BTreeMap::new();
    for access in op.accesses() {
        let mut indexing: Vec<String> = Vec::new();
        for e in &access.exprs {
            if let Ok(parsed) = Expr::parse(e) {
                for v in parsed.free_vars() {
                    if !indexing.contains(&v) {
                        indexing.push(v);
                    }
                }
            }
        }
        // Product of trip counts of scheduled parts whose dim does not
        // index the tensor.
        let mut reuse_factor = 1.0f64;
        for part in parallel.iter().chain(temporal.iter()) {
            if !indexing.iter().any(|d| d == part.dim()) {
                reuse_factor *= part.extent(extents[part.dim()]) as f64;
            }
        }
        let entry = model_tensors
            .entry(access.tensor.clone())
            .or_insert(CcTensor {
                role: access.role,
                total: 0.0,
                reuse_factor,
                unique: 0.0,
            });
        entry.total += instances;
        entry.reuse_factor = entry.reuse_factor.max(reuse_factor);
    }
    for t in model_tensors.values_mut() {
        t.unique = t.total / t.reuse_factor;
    }

    let spatial: f64 = parallel
        .iter()
        .map(|p| p.extent(extents[p.dim()]) as f64)
        .product();
    let pes = arch.pe_count() as f64;
    let utilization = (spatial / pes).min(1.0);
    let compute_latency = instances / spatial.min(pes);
    let traffic: f64 = model_tensors.values().map(|t| t.unique).sum();
    let memory_latency = traffic / arch.bandwidth;

    Ok(CcModel {
        tensors: model_tensors,
        compute_latency,
        memory_latency,
        utilization,
    })
}

/// Per-tensor (coarse estimate, exact value) pairs for scratchpad
/// traffic, computed by lowering the same schedule to a relation-centric
/// dataflow and running the exact model — the quantitative form of the
/// Section II-C accuracy claim.
///
/// # Errors
///
/// Propagates schedule and analysis failures.
pub fn exactness_gap(
    op: &TensorOp,
    schedule: &Schedule,
    arch: &ArchSpec,
) -> Result<BTreeMap<String, (f64, u128)>> {
    let coarse = evaluate(op, schedule, arch)?;
    let df = schedule
        .lower(op)
        .map_err(|e| tenet_core::Error::Invalid(e.to_string()))?;
    let analysis = Analysis::new(op, &df, arch)?;
    let mut out = BTreeMap::new();
    for (name, cc) in &coarse.tensors {
        let exact = analysis.volumes(name)?;
        out.insert(name.clone(), (cc.unique, exact.unique));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_core::Interconnect;

    fn gemm() -> TensorOp {
        TensorOp::builder("gemm")
            .dim("i", 16)
            .dim("j", 16)
            .dim("k", 16)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap()
    }

    fn tpu_schedule() -> Schedule {
        Schedule::new()
            .tile("i", 8)
            .tile("j", 8)
            .parallel("i_i")
            .parallel("j_i")
            .order(["i_o", "j_o", "k"])
    }

    fn arch() -> ArchSpec {
        ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 16.0)
    }

    #[test]
    fn reuse_factor_is_product_of_non_indexing_trip_counts() {
        let m = evaluate(&gemm(), &tpu_schedule(), &arch()).unwrap();
        // A[i,k]: loops not indexing A are j_i (8) and j_o (2) -> 16.
        assert_eq!(m.tensors["A"].reuse_factor, 16.0);
        // B[k,j]: i_i (8) x i_o (2) -> 16.
        assert_eq!(m.tensors["B"].reuse_factor, 16.0);
        // Y[i,j]: k (16) -> 16.
        assert_eq!(m.tensors["Y"].reuse_factor, 16.0);
    }

    #[test]
    fn utilization_and_compute_latency() {
        let m = evaluate(&gemm(), &tpu_schedule(), &arch()).unwrap();
        assert_eq!(m.utilization, 1.0);
        // 4096 instances / 64 PEs.
        assert_eq!(m.compute_latency, 64.0);
    }

    #[test]
    fn coarse_total_counts_accesses() {
        let m = evaluate(&gemm(), &tpu_schedule(), &arch()).unwrap();
        for t in ["A", "B", "Y"] {
            assert_eq!(m.tensors[t].total, 4096.0, "tensor {t}");
        }
    }

    #[test]
    fn coarse_model_matches_exact_on_simple_stationary_schedule() {
        // Output-stationary mapping on a matching array: the coarse
        // product happens to be exact for GEMM's dense index structure.
        let gap = exactness_gap(&gemm(), &tpu_schedule(), &arch()).unwrap();
        let (est, exact) = gap["Y"];
        assert_eq!(est as u128, 256);
        assert_eq!(exact, 256);
    }

    #[test]
    fn coarse_model_overestimates_reuse_on_conv_halo() {
        // 1D-CONV: A[i + j] has halo overlap between windows; the coarse
        // product cannot see it (Figure 1(c)).
        let op = TensorOp::builder("conv1d")
            .dim("i", 4)
            .dim("j", 3)
            .read("A", ["i + j"])
            .read("B", ["j"])
            .write("Y", ["i"])
            .build()
            .unwrap();
        let s = Schedule::new().parallel("i").order(["j"]);
        let arch = ArchSpec::new("4", [4], Interconnect::Mesh, 4.0);
        let gap = exactness_gap(&op, &s, &arch).unwrap();
        let (est, exact) = gap["A"];
        // Coarse: A indexed by both i and j -> reuse 1 -> unique 12.
        // Exact: the skewed footprint holds only 6 distinct elements.
        assert_eq!(est as u128, 12);
        assert_eq!(exact, 6);
        assert!(est as u128 > exact);
    }

    #[test]
    fn memory_latency_scales_with_bandwidth() {
        let op = gemm();
        let s = tpu_schedule();
        let slow = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 4.0);
        let fast = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 64.0);
        let m_slow = evaluate(&op, &s, &slow).unwrap();
        let m_fast = evaluate(&op, &s, &fast).unwrap();
        assert!(m_slow.memory_latency > m_fast.memory_latency);
        assert_eq!(m_slow.compute_latency, m_fast.compute_latency);
    }

    #[test]
    fn oversubscribed_parallelism_clamps_utilization() {
        let op = gemm();
        // 16-wide parallel loop on an 8-PE row: coarse util still <= 1.
        let s = Schedule::new().parallel("i").order(["j", "k"]);
        let arch = ArchSpec::new("8", [8], Interconnect::Systolic1D, 16.0);
        let m = evaluate(&op, &s, &arch).unwrap();
        assert_eq!(m.utilization, 1.0);
        assert_eq!(m.compute_latency, 4096.0 / 8.0);
    }
}
