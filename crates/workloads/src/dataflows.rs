//! The twenty named dataflows of Table III, in relation-centric notation.
//!
//! Table III prints only the innermost two time dimensions "for
//! simplicity"; here each dataflow carries a complete time-stamp (loop
//! dimensions absent from the printed stamp become outer temporal
//! dimensions) so that every dataflow is injective — a PE performs one MAC
//! per cycle.
//!
//! Names follow the paper's `(<space>-P | <inner time>-T)` convention.

use tenet_core::Dataflow;

/// The five GEMM dataflows (Table III), for a `pe × pe` array
/// (2-D space-stamps) or a `pe1d`-wide array (1-D space-stamps).
pub fn gemm_dataflows(pe: i64, pe1d: i64) -> Vec<Dataflow> {
    vec![
        // Applied in the TPU.
        Dataflow::new(
            [format!("i mod {pe}"), format!("j mod {pe}")],
            [
                format!("floor(i/{pe})"),
                format!("floor(j/{pe})"),
                format!("i mod {pe} + j mod {pe} + k"),
            ],
        )
        .named("(IJ-P | J,IJK-T)"),
        Dataflow::new(
            [format!("k mod {pe}"), format!("j mod {pe}")],
            [
                format!("floor(j/{pe})"),
                format!("floor(k/{pe})"),
                format!("i + j mod {pe} + k mod {pe}"),
            ],
        )
        .named("(KJ-P | K,IJK-T)"),
        Dataflow::new(
            [format!("i mod {pe}"), format!("k mod {pe}")],
            [
                format!("floor(i/{pe})"),
                format!("floor(k/{pe})"),
                format!("j + i mod {pe} + k mod {pe}"),
            ],
        )
        .named("(IK-P | K,IJK-T)"),
        Dataflow::new(
            [format!("k mod {pe1d}")],
            [format!("floor(k/{pe1d})"), "i".into(), "j".into()],
        )
        .named("(K-P | I,J-T)"),
        Dataflow::new(
            [format!("j mod {pe1d}")],
            [format!("floor(j/{pe1d})"), "i".into(), "k".into()],
        )
        .named("(J-P | I,K-T)"),
    ]
}

/// The eight 2D-CONV dataflows of Table III. The Eyeriss row-stationary
/// dataflow assumes a 12-row array and `ry < 3`, `c` a multiple of 4
/// mapped as `ry + 3*(c mod 4)` (Section VI-E).
pub fn conv_dataflows(pe: i64, pe1d: i64) -> Vec<Dataflow> {
    vec![
        Dataflow::new(
            [format!("k mod {pe}"), format!("c mod {pe}")],
            [
                "rx".into(),
                "ry".into(),
                format!("floor(k/{pe})"),
                format!("floor(c/{pe})"),
                "oy".into(),
                format!("k mod {pe} + c mod {pe} + ox"),
            ],
        )
        .named("(KC-P | OY,KCOX-T)"),
        Dataflow::new(
            [format!("k mod {pe}"), format!("ox mod {pe}")],
            [
                "rx".into(),
                "ry".into(),
                format!("floor(k/{pe})"),
                format!("floor(ox/{pe})"),
                "oy".into(),
                format!("k mod {pe} + ox mod {pe} + c"),
            ],
        )
        .named("(KOX-P | OY,KOXC-T)"),
        Dataflow::new(
            [format!("k mod {pe}"), format!("c mod {pe}")],
            [
                "rx".into(),
                "ry".into(),
                format!("floor(k/{pe})"),
                "oy".into(),
                format!("floor(c/{pe})"),
                format!("k mod {pe} + ox"),
            ],
        )
        .named("(KC-P | C,KOX-T)"),
        Dataflow::new(
            [format!("k mod {pe1d}")],
            [
                "rx".into(),
                "ry".into(),
                format!("floor(k/{pe1d})"),
                "c".into(),
                "ox".into(),
                "oy".into(),
            ],
        )
        .named("(K-P | OX,OY-T)"),
        Dataflow::new(
            [format!("c mod {pe1d}")],
            [
                "rx".into(),
                "ry".into(),
                format!("floor(c/{pe1d})"),
                "k".into(),
                "oy".into(),
                "ox".into(),
            ],
        )
        .named("(C-P | OY,OX-T)"),
        // Motivated by Eyeriss: rows hold (filter row, channel group).
        Dataflow::new(
            ["ry + 3*(c mod 4)".to_string(), "oy".to_string()],
            [
                "rx".to_string(),
                "k mod 16".to_string(),
                "floor((c mod 16)/4)".to_string(),
                "floor(k/16)".to_string(),
                "floor(c/16)".to_string(),
                "ox".to_string(),
            ],
        )
        .named("(RYOY-P | OY,OX-T)"),
        // Motivated by ShiDianNao: output-stationary tiles.
        Dataflow::new(
            [format!("oy mod {pe}"), format!("ox mod {pe}")],
            [
                "k".into(),
                "c".into(),
                "rx".into(),
                "ry".into(),
                format!("floor(oy/{pe})"),
                format!("floor(ox/{pe})"),
            ],
        )
        .named("(OYOX-P | OY,OX-T)"),
        // Motivated by NVDLA: channel-parallel.
        Dataflow::new(
            [format!("k mod {pe}"), format!("c mod {pe}")],
            [
                "rx".into(),
                "ry".into(),
                format!("floor(k/{pe})"),
                format!("floor(c/{pe})"),
                "oy".into(),
                "ox".into(),
            ],
        )
        .named("(KC-P | OY,OX-T)"),
    ]
}

/// The Eyeriss row-stationary dataflow used by the accuracy studies
/// (Figures 11 and 12): PE rows hold a (filter-row, channel-quartet)
/// pair, PE columns hold output rows, and each PE sweeps the filter width
/// and a channel quartet "continuously" before advancing to the next
/// output column (Section VI-E).
///
/// Use with [`tenet_core::presets::eyeriss_like`]-shaped arrays, an
/// Eyeriss-style multicast NoC, and a reuse window of 12 (= RX × quartet).
pub fn eyeriss_row_stationary() -> Dataflow {
    Dataflow::new(
        ["ry + 3*(c mod 4)".to_string(), "oy".to_string()],
        [
            "floor(k/16)".to_string(),
            "k mod 16".to_string(),
            "floor(c/16)".to_string(),
            "ox".to_string(),
            "floor((c mod 16)/4)".to_string(),
            "rx".to_string(),
        ],
    )
    .named("(RYOY-P | OY,OX-T) row-stationary")
}

/// Like [`eyeriss_row_stationary`] but with the output rows folded onto a
/// `oy_tile`-column array, for layers whose output height exceeds the
/// array width.
pub fn eyeriss_row_stationary_tiled(oy_tile: i64) -> Dataflow {
    Dataflow::new(
        ["ry + 3*(c mod 4)".to_string(), format!("oy mod {oy_tile}")],
        [
            format!("floor(oy/{oy_tile})"),
            "floor(k/16)".to_string(),
            "k mod 16".to_string(),
            "floor(c/16)".to_string(),
            "ox".to_string(),
            "floor((c mod 16)/4)".to_string(),
            "rx".to_string(),
        ],
    )
    .named("(RYOY-P | OY,OX-T) row-stationary (tiled)")
}

/// The MAERI dataflow for the Figure 11(c)/(d) study: the 1-D multiplier
/// array holds the output-channel dimension; the reconfigurable reduction
/// tree is modeled as same-cycle multicast links.
pub fn maeri_dataflow(n_mult: i64) -> Dataflow {
    Dataflow::new(
        [format!("k mod {n_mult}")],
        [
            format!("floor(k/{n_mult})"),
            "c".to_string(),
            "ry".to_string(),
            "oy".to_string(),
            "ox".to_string(),
            "rx".to_string(),
        ],
    )
    .named("(K-P | OX,RX-T) maeri")
}

/// The three MTTKRP dataflows of Table III.
pub fn mttkrp_dataflows(pe: i64) -> Vec<Dataflow> {
    vec![
        Dataflow::new(
            [format!("i mod {pe}"), format!("j mod {pe}")],
            [
                "k".into(),
                format!("floor(i/{pe})"),
                format!("floor(j/{pe})"),
                format!("i mod {pe} + j mod {pe} + l"),
            ],
        )
        .named("(IJ-P | J,IJL-T)"),
        Dataflow::new(
            [format!("k mod {pe}"), format!("j mod {pe}")],
            [
                "i".into(),
                format!("floor(k/{pe})"),
                format!("floor(j/{pe})"),
                format!("k mod {pe} + j mod {pe} + l"),
            ],
        )
        .named("(KJ-P | J,KJL-T)"),
        Dataflow::new(
            [format!("k mod {pe}"), format!("l mod {pe}")],
            [
                "i".into(),
                format!("floor(k/{pe})"),
                format!("floor(l/{pe})"),
                format!("k mod {pe} + l mod {pe} + j"),
            ],
        )
        .named("(KL-P | L,KLJ-T)"),
    ]
}

/// The two Jacobi-2D dataflows of Table III.
pub fn jacobi_dataflows(pe: i64, pe1d: i64) -> Vec<Dataflow> {
    vec![
        Dataflow::new(
            [format!("i mod {pe1d}")],
            [format!("floor(i/{pe1d})"), "j".into()],
        )
        .named("(I-P | I,J-T)"),
        Dataflow::new(
            [format!("i mod {pe}"), format!("j mod {pe}")],
            [format!("floor(i/{pe})"), format!("floor(j/{pe})")],
        )
        .named("(IJ-P | I,J-T)"),
    ]
}

/// The two MMc dataflows of Table III (same shapes as MTTKRP's first two).
pub fn mmc_dataflows(pe: i64) -> Vec<Dataflow> {
    vec![
        Dataflow::new(
            [format!("i mod {pe}"), format!("j mod {pe}")],
            [
                "k".into(),
                format!("floor(i/{pe})"),
                format!("floor(j/{pe})"),
                format!("i mod {pe} + j mod {pe} + l"),
            ],
        )
        .named("(IJ-P | J,IJL-T)"),
        Dataflow::new(
            [format!("k mod {pe}"), format!("j mod {pe}")],
            [
                "i".into(),
                format!("floor(k/{pe})"),
                format!("floor(j/{pe})"),
                format!("k mod {pe} + j mod {pe} + l"),
            ],
        )
        .named("(KJ-P | J,KJL-T)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn table3_has_twenty_dataflows() {
        let n = gemm_dataflows(8, 64).len()
            + conv_dataflows(8, 64).len()
            + mttkrp_dataflows(8).len()
            + jacobi_dataflows(8, 64).len()
            + mmc_dataflows(8).len();
        assert_eq!(n, 20);
    }

    #[test]
    fn gemm_dataflows_are_injective() {
        let op = kernels::gemm(16, 16, 16).unwrap();
        for df in gemm_dataflows(8, 64) {
            assert!(
                df.is_injective(&op).unwrap(),
                "{} is not injective",
                df.name().unwrap()
            );
        }
    }

    #[test]
    fn conv_dataflows_are_injective() {
        let op = kernels::conv2d(16, 16, 8, 8, 3, 3).unwrap();
        for df in conv_dataflows(8, 64) {
            assert!(
                df.is_injective(&op).unwrap(),
                "{} is not injective",
                df.name().unwrap()
            );
        }
    }

    #[test]
    fn mttkrp_and_mmc_dataflows_are_injective() {
        let op = kernels::mttkrp(8, 8, 8, 8).unwrap();
        for df in mttkrp_dataflows(8) {
            assert!(df.is_injective(&op).unwrap(), "{:?}", df.name());
        }
        let op = kernels::mmc(8, 8, 8, 8).unwrap();
        for df in mmc_dataflows(8) {
            assert!(df.is_injective(&op).unwrap(), "{:?}", df.name());
        }
    }

    #[test]
    fn jacobi_dataflows_are_injective() {
        let op = kernels::jacobi2d(18).unwrap();
        for df in jacobi_dataflows(8, 64) {
            assert!(df.is_injective(&op).unwrap(), "{:?}", df.name());
        }
    }
}
