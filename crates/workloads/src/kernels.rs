//! The five tensor kernels of the evaluation (Section VI-A).

use tenet_core::{Result, TensorOp};

/// `GEMM: Y(i,j) += A(i,k) * B(k,j)`.
pub fn gemm(i: i64, j: i64, k: i64) -> Result<TensorOp> {
    TensorOp::builder("gemm")
        .dim("i", i)
        .dim("j", j)
        .dim("k", k)
        .read("A", ["i", "k"])
        .read("B", ["k", "j"])
        .write("Y", ["i", "j"])
        .build()
}

/// `2D-CONV: Y(k,ox,oy) += A(c, ox+rx, oy+ry) * B(k,c,rx,ry)`.
///
/// `ox`/`oy` are *output* extents; the input footprint is
/// `(ox + rx - 1) × (oy + ry - 1)` (same-padding semantics).
#[allow(clippy::too_many_arguments)]
pub fn conv2d(k: i64, c: i64, ox: i64, oy: i64, rx: i64, ry: i64) -> Result<TensorOp> {
    TensorOp::builder("conv2d")
        .dim("k", k)
        .dim("c", c)
        .dim("ox", ox)
        .dim("oy", oy)
        .dim("rx", rx)
        .dim("ry", ry)
        .read("A", ["c", "ox + rx", "oy + ry"])
        .read("B", ["k", "c", "rx", "ry"])
        .write("Y", ["k", "ox", "oy"])
        .build()
}

/// Depthwise 2D convolution (MobileNet dw-CONV):
/// `Y(c,ox,oy) += A(c, ox+rx, oy+ry) * B(c,rx,ry)` — no accumulation over
/// channels, hence lower input reuse (Section VI-E).
pub fn depthwise_conv2d(c: i64, ox: i64, oy: i64, rx: i64, ry: i64) -> Result<TensorOp> {
    TensorOp::builder("dwconv2d")
        .dim("c", c)
        .dim("ox", ox)
        .dim("oy", oy)
        .dim("rx", rx)
        .dim("ry", ry)
        .read("A", ["c", "ox + rx", "oy + ry"])
        .read("B", ["c", "rx", "ry"])
        .write("Y", ["c", "ox", "oy"])
        .build()
}

/// `MTTKRP: Y(i,j) += A(i,k,l) * B(k,j) * C(l,j)` — the bottleneck of
/// tensor factorization (ALS).
pub fn mttkrp(i: i64, j: i64, k: i64, l: i64) -> Result<TensorOp> {
    TensorOp::builder("mttkrp")
        .dim("i", i)
        .dim("j", j)
        .dim("k", k)
        .dim("l", l)
        .read("A", ["i", "k", "l"])
        .read("B", ["k", "j"])
        .read("C", ["l", "j"])
        .write("Y", ["i", "j"])
        .build()
}

/// Matrix-multiplication chain `MMc: Y(i,j) += A(i,k) * B(k,l) * C(l,j)`
/// modeled as a single 4-deep nest (as in Table III).
pub fn mmc(i: i64, j: i64, k: i64, l: i64) -> Result<TensorOp> {
    TensorOp::builder("mmc")
        .dim("i", i)
        .dim("j", j)
        .dim("k", k)
        .dim("l", l)
        .read("A", ["i", "k"])
        .read("B", ["k", "l"])
        .read("C", ["l", "j"])
        .write("Y", ["i", "j"])
        .build()
}

/// `Jacobi-2D: Y(i,j) = (A(i,j) + A(i-1,j) + A(i,j-1) + A(i+1,j) +
/// A(i,j+1)) / 5` over the interior of an `n × n` grid.
pub fn jacobi2d(n: i64) -> Result<TensorOp> {
    TensorOp::builder("jacobi2d")
        .dim_range("i", 1, n - 1)
        .dim_range("j", 1, n - 1)
        .read("A", ["i", "j"])
        .read("A", ["i - 1", "j"])
        .read("A", ["i + 1", "j"])
        .read("A", ["i", "j - 1"])
        .read("A", ["i", "j + 1"])
        .write("Y", ["i", "j"])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_instance_counts() {
        assert_eq!(gemm(4, 5, 6).unwrap().instances().unwrap(), 120);
        assert_eq!(
            conv2d(2, 3, 4, 4, 3, 3).unwrap().instances().unwrap(),
            2 * 3 * 16 * 9
        );
        assert_eq!(mttkrp(2, 3, 4, 5).unwrap().instances().unwrap(), 120);
        assert_eq!(mmc(2, 3, 4, 5).unwrap().instances().unwrap(), 120);
        assert_eq!(jacobi2d(10).unwrap().instances().unwrap(), 64);
    }

    #[test]
    fn conv_footprints() {
        let op = conv2d(2, 3, 8, 8, 3, 3).unwrap();
        // Input footprint: c * (ox+rx-1) * (oy+ry-1) = 3 * 10 * 10.
        assert_eq!(op.footprint("A").unwrap().card().unwrap(), 300);
        assert_eq!(op.footprint("B").unwrap().card().unwrap(), 2 * 3 * 9);
        assert_eq!(op.footprint("Y").unwrap().card().unwrap(), 2 * 64);
    }

    #[test]
    fn depthwise_has_no_cross_channel_dim() {
        let op = depthwise_conv2d(4, 6, 6, 3, 3).unwrap();
        assert_eq!(op.dims().len(), 5);
        assert_eq!(op.instances().unwrap(), 4 * 36 * 9);
    }
}
