//! Layer shape tables for the real-world applications of Table IV and the
//! accuracy studies of Figures 11–12.
//!
//! Only layer *shapes* are recorded — TENET's analysis is purely geometric
//! and never reads tensor values, so no weights or datasets are required
//! (see DESIGN.md, substitutions).

use crate::kernels;
use tenet_core::{Result, TensorOp};

/// The kind of convolution a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvKind {
    /// Standard dense convolution.
    Standard,
    /// Depthwise convolution (MobileNet): no cross-channel accumulation.
    Depthwise,
    /// Pointwise 1×1 convolution (MobileNet).
    Pointwise,
}

/// Shape of one convolutional layer (output spatial extents).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvShape {
    /// Layer name as used in the figures (e.g. `CONV3`, `Incpt-4a`).
    pub name: &'static str,
    /// Output channels (1 for depthwise).
    pub k: i64,
    /// Input channels.
    pub c: i64,
    /// Output width = height.
    pub ox: i64,
    /// Filter width = height.
    pub rx: i64,
    /// Convolution kind.
    pub kind: ConvKind,
    /// How many layers of this shape the network contains (used to weight
    /// whole-network sums, Table IV "layer types").
    pub count: u32,
}

impl ConvShape {
    /// Builds the layer's tensor operation.
    pub fn op(&self) -> Result<TensorOp> {
        match self.kind {
            ConvKind::Depthwise => {
                kernels::depthwise_conv2d(self.c, self.ox, self.ox, self.rx, self.rx)
            }
            _ => kernels::conv2d(self.k, self.c, self.ox, self.ox, self.rx, self.rx),
        }
    }

    /// Scales spatial and channel extents down by `f` (for simulation,
    /// where full layers are too large to execute instance by instance).
    pub fn scaled(&self, f: i64) -> ConvShape {
        let mut s = self.clone();
        s.k = (s.k / f).max(1);
        s.c = (s.c / f).max(1);
        s.ox = (s.ox / f).max(s.rx);
        s
    }

    /// Scales only the channel extents down by `f`, keeping spatial sizes
    /// (useful when a dataflow maps spatial dims onto the PE array).
    /// Channel counts are kept at a multiple of 16 (or 1) so channel-tiled
    /// dataflows remain applicable.
    pub fn scaled_channels(&self, f: i64) -> ConvShape {
        let round16 = |v: i64| -> i64 {
            if v <= 16 {
                v.max(1)
            } else {
                (v / 16) * 16
            }
        };
        let mut s = self.clone();
        s.k = round16(self.k / f);
        s.c = round16(self.c / f);
        s
    }

    /// Number of MACs of this layer.
    pub fn macs(&self) -> u128 {
        let k = if self.kind == ConvKind::Depthwise {
            1
        } else {
            self.k
        } as u128;
        k * self.c as u128
            * (self.ox as u128)
            * (self.ox as u128)
            * (self.rx as u128)
            * (self.rx as u128)
    }
}

/// AlexNet's five convolutional layers (Figure 11a/b, Figure 12).
/// Shapes follow the original grouped topology (C2/C4/C5 see half the
/// input channels).
pub fn alexnet() -> Vec<ConvShape> {
    use ConvKind::Standard;
    vec![
        ConvShape {
            name: "CONV1",
            k: 96,
            c: 3,
            ox: 55,
            rx: 11,
            kind: Standard,
            count: 1,
        },
        ConvShape {
            name: "CONV2",
            k: 256,
            c: 48,
            ox: 27,
            rx: 5,
            kind: Standard,
            count: 1,
        },
        ConvShape {
            name: "CONV3",
            k: 384,
            c: 256,
            ox: 13,
            rx: 3,
            kind: Standard,
            count: 1,
        },
        ConvShape {
            name: "CONV4",
            k: 384,
            c: 192,
            ox: 13,
            rx: 3,
            kind: Standard,
            count: 1,
        },
        ConvShape {
            name: "CONV5",
            k: 256,
            c: 192,
            ox: 13,
            rx: 3,
            kind: Standard,
            count: 1,
        },
    ]
}

/// The first layer of each VGG-16 stage (Figure 11c/d, Figure 12).
pub fn vgg16() -> Vec<ConvShape> {
    use ConvKind::Standard;
    vec![
        ConvShape {
            name: "CONV1-1",
            k: 64,
            c: 3,
            ox: 224,
            rx: 3,
            kind: Standard,
            count: 2,
        },
        ConvShape {
            name: "CONV2-1",
            k: 128,
            c: 64,
            ox: 112,
            rx: 3,
            kind: Standard,
            count: 2,
        },
        ConvShape {
            name: "CONV3-1",
            k: 256,
            c: 128,
            ox: 56,
            rx: 3,
            kind: Standard,
            count: 3,
        },
        ConvShape {
            name: "CONV4-1",
            k: 512,
            c: 256,
            ox: 28,
            rx: 3,
            kind: Standard,
            count: 3,
        },
        ConvShape {
            name: "CONV5-1",
            k: 512,
            c: 512,
            ox: 14,
            rx: 3,
            kind: Standard,
            count: 3,
        },
    ]
}

/// GoogLeNet inception 3×3 branches (Figure 12). Spatial extent 56 matches
/// the paper's reuse-factor discussion (inception-4a filter reuse
/// 56×56 = 3136); channel shapes follow the official topology.
pub fn googlenet() -> Vec<ConvShape> {
    use ConvKind::Standard;
    vec![
        ConvShape {
            name: "Incpt-3a",
            k: 128,
            c: 96,
            ox: 56,
            rx: 3,
            kind: Standard,
            count: 1,
        },
        ConvShape {
            name: "Incpt-3b",
            k: 192,
            c: 128,
            ox: 56,
            rx: 3,
            kind: Standard,
            count: 1,
        },
        ConvShape {
            name: "Incpt-4a",
            k: 208,
            c: 96,
            ox: 56,
            rx: 3,
            kind: Standard,
            count: 1,
        },
        ConvShape {
            name: "Incpt-4b",
            k: 224,
            c: 112,
            ox: 56,
            rx: 3,
            kind: Standard,
            count: 1,
        },
        ConvShape {
            name: "Incpt-4c",
            k: 256,
            c: 128,
            ox: 56,
            rx: 3,
            kind: Standard,
            count: 1,
        },
    ]
}

/// MobileNet-v1's four leading layer types (Figure 12, Table IV): a
/// standard stem plus alternating depthwise / pointwise layers.
pub fn mobilenet() -> Vec<ConvShape> {
    vec![
        ConvShape {
            name: "CONV1",
            k: 32,
            c: 3,
            ox: 112,
            rx: 3,
            kind: ConvKind::Standard,
            count: 1,
        },
        ConvShape {
            name: "dw-CONV2",
            k: 1,
            c: 32,
            ox: 112,
            rx: 3,
            kind: ConvKind::Depthwise,
            count: 1,
        },
        ConvShape {
            name: "pw-CONV3",
            k: 64,
            c: 32,
            ox: 112,
            rx: 1,
            kind: ConvKind::Pointwise,
            count: 1,
        },
        ConvShape {
            name: "dw-CONV4",
            k: 1,
            c: 64,
            ox: 56,
            rx: 3,
            kind: ConvKind::Depthwise,
            count: 1,
        },
        ConvShape {
            name: "pw-CONV5",
            k: 128,
            c: 64,
            ox: 56,
            rx: 1,
            kind: ConvKind::Pointwise,
            count: 1,
        },
    ]
}

/// The ALS MTTKRP shape of Table IV (480K × 18K × 2K, rank 32).
///
/// The paper does not state the factorization rank; 32 is a typical choice
/// and only scales the `j` extent.
pub fn als_mttkrp() -> Result<TensorOp> {
    kernels::mttkrp(480_000, 32, 18_000, 2_000)
}

/// A reduced ALS shape for experiments that sweep many dataflows.
pub fn als_mttkrp_small() -> Result<TensorOp> {
    kernels::mttkrp(4_800, 32, 1_800, 200)
}

/// The Transformer MMc shape of Table IV (sizes 512 / 768 / 1024):
/// `(512×768) · (768×1024) · (1024×512)` as a single chain.
pub fn transformer_mmc() -> Result<TensorOp> {
    kernels::mmc(512, 512, 768, 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_tables_have_five_entries() {
        assert_eq!(alexnet().len(), 5);
        assert_eq!(vgg16().len(), 5);
        assert_eq!(googlenet().len(), 5);
        assert_eq!(mobilenet().len(), 5);
    }

    #[test]
    fn alexnet_conv3_shape() {
        let l = &alexnet()[2];
        assert_eq!((l.k, l.c, l.ox, l.rx), (384, 256, 13, 3));
        let op = l.op().unwrap();
        assert_eq!(op.instances().unwrap(), l.macs());
    }

    #[test]
    fn depthwise_layers_build() {
        for l in mobilenet() {
            let op = l.op().unwrap();
            assert!(op.instances().unwrap() > 0, "{}", l.name);
        }
    }

    #[test]
    fn scaled_shapes_shrink() {
        let l = alexnet()[2].scaled(4);
        assert_eq!(l.k, 96);
        assert_eq!(l.c, 64);
        assert!(l.ox >= l.rx);
    }

    #[test]
    fn table_iv_ops_build() {
        assert!(als_mttkrp_small().is_ok());
        assert!(transformer_mmc().is_ok());
    }
}
