//! # tenet-workloads
//!
//! Evaluation inputs for the TENET reproduction: the five tensor kernels
//! of Section VI-A, the twenty named dataflows of Table III, and the layer
//! shape tables of Table IV / Figures 11–12.

#![warn(missing_docs)]

pub mod dataflows;
pub mod kernels;
pub mod networks;
