//! Property tests: every object survives the text round trip
//! `parse(print(x))`.

use proptest::prelude::*;
use tenet_core::{ArchSpec, Dataflow, EnergyModel, Interconnect, Role, TensorOp};
use tenet_frontend::{
    arch_to_spec, dataflow_to_notation, kernel_to_c, parse_arch, parse_dataflow, parse_kernel, Expr,
};

const ITER_POOL: [&str; 6] = ["i", "j", "k", "ox", "oy", "c"];

fn canon(e: &str) -> String {
    Expr::parse(e).unwrap().to_notation()
}

// A random quasi-affine expression over the first `n_iters` pool names.
fn arb_expr(n_iters: usize) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0..n_iters).prop_map(|i| ITER_POOL[i].to_string()),
        (-4i64..=4).prop_map(|c| {
            if c < 0 {
                format!("({c})")
            } else {
                c.to_string()
            }
        }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a} + {b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a} - {b}")),
            (1i64..=4, inner.clone()).prop_map(|(c, e)| format!("{c}*({e})")),
            (inner.clone(), 1i64..=8).prop_map(|(e, c)| format!("({e}) % {c}")),
            (inner, 1i64..=8).prop_map(|(e, c)| format!("floor(({e}) / {c})")),
        ]
    })
}

fn arb_kernel() -> impl Strategy<Value = TensorOp> {
    (1usize..=4)
        .prop_flat_map(|n_dims| {
            let dims = proptest::collection::vec((1i64..=6, -2i64..=2), n_dims..=n_dims);
            let n_reads = 1usize..=3;
            (Just(n_dims), dims, n_reads)
        })
        .prop_flat_map(|(n_dims, dims, n_reads)| {
            let write = proptest::collection::vec(arb_expr(n_dims), 1..=3);
            let one_read = proptest::collection::vec(arb_expr(n_dims), 1..=3);
            let reads = proptest::collection::vec(one_read, n_reads..=n_reads);
            (Just(dims), write, reads)
        })
        .prop_map(|(dims, write, reads)| {
            let mut b = TensorOp::builder("S");
            for (d, (extent, lo)) in dims.iter().enumerate() {
                b = b.dim_range(ITER_POOL[d], *lo, lo + extent);
            }
            b = b.write("Y", write.iter().map(|e| canon(e)));
            for (t, r) in reads.iter().enumerate() {
                let name = format!("A{t}");
                b = b.read(&name, r.iter().map(|e| canon(e)));
            }
            b.build().expect("generated kernel is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kernel_text_round_trip(op in arb_kernel()) {
        let text = kernel_to_c(&op);
        let back = parse_kernel(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(back.name(), op.name());
        prop_assert_eq!(back.dims(), op.dims());
        let mut got: Vec<_> = back
            .accesses()
            .iter()
            .map(|a| (a.tensor.clone(), a.role == Role::Output, a.exprs.iter().map(|e| canon(e)).collect::<Vec<_>>()))
            .collect();
        let mut want: Vec<_> = op
            .accesses()
            .iter()
            .map(|a| (a.tensor.clone(), a.role == Role::Output, a.exprs.iter().map(|e| canon(e)).collect::<Vec<_>>()))
            .collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dataflow_text_round_trip(
        n_iters in 1usize..=4,
        space in proptest::collection::vec(arb_expr(4), 1..=2),
        time in proptest::collection::vec(arb_expr(4), 1..=3),
    ) {
        let iters: Vec<String> = ITER_POOL[..n_iters.max(4)].iter().map(|s| s.to_string()).collect();
        let df = Dataflow::new(
            space.iter().map(|e| canon(e)),
            time.iter().map(|e| canon(e)),
        );
        let text = dataflow_to_notation(&df, &iters);
        let back = parse_dataflow(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(back.space_exprs(), df.space_exprs());
        prop_assert_eq!(back.time_exprs(), df.time_exprs());
    }

    #[test]
    fn arch_text_round_trip(
        dims in proptest::collection::vec(1i64..=16, 1..=3),
        ic_pick in 0usize..5,
        radius in 1i64..=4,
        bw_quarters in 1i64..=256,
        capacity in 1u64..=1_000_000,
        energy_quarters in proptest::collection::vec(0i64..=64, 5),
    ) {
        let interconnect = match ic_pick {
            0 => Interconnect::Systolic1D,
            1 => Interconnect::Systolic2D,
            2 => Interconnect::Mesh,
            3 => Interconnect::Multicast { radius },
            _ => Interconnect::Custom {
                offsets: vec![vec![1; dims.len()], vec![0; dims.len()]],
                same_cycle: true,
            },
        };
        let mut arch = ArchSpec::new("prop", dims, interconnect, bw_quarters as f64 / 4.0);
        arch.scratchpad_capacity = capacity;
        arch.energy = EnergyModel {
            mac: energy_quarters[0] as f64 / 4.0,
            register: energy_quarters[1] as f64 / 4.0,
            noc_hop: energy_quarters[2] as f64 / 4.0,
            scratchpad: energy_quarters[3] as f64 / 4.0,
            dram: energy_quarters[4] as f64 / 4.0,
        };
        let text = arch_to_spec(&arch);
        let back = parse_arch(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(back, arch);
    }

    // The canonical printing of a parsed expression is a fixed point:
    // parsing it again and printing again changes nothing.
    #[test]
    fn expr_canonical_form_is_fixed_point(e in arb_expr(4)) {
        let once = canon(&e);
        let twice = canon(&once);
        prop_assert_eq!(once, twice);
    }

    // Printed expressions evaluate identically to their source under a
    // random environment (checks that printing preserves semantics, not
    // just parseability).
    #[test]
    fn printing_preserves_evaluation(
        e in arb_expr(4),
        vals in proptest::collection::vec(-10i64..=10, 4),
    ) {
        let parsed = Expr::parse(&e).unwrap();
        let reparsed = Expr::parse(&parsed.to_notation()).unwrap();
        let env = move |name: &str| {
            ITER_POOL.iter().position(|&p| p == name).and_then(|i| vals.get(i).copied())
        };
        prop_assert_eq!(parsed.eval(&env), reparsed.eval(&env));
    }
}

#[test]
fn role_of_written_tensor_is_output() {
    let op = parse_kernel("for (i = 0; i < 3; i++) S: Y[i] += A[i];").unwrap();
    assert_eq!(op.role_of("Y"), Some(Role::Output));
    assert_eq!(op.role_of("A"), Some(Role::Input));
}

// Robustness: the parsers must return Err (never panic) on arbitrary
// input, including near-miss mutations of valid programs.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parsers_never_panic_on_arbitrary_input(s in "\\PC*") {
        let _ = tenet_frontend::parse_kernel(&s);
        let _ = tenet_frontend::parse_dataflow(&s);
        let _ = tenet_frontend::parse_arch(&s);
        let _ = tenet_frontend::parse_problem(&s);
        let _ = Expr::parse(&s);
    }

    #[test]
    fn parsers_never_panic_on_mutated_valid_input(
        idx in 0usize..1000,
        ch in proptest::char::any(),
    ) {
        let valid = "for (i = 0; i < 2; i++)\n  S: Y[i] += A[i];\n\
                     { S[i] -> (PE[i] | T[i]) }\n\
                     arch \"a\" { array = [2] interconnect = mesh bandwidth = 4 }";
        let mut mutated: Vec<char> = valid.chars().collect();
        let pos = idx % mutated.len();
        mutated[pos] = ch;
        let s: String = mutated.into_iter().collect();
        let _ = tenet_frontend::parse_problem(&s);
    }
}
