//! End-to-end: the paper's Figure 2 flow driven entirely from text.
//!
//! Each test writes a kernel / dataflow / arch as the user would, parses
//! it with the frontend, runs the relation-centric analysis, and checks
//! the numbers the paper reports for that example.

use tenet_core::{Analysis, Role};
use tenet_frontend::{parse_dataflow, parse_kernel, parse_problem};

const FIGURE3: &str = r#"
    # Figure 3: GEMM on a 2x2 systolic array.
    for (i = 0; i < 2; i++)
      for (j = 0; j < 2; j++)
        for (k = 0; k < 4; k++)
          S: Y[i][j] += A[i][k] * B[k][j];

    { S[i,j,k] -> (PE[i,j] | T[i + j + k]) }

    arch "2x2" { array = [2, 2] interconnect = systolic2d bandwidth = 4 }
"#;

#[test]
fn figure3_from_text_matches_paper() {
    let p = parse_problem(FIGURE3).unwrap();
    let arch = p.arch.as_ref().unwrap();
    let a = Analysis::new(&p.kernel, &p.dataflows[0], arch).unwrap();

    // Section V-A: TotalVolume of A over the full execution is 16
    // (the worked example sums time-stamps 0..3 only: 1+3+4+4 = 12).
    let va = a.volumes("A").unwrap();
    assert_eq!(va.total, 16);

    // Tensor Y is stationary: reuse factor 4 (each Y element reused
    // across the 4 k-steps).
    let vy = a.volumes("Y").unwrap();
    assert_eq!(vy.total, 16);
    assert_eq!(vy.unique, 4);

    // Latency: compute delay is 16 MACs / 4 PEs = 4 cycles with full
    // utilization ... but the skew means stamps span 7 cycles; the model
    // reports max(communication, compute).
    let report = a.report().unwrap();
    assert_eq!(report.macs, 16);
}

#[test]
fn figure1_1dconv_skewed_dataflow_reuse() {
    // Figure 1(c): the skewed access T[i+j] -> A[i,j]; actual reuse of A
    // is 6 (data-centric notation over-reports 8).
    let op = parse_kernel(
        "for (j = 0; j < 3; j++)
           for (i = 0; i < 4; i++)
             S: Y[i] += A[i + j] * B[j];",
    )
    .unwrap();
    // Element A[x] sits at PE x-j at cycle j, so it travels anti-diagonally
    // (PE i+1 at cycle j-1 feeds PE i at j) — this needs the bidirectional
    // neighbor links of a mesh.
    let df = parse_dataflow("{ S[j,i] -> (PE[i] | T[j]) }").unwrap();
    let arch =
        tenet_frontend::parse_arch("arch \"1d\" { array = [4] interconnect = mesh bandwidth = 4 }")
            .unwrap();
    let a = Analysis::new(&op, &df, &arch).unwrap();
    let va = a.volumes("A").unwrap();
    // 12 accesses, 6 unique columns of the skewed footprint.
    assert_eq!(va.total, 12);
    assert_eq!(va.reuse, 6);
    assert_eq!(va.unique, 6);
}

#[test]
fn table3_tpu_gemm_dataflow_parses_and_validates() {
    // The (IJ-P | J,IJK-T) dataflow applied in the TPU, exactly as
    // printed in Table III.
    let op = parse_kernel(
        "for (i = 0; i < 16; i++)
           for (j = 0; j < 16; j++)
             for (k = 0; k < 16; k++)
               S: Y[i][j] += A[i][k] * B[k][j];",
    )
    .unwrap();
    let df = parse_dataflow(
        "{S[i,j,k] -> PE[i%8, j%8]}
         {S[i,j,k] -> T[fl(i/8), fl(j/8), i%8 + j%8 + k]}",
    )
    .unwrap();
    assert!(df.is_injective(&op).unwrap());
    assert_eq!(df.used_pes(&op).unwrap().card().unwrap(), 64);
}

#[test]
fn eyeriss_row_stationary_from_text() {
    // The (RYOY-P | OY,OX-T) dataflow motivated by Eyeriss, with the
    // affine space-stamp ry + 3*(c % 4) that MAESTRO cannot express.
    let op = parse_kernel(
        "for (k = 0; k < 16; k++)
           for (c = 0; c < 4; c++)
             for (ox = 0; ox < 8; ox++)
               for (oy = 0; oy < 8; oy++)
                 for (rx = 0; rx < 3; rx++)
                   for (ry = 0; ry < 3; ry++)
                     S: Y[k][ox][oy] += A[c][ox + rx][oy + ry] * B[k][c][rx][ry];",
    )
    .unwrap();
    let df = parse_dataflow(
        "{S[k,c,ox,oy,rx,ry] -> PE[ry + 3*(c % 4), oy]}
         {S[k,c,ox,oy,rx,ry] -> T[fl(k/16), fl(c/16), ox, rx]}",
    )
    .unwrap();
    let pes = df.used_pes(&op).unwrap();
    // ry in [0,3) and c%4 in [0,4) fill 12 rows; oy fills 8 columns.
    assert_eq!(pes.card().unwrap(), 12 * 8);
}

#[test]
fn depthwise_conv_has_no_cross_channel_reduction() {
    let op = parse_kernel(
        "for (c = 0; c < 4; c++)
           for (ox = 0; ox < 6; ox++)
             for (oy = 0; oy < 6; oy++)
               for (rx = 0; rx < 3; rx++)
                 for (ry = 0; ry < 3; ry++)
                   dw: Y[c][ox][oy] += A[c][ox + rx][oy + ry] * B[c][rx][ry];",
    )
    .unwrap();
    assert_eq!(op.name(), "dw");
    assert_eq!(op.tensors(Role::Output), ["Y"]);
    // Output footprint: every (c, ox, oy) combination.
    assert_eq!(op.footprint("Y").unwrap().card().unwrap(), 4 * 36);
}

#[test]
fn problem_file_analysis_equals_builder_analysis() {
    use tenet_core::{ArchSpec, Dataflow, Interconnect, TensorOp};

    let p = parse_problem(FIGURE3).unwrap();
    let built = TensorOp::builder("S")
        .dim("i", 2)
        .dim("j", 2)
        .dim("k", 4)
        .read("A", ["i", "k"])
        .read("B", ["k", "j"])
        .write("Y", ["i", "j"])
        .build()
        .unwrap();
    let df = Dataflow::new(["i", "j"], ["i + j + k"]);
    let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);

    let from_text = Analysis::new(&p.kernel, &p.dataflows[0], p.arch.as_ref().unwrap())
        .unwrap()
        .report()
        .unwrap();
    let from_builder = Analysis::new(&built, &df, &arch).unwrap().report().unwrap();

    assert_eq!(from_text.macs, from_builder.macs);
    assert_eq!(from_text.latency.total(), from_builder.latency.total());
    for t in ["A", "B", "Y"] {
        let a = &from_text.tensors[t];
        let b = &from_builder.tensors[t];
        assert_eq!(a.volumes.total, b.volumes.total, "tensor {t}");
        assert_eq!(a.volumes.unique, b.volumes.unique, "tensor {t}");
        assert_eq!(a.volumes.reuse, b.volumes.reuse, "tensor {t}");
    }
}
