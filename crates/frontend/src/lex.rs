//! A small hand-written lexer shared by the kernel, dataflow, and
//! architecture-specification parsers.
//!
//! Comments (`// ...`, `# ...`, and `/* ... */`) and whitespace are
//! skipped. Every token carries its 1-based source position for error
//! reporting.

use crate::error::{ParseError, Result};
use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`for`, `int`, loop iterators, tensor names).
    Ident(String),
    /// Unsigned integer literal (sign is handled by the expression
    /// parsers so that `a-1` lexes as `a`, `-`, `1`).
    Int(i64),
    /// Unsigned decimal literal such as `2.5`, kept as text so the token
    /// type stays `Eq`.
    Float(String),
    /// Double-quoted string literal, unescaped.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `++`
    PlusPlus,
    /// `+=`
    PlusAssign,
    /// `->`
    Arrow,
    /// `|`
    Pipe,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(v) => write!(f, "`{v}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Eq => write!(f, "`==`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::PlusPlus => write!(f, "`++`"),
            Tok::PlusAssign => write!(f, "`+=`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Tokenizes `source` completely. The resulting stream always ends with a
/// single [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on unknown characters, unterminated strings or
/// block comments, and integer literals that overflow `i64`.
pub fn lex(source: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        let advance = |n: usize, i: &mut usize, line: &mut u32, col: &mut u32| {
            for k in 0..n {
                if bytes[*i + k] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
            }
            *i += n;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance(1, &mut i, &mut line, &mut col),
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    advance(1, &mut i, &mut line, &mut col);
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    advance(1, &mut i, &mut line, &mut col);
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                advance(2, &mut i, &mut line, &mut col);
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        advance(2, &mut i, &mut line, &mut col);
                        closed = true;
                        break;
                    }
                    advance(1, &mut i, &mut line, &mut col);
                }
                if !closed {
                    return Err(ParseError::new("unterminated block comment", tl, tc));
                }
            }
            '"' => {
                advance(1, &mut i, &mut line, &mut col);
                let mut s = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    if bytes[i] == '"' {
                        advance(1, &mut i, &mut line, &mut col);
                        closed = true;
                        break;
                    }
                    if bytes[i] == '\n' {
                        break;
                    }
                    s.push(bytes[i]);
                    advance(1, &mut i, &mut line, &mut col);
                }
                if !closed {
                    return Err(ParseError::new("unterminated string literal", tl, tc));
                }
                push!(Tok::Str(s), tl, tc);
            }
            '0'..='9' => {
                let mut v: i64 = 0;
                let mut digits = String::new();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    let d = (bytes[i] as u8 - b'0') as i64;
                    digits.push(bytes[i]);
                    v = v
                        .checked_mul(10)
                        .and_then(|x| x.checked_add(d))
                        .ok_or_else(|| ParseError::new("integer literal overflows i64", tl, tc))?;
                    advance(1, &mut i, &mut line, &mut col);
                }
                if i + 1 < bytes.len() && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                    digits.push('.');
                    advance(1, &mut i, &mut line, &mut col);
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        digits.push(bytes[i]);
                        advance(1, &mut i, &mut line, &mut col);
                    }
                    push!(Tok::Float(digits), tl, tc);
                } else {
                    push!(Tok::Int(v), tl, tc);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    s.push(bytes[i]);
                    advance(1, &mut i, &mut line, &mut col);
                }
                push!(Tok::Ident(s), tl, tc);
            }
            '(' => {
                push!(Tok::LParen, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            ')' => {
                push!(Tok::RParen, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            '[' => {
                push!(Tok::LBracket, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            ']' => {
                push!(Tok::RBracket, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            '{' => {
                push!(Tok::LBrace, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            '}' => {
                push!(Tok::RBrace, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            ';' => {
                push!(Tok::Semi, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            ':' => {
                push!(Tok::Colon, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            ',' => {
                push!(Tok::Comma, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            '|' => {
                push!(Tok::Pipe, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            '*' => {
                push!(Tok::Star, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            '/' => {
                push!(Tok::Slash, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            '%' => {
                push!(Tok::Percent, tl, tc);
                advance(1, &mut i, &mut line, &mut col);
            }
            '+' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '+' {
                    push!(Tok::PlusPlus, tl, tc);
                    advance(2, &mut i, &mut line, &mut col);
                } else if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(Tok::PlusAssign, tl, tc);
                    advance(2, &mut i, &mut line, &mut col);
                } else {
                    push!(Tok::Plus, tl, tc);
                    advance(1, &mut i, &mut line, &mut col);
                }
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    push!(Tok::Arrow, tl, tc);
                    advance(2, &mut i, &mut line, &mut col);
                } else {
                    push!(Tok::Minus, tl, tc);
                    advance(1, &mut i, &mut line, &mut col);
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(Tok::Eq, tl, tc);
                    advance(2, &mut i, &mut line, &mut col);
                } else {
                    push!(Tok::Assign, tl, tc);
                    advance(1, &mut i, &mut line, &mut col);
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(Tok::Le, tl, tc);
                    advance(2, &mut i, &mut line, &mut col);
                } else {
                    push!(Tok::Lt, tl, tc);
                    advance(1, &mut i, &mut line, &mut col);
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(Tok::Ge, tl, tc);
                    advance(2, &mut i, &mut line, &mut col);
                } else {
                    push!(Tok::Gt, tl, tc);
                    advance(1, &mut i, &mut line, &mut col);
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    tl,
                    tc,
                ));
            }
        }
    }
    push!(Tok::Eof, line, col);
    Ok(out)
}

/// A cursor over the token stream with one-token lookahead, shared by all
/// three parsers.
#[derive(Debug)]
pub struct Cursor {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Cursor {
    /// Lexes `source` and positions the cursor at the first token.
    pub fn new(source: &str) -> Result<Cursor> {
        Ok(Cursor {
            toks: lex(source)?,
            pos: 0,
        })
    }

    /// The current token.
    pub fn peek(&self) -> &Spanned {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    /// The token after the current one.
    pub fn peek2(&self) -> &Spanned {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    /// Consumes and returns the current token.
    pub fn bump(&mut self) -> Spanned {
        let t = self.peek().clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the current token if it equals `tok`.
    pub fn eat(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes the current token, failing with `what` if it differs from
    /// `tok`.
    pub fn expect(&mut self, tok: &Tok, what: &str) -> Result<Spanned> {
        if &self.peek().tok == tok {
            Ok(self.bump())
        } else {
            Err(self.error_here(format!("expected {what}, found {}", self.peek().tok)))
        }
    }

    /// Consumes an identifier token and returns its text.
    pub fn expect_ident(&mut self, what: &str) -> Result<(String, Spanned)> {
        match self.peek().tok.clone() {
            Tok::Ident(s) => {
                let sp = self.bump();
                Ok((s, sp))
            }
            other => Err(self.error_here(format!("expected {what}, found {other}"))),
        }
    }

    /// Consumes an integer token and returns its value.
    pub fn expect_int(&mut self, what: &str) -> Result<i64> {
        match self.peek().tok {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.error_here(format!("expected {what}, found {other}"))),
        }
    }

    /// True once the cursor has consumed every real token.
    pub fn at_eof(&self) -> bool {
        self.peek().tok == Tok::Eof
    }

    /// Builds a [`ParseError`] at the current token.
    pub fn error_here(&self, message: impl Into<String>) -> ParseError {
        let sp = self.peek();
        ParseError::new(message, sp.line, sp.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_for_loop_header() {
        assert_eq!(
            toks("for (i = 0; i < 4; i++)"),
            vec![
                Tok::Ident("for".into()),
                Tok::LParen,
                Tok::Ident("i".into()),
                Tok::Assign,
                Tok::Int(0),
                Tok::Semi,
                Tok::Ident("i".into()),
                Tok::Lt,
                Tok::Int(4),
                Tok::Semi,
                Tok::Ident("i".into()),
                Tok::PlusPlus,
                Tok::RParen,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_relation_arrow_and_pipe() {
        assert_eq!(
            toks("{S[i] -> (PE[i] | T[i])}"),
            vec![
                Tok::LBrace,
                Tok::Ident("S".into()),
                Tok::LBracket,
                Tok::Ident("i".into()),
                Tok::RBracket,
                Tok::Arrow,
                Tok::LParen,
                Tok::Ident("PE".into()),
                Tok::LBracket,
                Tok::Ident("i".into()),
                Tok::RBracket,
                Tok::Pipe,
                Tok::Ident("T".into()),
                Tok::LBracket,
                Tok::Ident("i".into()),
                Tok::RBracket,
                Tok::RParen,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn skips_all_comment_styles() {
        assert_eq!(
            toks("a // line\nb # hash\nc /* block\nspanning */ d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Ident("d".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message().contains("unexpected character"));
        assert_eq!((err.line(), err.col()), (1, 3));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").unwrap_err().message().contains("unterminated"));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* abc")
            .unwrap_err()
            .message()
            .contains("unterminated"));
    }

    #[test]
    fn rejects_overflowing_literal() {
        assert!(lex("99999999999999999999")
            .unwrap_err()
            .message()
            .contains("overflows"));
    }

    #[test]
    fn string_literal_contents() {
        assert_eq!(
            toks("\"(IJ-P | J,IJK-T)\"")[0],
            Tok::Str("(IJ-P | J,IJK-T)".into())
        );
    }

    #[test]
    fn cursor_expect_reports_position() {
        let mut c = Cursor::new("for x").unwrap();
        c.bump();
        let err = c.expect(&Tok::LParen, "`(`").unwrap_err();
        assert!(err.message().contains("expected `(`"));
        assert_eq!(err.col(), 5);
    }
}
