//! A *problem file* bundles everything TENET needs in one text file: the
//! kernel, one or more candidate dataflows, and optionally the hardware
//! specification. Sections may appear in any order and are recognized by
//! their leading keyword (`for`, `dataflow`/`{`, `arch`).
//!
//! ```text
//! # gemm.tenet — Figure 3 of the paper
//! for (i = 0; i < 2; i++)
//!   for (j = 0; j < 2; j++)
//!     for (k = 0; k < 4; k++)
//!       S: Y[i][j] += A[i][k] * B[k][j];
//!
//! { S[i,j,k] -> (PE[i,j] | T[i + j + k]) }
//!
//! arch "2x2" { array = [2, 2] interconnect = systolic2d bandwidth = 4 }
//! ```

use crate::archspec::parse_arch_from;
use crate::dataflow::{parse_dataflow_from, ParsedDataflow};
use crate::error::Result;
use crate::kernel::parse_kernel_from;
use crate::lex::{Cursor, Tok};
use crate::print::{arch_to_spec, dataflow_to_notation, kernel_to_c};
use tenet_core::{ArchSpec, Dataflow, TensorOp};

/// A fully parsed problem: kernel + candidate dataflows + optional
/// architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    /// The tensor operation.
    pub kernel: TensorOp,
    /// Candidate dataflows, in file order.
    pub dataflows: Vec<Dataflow>,
    /// The hardware specification, if the file provides one.
    pub arch: Option<ArchSpec>,
}

/// Parses a problem file. The kernel section is mandatory; dataflows and
/// the arch block are optional (tools may supply defaults). Every
/// dataflow is cross-checked against the kernel's loop iterators.
///
/// # Errors
///
/// Returns a [`crate::ParseError`] on syntax errors, duplicate kernel or
/// arch sections, or dataflows that reference unknown iterators.
pub fn parse_problem(source: &str) -> Result<Problem> {
    let mut cur = Cursor::new(source)?;
    let mut kernel: Option<TensorOp> = None;
    let mut parsed_dfs: Vec<ParsedDataflow> = Vec::new();
    let mut arch: Option<ArchSpec> = None;

    while !cur.at_eof() {
        match cur.peek().tok.clone() {
            Tok::Ident(kw) if kw == "for" => {
                if kernel.is_some() {
                    return Err(cur.error_here(
                        "a problem file may contain only one kernel (one perfectly \
                         nested loop with a single statement)",
                    ));
                }
                kernel = Some(parse_kernel_from(&mut cur)?.to_op()?);
            }
            Tok::Ident(kw) if kw == "dataflow" => {
                parsed_dfs.push(parse_dataflow_from(&mut cur)?);
            }
            Tok::LBrace => {
                parsed_dfs.push(parse_dataflow_from(&mut cur)?);
            }
            Tok::Ident(kw) if kw == "arch" => {
                if arch.is_some() {
                    return Err(cur.error_here("duplicate `arch` block"));
                }
                arch = Some(parse_arch_from(&mut cur)?);
            }
            other => {
                return Err(cur.error_here(format!(
                    "expected a kernel (`for ...`), a dataflow (`{{ S[...] -> ... }}` \
                     or `dataflow ...`), or an `arch` block, found {other}"
                )))
            }
        }
    }

    let kernel = kernel.ok_or_else(|| cur.error_here("problem file has no kernel"))?;
    let mut dataflows = Vec::with_capacity(parsed_dfs.len());
    for pdf in &parsed_dfs {
        pdf.check_against(&kernel)?;
        dataflows.push(pdf.to_dataflow());
    }
    Ok(Problem {
        kernel,
        dataflows,
        arch,
    })
}

/// Prints a [`Problem`] back into the problem-file format, closing the
/// round trip with [`parse_problem`].
pub fn problem_to_text(p: &Problem) -> String {
    let mut out = kernel_to_c(&p.kernel);
    let iters: Vec<String> = p.kernel.dims().iter().map(|d| d.name.clone()).collect();
    for df in &p.dataflows {
        out.push('\n');
        if let Some(name) = df.name() {
            out.push_str(&format!("# {name}\n"));
        }
        out.push_str(&dataflow_to_notation(df, &iters));
        out.push('\n');
    }
    if let Some(arch) = &p.arch {
        out.push('\n');
        out.push_str(&arch_to_spec(arch));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE3: &str = "
        # gemm.tenet — Figure 3 of the paper
        for (i = 0; i < 2; i++)
          for (j = 0; j < 2; j++)
            for (k = 0; k < 4; k++)
              S: Y[i][j] += A[i][k] * B[k][j];

        { S[i,j,k] -> (PE[i,j] | T[i + j + k]) }

        arch \"2x2\" { array = [2, 2] interconnect = systolic2d bandwidth = 4 }
    ";

    #[test]
    fn parses_figure3_problem() {
        let p = parse_problem(FIGURE3).unwrap();
        assert_eq!(p.kernel.name(), "S");
        assert_eq!(p.dataflows.len(), 1);
        assert_eq!(p.arch.as_ref().unwrap().pe_count(), 4);
    }

    #[test]
    fn sections_in_any_order() {
        let p = parse_problem(
            "arch a { array = [4] interconnect = systolic1d bandwidth = 4 }
             dataflow { space = [i] time = [j] }
             for (i = 0; i < 4; i++)
               for (j = 0; j < 4; j++)
                 S: Y[i] += A[i][j];",
        )
        .unwrap();
        assert_eq!(p.dataflows.len(), 1);
        assert!(p.arch.is_some());
    }

    #[test]
    fn multiple_dataflows_in_relation_form() {
        let p = parse_problem(
            "for (i = 0; i < 4; i++)
               for (j = 0; j < 4; j++)
                 S: Y[i] += A[i][j];
             { S[i,j] -> (PE[i] | T[j]) }
             { S[i,j] -> (PE[j] | T[i]) }",
        )
        .unwrap();
        assert_eq!(p.dataflows.len(), 2);
        assert_eq!(p.dataflows[0].space_exprs(), ["i"]);
        assert_eq!(p.dataflows[1].space_exprs(), ["j"]);
    }

    #[test]
    fn arch_is_optional() {
        let p = parse_problem("for (i = 0; i < 2; i++) S: Y[i] += A[i];").unwrap();
        assert!(p.arch.is_none());
        assert!(p.dataflows.is_empty());
    }

    #[test]
    fn rejects_two_kernels() {
        let err = parse_problem(
            "for (i = 0; i < 2; i++) S: Y[i] += A[i];
             for (j = 0; j < 2; j++) S: Z[j] += A[j];",
        )
        .unwrap_err();
        assert!(err.message().contains("only one kernel"));
    }

    #[test]
    fn rejects_missing_kernel() {
        let err =
            parse_problem("arch a { array = [4] interconnect = mesh bandwidth = 1 }").unwrap_err();
        assert!(err.message().contains("no kernel"));
    }

    #[test]
    fn rejects_dataflow_over_unknown_iterator() {
        let err = parse_problem(
            "for (i = 0; i < 2; i++) S: Y[i] += A[i];
             { S[i] -> (PE[i] | T[z]) }",
        )
        .unwrap_err();
        assert!(err.message().contains('z'));
    }

    #[test]
    fn round_trips_through_text() {
        let p = parse_problem(FIGURE3).unwrap();
        let text = problem_to_text(&p);
        let q = parse_problem(&text).unwrap();
        assert_eq!(p, q);
    }
}
