//! Quasi-affine expression parsing, validation, and canonical printing.
//!
//! The paper's notation (Table III) allows each space- or time-stamp
//! dimension, and each tensor index, to be a quasi-affine function of the
//! loop iterators: sums and differences of terms, multiplication by
//! integer constants, `x % c` / `x mod c`, and `fl(x/c)` / `floor(x/c)`.
//! This module parses that grammar into an [`Expr`], checks the
//! quasi-affinity restrictions (modulus and divisor must be positive
//! constants; products need a constant factor), and prints the canonical
//! form accepted by [`tenet_core::Dataflow`] and [`tenet_core::TensorOp`].

use crate::error::Result;
use crate::lex::{Cursor, Tok};
use std::collections::BTreeSet;
use std::fmt;

/// A quasi-affine expression over named loop iterators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer constant.
    Const(i64),
    /// Loop iterator.
    Var(String),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product; quasi-affinity requires at least one constant side.
    Mul(Box<Expr>, Box<Expr>),
    /// `e mod c` with `c > 0` constant.
    Mod(Box<Expr>, i64),
    /// `floor(e / c)` with `c > 0` constant.
    FloorDiv(Box<Expr>, i64),
    /// Unary negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Parses a complete expression from `text`.
    ///
    /// # Errors
    ///
    /// Fails on syntax errors, on non-constant moduli/divisors, and on
    /// products where neither factor is constant.
    ///
    /// ```
    /// use tenet_frontend::Expr;
    /// let e = Expr::parse("fl(i/8) + 3*(j % 8) - k")?;
    /// assert_eq!(e.free_vars(), vec!["i", "j", "k"]);
    /// # Ok::<(), tenet_frontend::ParseError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Expr> {
        let mut cur = Cursor::new(text)?;
        let e = parse_expr(&mut cur)?;
        if cur.peek().tok == Tok::Slash {
            return Err(
                cur.error_here("bare `/` is ambiguous; write `floor(e / c)` or `fl(e / c)`")
            );
        }
        if !cur.at_eof() {
            return Err(cur.error_here(format!("unexpected {} after expression", cur.peek().tok)));
        }
        Ok(e)
    }

    /// Parses an expression from an already-open token cursor, stopping at
    /// the first token that cannot continue the expression.
    pub fn parse_from(cur: &mut Cursor) -> Result<Expr> {
        parse_expr(cur)
    }

    /// The distinct iterator names appearing in the expression, sorted.
    pub fn free_vars(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        self.collect_vars(&mut set);
        set.into_iter().collect()
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Mod(a, _) | Expr::FloorDiv(a, _) | Expr::Neg(a) => a.collect_vars(out),
        }
    }

    /// True if the expression is purely affine (no `mod`, no `floor`).
    pub fn is_affine(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) => true,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => a.is_affine() && b.is_affine(),
            Expr::Mod(..) | Expr::FloorDiv(..) => false,
            Expr::Neg(a) => a.is_affine(),
        }
    }

    /// Evaluates the expression under an environment mapping iterator
    /// names to values. `mod` follows the mathematical (non-negative
    /// remainder) convention and `floor` rounds towards negative infinity,
    /// matching the integer-set semantics of the analysis layer.
    ///
    /// Returns `None` for unknown variables or arithmetic overflow.
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        match self {
            Expr::Const(v) => Some(*v),
            Expr::Var(name) => env(name),
            Expr::Add(a, b) => a.eval(env)?.checked_add(b.eval(env)?),
            Expr::Sub(a, b) => a.eval(env)?.checked_sub(b.eval(env)?),
            Expr::Mul(a, b) => a.eval(env)?.checked_mul(b.eval(env)?),
            Expr::Mod(a, c) => Some(a.eval(env)?.rem_euclid(*c)),
            Expr::FloorDiv(a, c) => Some(a.eval(env)?.div_euclid(*c)),
            Expr::Neg(a) => a.eval(env)?.checked_neg(),
        }
    }

    /// Prints the canonical notation accepted by the analysis layer
    /// (`%` for modulus, `floor(e / c)` for flooring division).
    pub fn to_notation(&self) -> String {
        self.print(0)
    }

    // Precedence levels: 0 = additive, 1 = multiplicative, 2 = atom.
    fn print(&self, prec: u8) -> String {
        let (s, my_prec) = match self {
            Expr::Const(v) => (v.to_string(), 2),
            Expr::Var(v) => (v.clone(), 2),
            Expr::Add(a, b) => (format!("{} + {}", a.print(0), b.print(1)), 0),
            Expr::Sub(a, b) => (format!("{} - {}", a.print(0), b.print(1)), 0),
            Expr::Mul(a, b) => (format!("{}*{}", a.print(1), b.print(2)), 1),
            Expr::Mod(a, c) => (format!("{} % {c}", a.print(2)), 1),
            Expr::FloorDiv(a, c) => (format!("floor({} / {c})", a.print(0)), 2),
            Expr::Neg(a) => (format!("-{}", a.print(2)), 1),
        };
        if my_prec < prec {
            format!("({s})")
        } else {
            s
        }
    }

    /// Folds constant subexpressions; returns the (possibly) simplified
    /// expression. Used to recognize constant factors in products.
    pub fn fold(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Var(_) => self.clone(),
            Expr::Add(a, b) => match (a.fold(), b.fold()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.saturating_add(y)),
                (a, b) => Expr::Add(Box::new(a), Box::new(b)),
            },
            Expr::Sub(a, b) => match (a.fold(), b.fold()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.saturating_sub(y)),
                (a, b) => Expr::Sub(Box::new(a), Box::new(b)),
            },
            Expr::Mul(a, b) => match (a.fold(), b.fold()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.saturating_mul(y)),
                (a, b) => Expr::Mul(Box::new(a), Box::new(b)),
            },
            Expr::Mod(a, c) => match a.fold() {
                Expr::Const(x) => Expr::Const(x.rem_euclid(*c)),
                a => Expr::Mod(Box::new(a), *c),
            },
            Expr::FloorDiv(a, c) => match a.fold() {
                Expr::Const(x) => Expr::Const(x.div_euclid(*c)),
                a => Expr::FloorDiv(Box::new(a), *c),
            },
            Expr::Neg(a) => match a.fold() {
                Expr::Const(x) => Expr::Const(x.saturating_neg()),
                a => Expr::Neg(Box::new(a)),
            },
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_notation())
    }
}

fn parse_expr(cur: &mut Cursor) -> Result<Expr> {
    let mut lhs = parse_term(cur)?;
    loop {
        match cur.peek().tok {
            Tok::Plus => {
                cur.bump();
                let rhs = parse_term(cur)?;
                lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
            }
            Tok::Minus => {
                cur.bump();
                let rhs = parse_term(cur)?;
                lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
            }
            _ => return Ok(lhs),
        }
    }
}

fn parse_term(cur: &mut Cursor) -> Result<Expr> {
    let mut lhs = parse_atom(cur)?;
    loop {
        match cur.peek().tok {
            Tok::Star => {
                cur.bump();
                let rhs = parse_atom(cur)?;
                let ok =
                    matches!(lhs.fold(), Expr::Const(_)) || matches!(rhs.fold(), Expr::Const(_));
                if !ok {
                    return Err(cur.error_here(
                        "product of two non-constant expressions is not quasi-affine",
                    ));
                }
                lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
            }
            Tok::Percent => {
                cur.bump();
                let c = parse_positive_const(cur, "modulus")?;
                lhs = Expr::Mod(Box::new(lhs), c);
            }
            Tok::Ident(ref name) if name == "mod" => {
                cur.bump();
                let c = parse_positive_const(cur, "modulus")?;
                lhs = Expr::Mod(Box::new(lhs), c);
            }
            // `/` ends the expression here; `floor(e / c)` consumes it in
            // parse_atom, and a stray top-level `/` is diagnosed by
            // `Expr::parse`.
            _ => return Ok(lhs),
        }
    }
}

fn parse_positive_const(cur: &mut Cursor, what: &str) -> Result<i64> {
    let atom = parse_atom(cur)?;
    match atom.fold() {
        Expr::Const(c) if c > 0 => Ok(c),
        Expr::Const(c) => Err(cur.error_here(format!("{what} must be positive, got {c}"))),
        _ => Err(cur.error_here(format!("{what} must be an integer constant"))),
    }
}

fn parse_atom(cur: &mut Cursor) -> Result<Expr> {
    match cur.peek().tok.clone() {
        Tok::Int(v) => {
            cur.bump();
            Ok(Expr::Const(v))
        }
        Tok::Minus => {
            cur.bump();
            let inner = parse_atom(cur)?;
            Ok(Expr::Neg(Box::new(inner)))
        }
        Tok::LParen => {
            cur.bump();
            let inner = parse_expr(cur)?;
            cur.expect(&Tok::RParen, "`)`")?;
            Ok(inner)
        }
        Tok::Ident(name) if name == "fl" || name == "floor" => {
            cur.bump();
            cur.expect(&Tok::LParen, "`(` after floor")?;
            let inner = parse_expr(cur)?;
            cur.expect(&Tok::Slash, "`/` in floor(e / c)")?;
            let c = parse_positive_const(cur, "divisor")?;
            cur.expect(&Tok::RParen, "`)` closing floor")?;
            Ok(Expr::FloorDiv(Box::new(inner), c))
        }
        Tok::Ident(name) => {
            cur.bump();
            Ok(Expr::Var(name))
        }
        other => Err(cur.error_here(format!("expected expression, found {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env2(i: i64, j: i64) -> impl Fn(&str) -> Option<i64> {
        move |name: &str| match name {
            "i" => Some(i),
            "j" => Some(j),
            _ => None,
        }
    }

    #[test]
    fn parses_affine_sum() {
        let e = Expr::parse("i + 2*j - 1").unwrap();
        assert_eq!(e.eval(&env2(3, 5)), Some(12));
        assert!(e.is_affine());
    }

    #[test]
    fn parses_mod_both_spellings() {
        let a = Expr::parse("i % 8").unwrap();
        let b = Expr::parse("i mod 8").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.eval(&env2(13, 0)), Some(5));
        assert!(!a.is_affine());
    }

    #[test]
    fn parses_floor_both_spellings() {
        let a = Expr::parse("fl(i/8)").unwrap();
        let b = Expr::parse("floor(i / 8)").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.eval(&env2(17, 0)), Some(2));
    }

    #[test]
    fn table3_time_stamp_expression() {
        // Innermost time dimension of the (IJ-P | J,IJK-T) GEMM dataflow.
        let e = Expr::parse("i % 8 + j % 8 + k").unwrap();
        let env = |n: &str| match n {
            "i" => Some(10),
            "j" => Some(9),
            "k" => Some(3),
            _ => None,
        };
        assert_eq!(e.eval(&env), Some(2 + 1 + 3));
    }

    #[test]
    fn negative_operand_mod_is_euclidean() {
        let e = Expr::parse("(i - 4) % 3").unwrap();
        assert_eq!(e.eval(&env2(0, 0)), Some(2));
        let d = Expr::parse("fl((i - 4) / 3)").unwrap();
        assert_eq!(d.eval(&env2(0, 0)), Some(-2));
    }

    #[test]
    fn rejects_var_times_var() {
        let err = Expr::parse("i * j").unwrap_err();
        assert!(err.message().contains("not quasi-affine"));
    }

    #[test]
    fn accepts_const_fold_times_var() {
        // (2+3) is constant after folding, so (2+3)*i is quasi-affine.
        let e = Expr::parse("(2 + 3) * i").unwrap();
        assert_eq!(e.eval(&env2(4, 0)), Some(20));
    }

    #[test]
    fn rejects_bare_division() {
        let err = Expr::parse("i / 8").unwrap_err();
        assert!(err.message().contains("floor"));
    }

    #[test]
    fn rejects_non_constant_modulus() {
        let err = Expr::parse("i % j").unwrap_err();
        assert!(err.message().contains("constant"));
    }

    #[test]
    fn rejects_zero_modulus() {
        let err = Expr::parse("i % 0").unwrap_err();
        assert!(err.message().contains("positive"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = Expr::parse("i + 1 )").unwrap_err();
        assert!(err.message().contains("after expression"));
    }

    #[test]
    fn notation_round_trips() {
        for src in [
            "i",
            "i + j + k",
            "i % 8 + j % 8 + k",
            "fl(i/8) + fl(j/8)",
            "ry + 3*(c % 4)",
            "2*i - 3*j + 7",
            "-i + 1",
            "floor((i + j) / 4) % 2",
        ] {
            let e = Expr::parse(src).unwrap();
            let printed = e.to_notation();
            let back = Expr::parse(&printed).unwrap();
            assert_eq!(
                back.fold(),
                e.fold(),
                "round-trip mismatch: {src} -> {printed}"
            );
        }
    }

    #[test]
    fn free_vars_sorted_unique() {
        let e = Expr::parse("k + i % 4 + fl(k/2) + i").unwrap();
        assert_eq!(e.free_vars(), vec!["i", "k"]);
    }

    #[test]
    fn eval_detects_unknown_var() {
        let e = Expr::parse("q + 1").unwrap();
        assert_eq!(e.eval(&env2(0, 0)), None);
    }
}
