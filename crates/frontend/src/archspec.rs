//! Parser for hardware specifications.
//!
//! TENET's automatic flow (Figure 2) takes a hardware specification next
//! to the tensor operation. The accepted format is a small block
//! language:
//!
//! ```text
//! # A TPU-like 8x8 systolic array.
//! arch "tpu8x8" {
//!   array = [8, 8]
//!   interconnect = systolic2d
//!   bandwidth = 64
//!   scratchpad_capacity = 1048576      # optional, tensor elements
//!   energy {                           # optional, relative to one MAC
//!     mac = 1.0
//!     register = 1.0
//!     noc_hop = 2.0
//!     scratchpad = 6.0
//!     dram = 200.0
//!   }
//! }
//! ```
//!
//! Interconnect values mirror [`Interconnect`]: `systolic1d`,
//! `systolic2d`, `mesh`, `multicast(radius = R)`, and
//! `custom { offsets = [[0,1],[1,0]] same_cycle = false }`.

use crate::error::{ParseError, Result};
use crate::lex::{Cursor, Tok};
use tenet_core::{ArchSpec, EnergyModel, Interconnect};

/// Parses a hardware specification into an [`ArchSpec`].
///
/// ```
/// let arch = tenet_frontend::parse_arch(
///     "arch \"tpu\" { array = [8, 8] interconnect = systolic2d bandwidth = 64 }",
/// )?;
/// assert_eq!(arch.pe_count(), 64);
/// # Ok::<(), tenet_frontend::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] on unknown keys, missing mandatory fields
/// (`array`, `interconnect`, `bandwidth`), or ill-typed values.
pub fn parse_arch(source: &str) -> Result<ArchSpec> {
    let mut cur = Cursor::new(source)?;
    let spec = parse_arch_from(&mut cur)?;
    if !cur.at_eof() {
        return Err(cur.error_here(format!("unexpected {} after arch block", cur.peek().tok)));
    }
    Ok(spec)
}

// Parses one arch block from an open cursor, leaving trailing tokens for
// the caller.
pub(crate) fn parse_arch_from(cur: &mut Cursor) -> Result<ArchSpec> {
    let kw = cur.expect_ident("`arch`")?;
    if kw.0 != "arch" {
        return Err(ParseError::new(
            format!("expected `arch`, found `{}`", kw.0),
            kw.1.line,
            kw.1.col,
        ));
    }
    let name = match cur.peek().tok.clone() {
        Tok::Str(s) => {
            cur.bump();
            s
        }
        Tok::Ident(s) => {
            cur.bump();
            s
        }
        _ => "arch".to_string(),
    };
    cur.expect(&Tok::LBrace, "`{` opening arch block")?;

    let mut array: Option<Vec<i64>> = None;
    let mut interconnect: Option<Interconnect> = None;
    let mut bandwidth: Option<f64> = None;
    let mut capacity: Option<u64> = None;
    let mut energy: Option<EnergyModel> = None;

    while cur.peek().tok != Tok::RBrace {
        let (key, sp) = cur.expect_ident("field name")?;
        match key.as_str() {
            "array" => {
                cur.expect(&Tok::Assign, "`=`")?;
                set_once(&mut array, parse_int_list(cur)?, &key, &sp)?;
            }
            "interconnect" => {
                cur.expect(&Tok::Assign, "`=`")?;
                set_once(&mut interconnect, parse_interconnect(cur)?, &key, &sp)?;
            }
            "bandwidth" => {
                cur.expect(&Tok::Assign, "`=`")?;
                set_once(&mut bandwidth, parse_number(cur)?, &key, &sp)?;
            }
            "scratchpad_capacity" => {
                cur.expect(&Tok::Assign, "`=`")?;
                let v = cur.expect_int("capacity in elements")?;
                if v < 0 {
                    return Err(cur.error_here("capacity must be non-negative"));
                }
                set_once(&mut capacity, v as u64, &key, &sp)?;
            }
            "energy" => {
                // `energy { ... }` or `energy = { ... }`.
                cur.eat(&Tok::Assign);
                set_once(&mut energy, parse_energy(cur)?, &key, &sp)?;
            }
            other => {
                return Err(ParseError::new(
                    format!(
                        "unknown arch field `{other}` (expected array, interconnect, \
                         bandwidth, scratchpad_capacity, energy)"
                    ),
                    sp.line,
                    sp.col,
                ))
            }
        }
    }
    cur.expect(&Tok::RBrace, "`}`")?;

    let array = array.ok_or_else(|| cur.error_here("arch block is missing `array`"))?;
    if array.is_empty() || array.iter().any(|&d| d <= 0) {
        return Err(cur.error_here("`array` extents must all be positive"));
    }
    let interconnect =
        interconnect.ok_or_else(|| cur.error_here("arch block is missing `interconnect`"))?;
    let bandwidth = bandwidth.ok_or_else(|| cur.error_here("arch block is missing `bandwidth`"))?;
    if bandwidth <= 0.0 || bandwidth.is_nan() {
        return Err(cur.error_here("`bandwidth` must be positive"));
    }

    let mut spec = ArchSpec::new(&name, array, interconnect, bandwidth);
    if let Some(c) = capacity {
        spec.scratchpad_capacity = c;
    }
    if let Some(e) = energy {
        spec.energy = e;
    }
    Ok(spec)
}

fn set_once<T>(slot: &mut Option<T>, value: T, key: &str, sp: &crate::lex::Spanned) -> Result<()> {
    if slot.is_some() {
        return Err(ParseError::new(
            format!("duplicate `{key}` field"),
            sp.line,
            sp.col,
        ));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_number(cur: &mut Cursor) -> Result<f64> {
    match cur.peek().tok.clone() {
        Tok::Int(v) => {
            cur.bump();
            Ok(v as f64)
        }
        Tok::Float(text) => {
            cur.bump();
            text.parse::<f64>()
                .map_err(|_| cur.error_here(format!("invalid decimal literal `{text}`")))
        }
        other => Err(cur.error_here(format!("expected a number, found {other}"))),
    }
}

fn parse_int_list(cur: &mut Cursor) -> Result<Vec<i64>> {
    cur.expect(&Tok::LBracket, "`[`")?;
    let mut out = vec![cur.expect_int("extent")?];
    while cur.eat(&Tok::Comma) {
        out.push(cur.expect_int("extent")?);
    }
    cur.expect(&Tok::RBracket, "`]`")?;
    Ok(out)
}

fn parse_interconnect(cur: &mut Cursor) -> Result<Interconnect> {
    let (kind, sp) = cur.expect_ident("interconnect kind")?;
    match kind.as_str() {
        "systolic1d" => Ok(Interconnect::Systolic1D),
        "systolic2d" => Ok(Interconnect::Systolic2D),
        "mesh" => Ok(Interconnect::Mesh),
        "multicast" => {
            cur.expect(&Tok::LParen, "`(` after multicast")?;
            let (k, ksp) = cur.expect_ident("`radius`")?;
            if k != "radius" {
                return Err(ParseError::new(
                    format!("expected `radius`, found `{k}`"),
                    ksp.line,
                    ksp.col,
                ));
            }
            cur.expect(&Tok::Assign, "`=`")?;
            let radius = cur.expect_int("radius")?;
            cur.expect(&Tok::RParen, "`)`")?;
            if radius <= 0 {
                return Err(cur.error_here("multicast radius must be positive"));
            }
            Ok(Interconnect::Multicast { radius })
        }
        "custom" => {
            cur.expect(&Tok::LBrace, "`{` opening custom block")?;
            let mut offsets: Option<Vec<Vec<i64>>> = None;
            let mut same_cycle = false;
            while cur.peek().tok != Tok::RBrace {
                let (k, ksp) = cur.expect_ident("`offsets` or `same_cycle`")?;
                cur.expect(&Tok::Assign, "`=`")?;
                match k.as_str() {
                    "offsets" => {
                        cur.expect(&Tok::LBracket, "`[`")?;
                        let mut rows = vec![parse_int_list(cur)?];
                        while cur.eat(&Tok::Comma) {
                            rows.push(parse_int_list(cur)?);
                        }
                        cur.expect(&Tok::RBracket, "`]`")?;
                        offsets = Some(rows);
                    }
                    "same_cycle" => {
                        let (v, vsp) = cur.expect_ident("`true` or `false`")?;
                        same_cycle = match v.as_str() {
                            "true" => true,
                            "false" => false,
                            other => {
                                return Err(ParseError::new(
                                    format!("expected `true` or `false`, found `{other}`"),
                                    vsp.line,
                                    vsp.col,
                                ))
                            }
                        };
                    }
                    other => {
                        return Err(ParseError::new(
                            format!("unknown custom-interconnect field `{other}`"),
                            ksp.line,
                            ksp.col,
                        ))
                    }
                }
            }
            cur.expect(&Tok::RBrace, "`}`")?;
            let offsets =
                offsets.ok_or_else(|| cur.error_here("custom interconnect needs `offsets`"))?;
            Ok(Interconnect::Custom {
                offsets,
                same_cycle,
            })
        }
        other => Err(ParseError::new(
            format!(
                "unknown interconnect `{other}` (expected systolic1d, systolic2d, mesh, \
                 multicast(radius = R), custom {{ ... }})"
            ),
            sp.line,
            sp.col,
        )),
    }
}

fn parse_energy(cur: &mut Cursor) -> Result<EnergyModel> {
    cur.expect(&Tok::LBrace, "`{` opening energy block")?;
    let mut e = EnergyModel::default();
    while cur.peek().tok != Tok::RBrace {
        let (k, ksp) = cur.expect_ident("energy field")?;
        cur.expect(&Tok::Assign, "`=`")?;
        let v = parse_number(cur)?;
        if v < 0.0 {
            return Err(cur.error_here("energy costs must be non-negative"));
        }
        match k.as_str() {
            "mac" => e.mac = v,
            "register" | "reg" => e.register = v,
            "noc_hop" | "hop" => e.noc_hop = v,
            "scratchpad" | "spad" => e.scratchpad = v,
            "dram" => e.dram = v,
            other => {
                return Err(ParseError::new(
                    format!(
                        "unknown energy field `{other}` (expected mac, register, noc_hop, \
                         scratchpad, dram)"
                    ),
                    ksp.line,
                    ksp.col,
                ))
            }
        }
    }
    cur.expect(&Tok::RBrace, "`}`")?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_spec() {
        let a =
            parse_arch("arch \"tpu\" { array = [8, 8] interconnect = systolic2d bandwidth = 64 }")
                .unwrap();
        assert_eq!(a.name, "tpu");
        assert_eq!(a.pe_dims, vec![8, 8]);
        assert_eq!(a.interconnect, Interconnect::Systolic2D);
        assert_eq!(a.bandwidth, 64.0);
        // Defaults survive.
        assert_eq!(a.energy, EnergyModel::default());
    }

    #[test]
    fn parses_full_spec_with_energy_and_comments() {
        let a = parse_arch(
            "# Eyeriss-like array
             arch eyeriss {
               array = [12, 14]
               interconnect = mesh
               bandwidth = 2.5             // elements per cycle
               scratchpad_capacity = 108000
               energy {
                 mac = 1.0
                 reg = 0.9
                 hop = 2.0
                 spad = 6.0
                 dram = 200.0
               }
             }",
        )
        .unwrap();
        assert_eq!(a.pe_count(), 168);
        assert_eq!(a.bandwidth, 2.5);
        assert_eq!(a.scratchpad_capacity, 108_000);
        assert_eq!(a.energy.register, 0.9);
    }

    #[test]
    fn parses_multicast_radius() {
        let a = parse_arch(
            "arch m { array = [64] interconnect = multicast(radius = 3) bandwidth = 16 }",
        )
        .unwrap();
        assert_eq!(a.interconnect, Interconnect::Multicast { radius: 3 });
    }

    #[test]
    fn parses_custom_offsets() {
        let a = parse_arch(
            "arch c { array = [4, 4]
                      interconnect = custom { offsets = [[0, 1], [1, 0], [1, 1]]
                                              same_cycle = true }
                      bandwidth = 8 }",
        )
        .unwrap();
        assert_eq!(
            a.interconnect,
            Interconnect::Custom {
                offsets: vec![vec![0, 1], vec![1, 0], vec![1, 1]],
                same_cycle: true,
            }
        );
    }

    #[test]
    fn rejects_missing_mandatory_field() {
        let err = parse_arch("arch a { array = [4] bandwidth = 8 }").unwrap_err();
        assert!(err.message().contains("missing `interconnect`"));
    }

    #[test]
    fn rejects_duplicate_field() {
        let err =
            parse_arch("arch a { array = [4] array = [8] interconnect = mesh bandwidth = 8 }")
                .unwrap_err();
        assert!(err.message().contains("duplicate `array`"));
    }

    #[test]
    fn rejects_unknown_field_with_suggestion_list() {
        let err = parse_arch("arch a { array = [4] interconnect = mesh bandwidth = 8 banana = 1 }")
            .unwrap_err();
        assert!(err.message().contains("unknown arch field `banana`"));
        assert!(err.message().contains("bandwidth"));
    }

    #[test]
    fn rejects_zero_extent() {
        let err =
            parse_arch("arch a { array = [0] interconnect = mesh bandwidth = 8 }").unwrap_err();
        assert!(err.message().contains("positive"));
    }

    #[test]
    fn rejects_zero_bandwidth() {
        let err =
            parse_arch("arch a { array = [4] interconnect = mesh bandwidth = 0 }").unwrap_err();
        assert!(err.message().contains("bandwidth"));
    }

    #[test]
    fn rejects_unknown_interconnect() {
        let err =
            parse_arch("arch a { array = [4] interconnect = torus bandwidth = 8 }").unwrap_err();
        assert!(err.message().contains("unknown interconnect `torus`"));
    }

    #[test]
    fn rejects_negative_energy() {
        let err = parse_arch(
            "arch a { array = [4] interconnect = mesh bandwidth = 8 energy { mac = -1 } }",
        )
        .unwrap_err();
        // -1 lexes as `-` `1`, so this surfaces as a number-expected error.
        assert!(!err.message().is_empty());
    }
}
