//! Parse errors with source positions and rendered snippets.

use std::fmt;

/// An error produced while parsing a kernel, dataflow, or architecture
/// specification. Carries the 1-based line and column of the offending
/// token so the CLI can point at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    line: u32,
    col: u32,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, line: u32, col: u32) -> ParseError {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    /// The human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based source column of the error.
    pub fn col(&self) -> u32 {
        self.col
    }

    /// Renders the error with a caret pointing into `source`, in the style
    /// of compiler diagnostics:
    ///
    /// ```text
    /// error: expected `;` after loop initializer
    ///   3 | for (i = 0 i < 4; i++)
    ///     |            ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = format!("error: {}\n", self.message);
        if let Some(line_text) = source.lines().nth(self.line.saturating_sub(1) as usize) {
            let gutter = format!("{:>4} | ", self.line);
            out.push_str(&gutter);
            out.push_str(line_text);
            out.push('\n');
            let pad = " ".repeat(gutter.len() + self.col.saturating_sub(1) as usize);
            out.push_str(&pad);
            out.push_str("^\n");
        }
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias for frontend results.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("unexpected token", 3, 7);
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }

    #[test]
    fn render_points_at_column() {
        let src = "line one\nfor (i = 0 i < 4; i++)\n";
        let e = ParseError::new("expected `;`", 2, 12);
        let rendered = e.render(src);
        assert!(rendered.contains("error: expected `;`"));
        assert!(rendered.contains("   2 | for (i = 0 i < 4; i++)"));
        // The caret line must put ^ under column 12.
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line.find('^').unwrap(), "   2 | ".len() + 11);
    }

    #[test]
    fn render_survives_out_of_range_line() {
        let e = ParseError::new("eof", 99, 1);
        assert_eq!(e.render("short\n"), "error: eof\n");
    }
}
