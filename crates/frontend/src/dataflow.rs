//! Parser for the relation-centric dataflow notation.
//!
//! Three equivalent surface forms are accepted, all taken from the paper:
//!
//! 1. The combined Definition-1 form:
//!    `{ S[i,j,k] -> (PE[i,j] | T[i+j+k]) }`
//! 2. Two separate relations, in either order (Table III):
//!    `{ S[i,j,k] -> PE[i%8, j%8] }  { S[i,j,k] -> T[fl(i/8), fl(j/8), i%8+j%8+k] }`
//! 3. A named block form convenient for files:
//!    ```text
//!    dataflow "(IJ-P | J,IJK-T)" {
//!      space = [i % 8, j % 8]
//!      time  = [fl(i/8), fl(j/8), i % 8 + j % 8 + k]
//!    }
//!    ```
//!
//! The parser records the iterator tuple so the dataflow can be
//! cross-checked against the kernel it is applied to.

use crate::error::{ParseError, Result};
use crate::expr::Expr;
use crate::lex::{Cursor, Tok};
use tenet_core::{Dataflow, TensorOp};

/// A parsed dataflow: the iterator tuple it was written against plus the
/// space-stamp and time-stamp expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedDataflow {
    /// Optional display name (from the block form's string literal).
    pub name: Option<String>,
    /// Iterator names as written in `S[...]` (empty for the block form,
    /// where iterators are implied by the kernel).
    pub iters: Vec<String>,
    /// Space-stamp expressions.
    pub space: Vec<Expr>,
    /// Time-stamp expressions.
    pub time: Vec<Expr>,
}

impl ParsedDataflow {
    /// Lowers to a [`Dataflow`].
    pub fn to_dataflow(&self) -> Dataflow {
        let space: Vec<String> = self.space.iter().map(Expr::to_notation).collect();
        let time: Vec<String> = self.time.iter().map(Expr::to_notation).collect();
        let df = Dataflow::new(space, time);
        match &self.name {
            Some(n) => df.named(n),
            None => df,
        }
    }

    /// Checks that the dataflow is compatible with `op`: every iterator
    /// named in `S[...]` (if written) must be a loop of `op`, and every
    /// stamp expression may only use iterators of `op`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first offending iterator.
    pub fn check_against(&self, op: &TensorOp) -> Result<()> {
        let dims: Vec<&str> = op.dims().iter().map(|d| d.name.as_str()).collect();
        for it in &self.iters {
            if !dims.contains(&it.as_str()) {
                return Err(ParseError::new(
                    format!(
                        "dataflow iterator `{it}` is not a loop of kernel `{}` \
                         (loops: {})",
                        op.name(),
                        dims.join(", ")
                    ),
                    1,
                    1,
                ));
            }
        }
        for e in self.space.iter().chain(self.time.iter()) {
            for v in e.free_vars() {
                if !dims.contains(&v.as_str()) {
                    return Err(ParseError::new(
                        format!(
                            "stamp expression `{e}` uses `{v}`, which is not a loop of \
                             kernel `{}`",
                            op.name()
                        ),
                        1,
                        1,
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Parses dataflow notation text into a [`Dataflow`].
///
/// ```
/// let df = tenet_frontend::parse_dataflow(
///     "{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }",
/// )?;
/// assert_eq!(df.space_exprs(), ["i", "j"]);
/// assert_eq!(df.time_exprs(), ["i + j + k"]);
/// # Ok::<(), tenet_frontend::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed relations, mismatched iterator
/// tuples between the `PE` and `T` relations, or missing stamps.
pub fn parse_dataflow(source: &str) -> Result<Dataflow> {
    Ok(parse_dataflow_ast(source)?.to_dataflow())
}

/// Parses dataflow notation into its surface form.
pub fn parse_dataflow_ast(source: &str) -> Result<ParsedDataflow> {
    let mut cur = Cursor::new(source)?;
    let df = parse_dataflow_from(&mut cur)?;
    if !cur.at_eof() {
        return Err(cur.error_here(format!("unexpected {} after dataflow", cur.peek().tok)));
    }
    Ok(df)
}

// Parses one dataflow (relation or block form) from an open cursor,
// leaving trailing tokens for the caller.
pub(crate) fn parse_dataflow_from(cur: &mut Cursor) -> Result<ParsedDataflow> {
    let df = match cur.peek().tok.clone() {
        Tok::LBrace => parse_relations(cur)?,
        Tok::Ident(kw) if kw == "dataflow" => parse_block(cur)?,
        other => return Err(cur.error_here(format!("expected `{{` or `dataflow`, found {other}"))),
    };
    if df.space.is_empty() {
        return Err(cur.error_here("dataflow has no space-stamp (PE) dimensions"));
    }
    if df.time.is_empty() {
        return Err(cur.error_here("dataflow has no time-stamp (T) dimensions"));
    }
    Ok(df)
}

// `{ S[..] -> ... }` possibly followed by a second `{ ... }`.
fn parse_relations(cur: &mut Cursor) -> Result<ParsedDataflow> {
    let mut iters: Option<Vec<String>> = None;
    let mut space: Option<Vec<Expr>> = None;
    let mut time: Option<Vec<Expr>> = None;

    // Stop as soon as both stamps are known so that a problem file may
    // hold several relation-form dataflows back to back.
    while cur.peek().tok == Tok::LBrace && (space.is_none() || time.is_none()) {
        parse_one_relation(cur, &mut iters, &mut space, &mut time)?;
    }
    Ok(ParsedDataflow {
        name: None,
        iters: iters.unwrap_or_default(),
        space: space.unwrap_or_default(),
        time: time.unwrap_or_default(),
    })
}

fn parse_one_relation(
    cur: &mut Cursor,
    iters: &mut Option<Vec<String>>,
    space: &mut Option<Vec<Expr>>,
    time: &mut Option<Vec<Expr>>,
) -> Result<()> {
    cur.expect(&Tok::LBrace, "`{`")?;
    let (dom, sp) = cur.expect_ident("domain tuple name (e.g. `S`)")?;
    if dom != "S" {
        return Err(ParseError::new(
            format!("dataflow domain must be the statement tuple `S`, found `{dom}`"),
            sp.line,
            sp.col,
        ));
    }
    let these_iters = parse_ident_tuple(cur)?;
    match iters {
        None => *iters = Some(these_iters),
        Some(prev) => {
            if *prev != these_iters {
                return Err(cur.error_here(format!(
                    "iterator tuple [{}] disagrees with earlier [{}]",
                    these_iters.join(", "),
                    prev.join(", ")
                )));
            }
        }
    }
    cur.expect(&Tok::Arrow, "`->`")?;

    if cur.eat(&Tok::LParen) {
        // Combined form: (PE[...] | T[...]).
        parse_stamp(cur, "PE", space)?;
        cur.expect(&Tok::Pipe, "`|` between PE and T stamps")?;
        parse_stamp(cur, "T", time)?;
        cur.expect(&Tok::RParen, "`)`")?;
    } else {
        let which = match &cur.peek().tok {
            Tok::Ident(n) if n == "PE" => "PE",
            Tok::Ident(n) if n == "T" => "T",
            other => {
                return Err(cur.error_here(format!(
                    "expected `PE[...]`, `T[...]`, or `(PE[...] | T[...])`, found {other}"
                )))
            }
        };
        if which == "PE" {
            parse_stamp(cur, "PE", space)?;
        } else {
            parse_stamp(cur, "T", time)?;
        }
    }
    cur.expect(&Tok::RBrace, "`}`")?;
    Ok(())
}

fn parse_stamp(cur: &mut Cursor, expected: &str, slot: &mut Option<Vec<Expr>>) -> Result<()> {
    let (name, sp) = cur.expect_ident("stamp tuple name")?;
    if name != expected {
        return Err(ParseError::new(
            format!("expected `{expected}[...]`, found `{name}`"),
            sp.line,
            sp.col,
        ));
    }
    let exprs = parse_expr_tuple(cur)?;
    if slot.is_some() {
        return Err(ParseError::new(
            format!("duplicate `{expected}` stamp"),
            sp.line,
            sp.col,
        ));
    }
    *slot = Some(exprs);
    Ok(())
}

// `dataflow "name" { space = [..] time = [..] }`
fn parse_block(cur: &mut Cursor) -> Result<ParsedDataflow> {
    cur.bump(); // `dataflow`
    let name = match cur.peek().tok.clone() {
        Tok::Str(s) => {
            cur.bump();
            Some(s)
        }
        _ => None,
    };
    cur.expect(&Tok::LBrace, "`{` opening dataflow block")?;
    let mut space: Option<Vec<Expr>> = None;
    let mut time: Option<Vec<Expr>> = None;
    while cur.peek().tok != Tok::RBrace {
        let (key, sp) = cur.expect_ident("`space` or `time`")?;
        // `=` or `:` both accepted as the separator.
        if !cur.eat(&Tok::Assign) {
            cur.expect(&Tok::Colon, "`=` or `:`")?;
        }
        cur.expect(&Tok::LBracket, "`[` opening expression list")?;
        let mut exprs = vec![Expr::parse_from(cur)?];
        while cur.eat(&Tok::Comma) {
            exprs.push(Expr::parse_from(cur)?);
        }
        cur.expect(&Tok::RBracket, "`]`")?;
        let slot = match key.as_str() {
            "space" => &mut space,
            "time" => &mut time,
            other => {
                return Err(ParseError::new(
                    format!("unknown dataflow key `{other}` (expected `space` or `time`)"),
                    sp.line,
                    sp.col,
                ))
            }
        };
        if slot.is_some() {
            return Err(ParseError::new(
                format!("duplicate `{key}` entry"),
                sp.line,
                sp.col,
            ));
        }
        *slot = Some(exprs);
    }
    cur.expect(&Tok::RBrace, "`}`")?;
    Ok(ParsedDataflow {
        name,
        iters: Vec::new(),
        space: space.unwrap_or_default(),
        time: time.unwrap_or_default(),
    })
}

fn parse_ident_tuple(cur: &mut Cursor) -> Result<Vec<String>> {
    cur.expect(&Tok::LBracket, "`[`")?;
    let mut out = vec![cur.expect_ident("iterator")?.0];
    while cur.eat(&Tok::Comma) {
        out.push(cur.expect_ident("iterator")?.0);
    }
    cur.expect(&Tok::RBracket, "`]`")?;
    Ok(out)
}

fn parse_expr_tuple(cur: &mut Cursor) -> Result<Vec<Expr>> {
    cur.expect(&Tok::LBracket, "`[`")?;
    let mut out = vec![Expr::parse_from(cur)?];
    while cur.eat(&Tok::Comma) {
        out.push(Expr::parse_from(cur)?);
    }
    cur.expect(&Tok::RBracket, "`]`")?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_combined_definition1_form() {
        let df = parse_dataflow("{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }").unwrap();
        assert_eq!(df.space_exprs(), ["i", "j"]);
        assert_eq!(df.time_exprs(), ["i + j + k"]);
    }

    #[test]
    fn parses_two_relation_table3_form() {
        let df = parse_dataflow(
            "{S[i,j,k] -> PE[i%8, j%8]}
             {S[i,j,k] -> T[fl(i/8), fl(j/8), i%8 + j%8 + k]}",
        )
        .unwrap();
        assert_eq!(df.space_exprs(), ["i % 8", "j % 8"]);
        assert_eq!(df.time_exprs().len(), 3);
        assert_eq!(df.time_exprs()[0], "floor(i / 8)");
    }

    #[test]
    fn relations_accepted_in_either_order() {
        let a = parse_dataflow_ast("{S[i,j] -> PE[i]} {S[i,j] -> T[j]}").unwrap();
        let b = parse_dataflow_ast("{S[i,j] -> T[j]} {S[i,j] -> PE[i]}").unwrap();
        assert_eq!(a.space, b.space);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn parses_named_block_form() {
        let ast = parse_dataflow_ast(
            "dataflow \"(IJ-P | J,IJK-T)\" {
               space = [i % 8, j % 8]
               time  = [fl(i/8), fl(j/8), i % 8 + j % 8 + k]
             }",
        )
        .unwrap();
        assert_eq!(ast.name.as_deref(), Some("(IJ-P | J,IJK-T)"));
        let df = ast.to_dataflow();
        assert_eq!(df.name(), Some("(IJ-P | J,IJK-T)"));
        assert_eq!(df.n_space(), 2);
        assert_eq!(df.n_time(), 3);
    }

    #[test]
    fn block_form_accepts_colon_separator() {
        let df = parse_dataflow("dataflow { space: [i] time: [j] }").unwrap();
        assert_eq!(df.space_exprs(), ["i"]);
    }

    #[test]
    fn eyeriss_row_stationary_space_stamp() {
        let df = parse_dataflow(
            "{S[k,c,ox,oy,rx,ry] -> PE[ry + 3*(c % 4), oy]}
             {S[k,c,ox,oy,rx,ry] -> T[fl(k/16), fl(c/16), ox]}",
        )
        .unwrap();
        assert_eq!(df.space_exprs()[0], "ry + 3*(c % 4)");
    }

    #[test]
    fn rejects_mismatched_iterator_tuples() {
        let err = parse_dataflow("{S[i,j] -> PE[i]} {S[i,k] -> T[k]}").unwrap_err();
        assert!(err.message().contains("disagrees"));
    }

    #[test]
    fn rejects_duplicate_pe_stamp() {
        let err = parse_dataflow("{S[i] -> PE[i]} {S[i] -> PE[i]}").unwrap_err();
        assert!(err.message().contains("duplicate `PE`"));
    }

    #[test]
    fn rejects_missing_time_stamp() {
        let err = parse_dataflow("{S[i] -> PE[i]}").unwrap_err();
        assert!(err.message().contains("no time-stamp"));
    }

    #[test]
    fn rejects_missing_space_in_block() {
        let err = parse_dataflow("dataflow { time = [i] }").unwrap_err();
        assert!(err.message().contains("no space-stamp"));
    }

    #[test]
    fn rejects_wrong_domain_tuple() {
        let err = parse_dataflow("{Q[i] -> PE[i]}").unwrap_err();
        assert!(err.message().contains("statement tuple `S`"));
    }

    #[test]
    fn rejects_unknown_block_key() {
        let err = parse_dataflow("dataflow { pace = [i] }").unwrap_err();
        assert!(err.message().contains("unknown dataflow key"));
    }

    #[test]
    fn check_against_catches_foreign_iterator() {
        let op = tenet_core::TensorOp::builder("gemm")
            .dim("i", 4)
            .dim("j", 4)
            .read("A", ["i"])
            .write("Y", ["j"])
            .build()
            .unwrap();
        let ast = parse_dataflow_ast("{S[i,j] -> (PE[i] | T[j + q])}").unwrap();
        let err = ast.check_against(&op).unwrap_err();
        assert!(err.message().contains('q'));
        let ok = parse_dataflow_ast("{S[i,j] -> (PE[i] | T[j])}").unwrap();
        assert!(ok.check_against(&op).is_ok());
    }

    #[test]
    fn lowered_dataflow_builds_theta() {
        let op = tenet_core::TensorOp::builder("gemm")
            .dim("i", 2)
            .dim("j", 2)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = parse_dataflow("{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }").unwrap();
        let theta = df.theta(&op).unwrap();
        assert_eq!(theta.card().unwrap(), 16);
    }
}
