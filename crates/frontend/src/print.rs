//! Pretty-printers that emit the textual forms accepted by the parsers,
//! closing the round trip `parse(print(x)) == x`.

use tenet_core::{ArchSpec, Dataflow, Interconnect, Role, TensorOp};

/// Prints a [`TensorOp`] as the C-like loop nest accepted by
/// [`crate::parse_kernel`].
///
/// ```
/// # use tenet_core::TensorOp;
/// let op = TensorOp::builder("S")
///     .dim("i", 4).dim("j", 3)
///     .read("A", ["i + j"])
///     .write("Y", ["i"])
///     .build()?;
/// let text = tenet_frontend::kernel_to_c(&op);
/// assert_eq!(tenet_frontend::parse_kernel(&text)?.instances()?, 12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn kernel_to_c(op: &TensorOp) -> String {
    let mut out = String::new();
    for (depth, d) in op.dims().iter().enumerate() {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "for ({name} = {lo}; {name} < {hi}; {name}++)\n",
            name = d.name,
            lo = d.lo,
            hi = d.hi
        ));
    }
    out.push_str(&"  ".repeat(op.dims().len()));
    out.push_str(&format!("{}: ", op.name()));

    let write = op
        .accesses()
        .iter()
        .find(|a| a.role == Role::Output)
        .expect("TensorOp always has an output access");
    out.push_str(&access_text(&write.tensor, &write.exprs));
    out.push_str(" += ");
    let inputs: Vec<String> = op
        .accesses()
        .iter()
        .filter(|a| a.role == Role::Input)
        .map(|a| access_text(&a.tensor, &a.exprs))
        .collect();
    if inputs.is_empty() {
        out.push('1');
    } else {
        out.push_str(&inputs.join(" * "));
    }
    out.push_str(";\n");
    out
}

fn access_text(tensor: &str, exprs: &[String]) -> String {
    let subs: Vec<String> = exprs.iter().map(|e| format!("[{e}]")).collect();
    format!("{tensor}{}", subs.join(""))
}

/// Prints a [`Dataflow`] in the combined Definition-1 notation,
/// `{ S[iters] -> (PE[space] | T[time]) }`, using the iterator tuple of
/// the kernel it targets.
pub fn dataflow_to_notation(df: &Dataflow, iters: &[String]) -> String {
    format!(
        "{{ S[{}] -> (PE[{}] | T[{}]) }}",
        iters.join(", "),
        df.space_exprs().join(", "),
        df.time_exprs().join(", ")
    )
}

/// Prints an [`ArchSpec`] in the block format accepted by
/// [`crate::parse_arch`].
pub fn arch_to_spec(arch: &ArchSpec) -> String {
    let mut out = format!("arch \"{}\" {{\n", arch.name);
    let dims: Vec<String> = arch.pe_dims.iter().map(i64::to_string).collect();
    out.push_str(&format!("  array = [{}]\n", dims.join(", ")));
    let ic = match &arch.interconnect {
        Interconnect::Systolic1D => "systolic1d".to_string(),
        Interconnect::Systolic2D => "systolic2d".to_string(),
        Interconnect::Mesh => "mesh".to_string(),
        Interconnect::Multicast { radius } => format!("multicast(radius = {radius})"),
        Interconnect::Custom {
            offsets,
            same_cycle,
        } => {
            let rows: Vec<String> = offsets
                .iter()
                .map(|o| {
                    let xs: Vec<String> = o.iter().map(i64::to_string).collect();
                    format!("[{}]", xs.join(", "))
                })
                .collect();
            format!(
                "custom {{ offsets = [{}] same_cycle = {} }}",
                rows.join(", "),
                same_cycle
            )
        }
    };
    out.push_str(&format!("  interconnect = {ic}\n"));
    out.push_str(&format!("  bandwidth = {}\n", fmt_f64(arch.bandwidth)));
    out.push_str(&format!(
        "  scratchpad_capacity = {}\n",
        arch.scratchpad_capacity
    ));
    let e = &arch.energy;
    out.push_str("  energy {\n");
    out.push_str(&format!("    mac = {}\n", fmt_f64(e.mac)));
    out.push_str(&format!("    register = {}\n", fmt_f64(e.register)));
    out.push_str(&format!("    noc_hop = {}\n", fmt_f64(e.noc_hop)));
    out.push_str(&format!("    scratchpad = {}\n", fmt_f64(e.scratchpad)));
    out.push_str(&format!("    dram = {}\n", fmt_f64(e.dram)));
    out.push_str("  }\n}\n");
    out
}

// Prints a float so the lexer can read it back (always with a decimal
// point or as an integer, never in exponent form).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_arch, parse_dataflow, parse_kernel};

    #[test]
    fn kernel_round_trips_gemm() {
        let op = TensorOp::builder("S")
            .dim("i", 2)
            .dim("j", 2)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let text = kernel_to_c(&op);
        let back = parse_kernel(&text).unwrap();
        assert_eq!(back.name(), op.name());
        assert_eq!(back.dims(), op.dims());
        // Access order is not semantic: the printer emits the write first.
        let mut got = back.accesses().to_vec();
        let mut want = op.accesses().to_vec();
        let key = |a: &tenet_core::TensorAccess| (a.tensor.clone(), a.exprs.clone());
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
    }

    #[test]
    fn kernel_print_places_output_first() {
        let op = TensorOp::builder("S")
            .dim("i", 4)
            .read("A", ["i"])
            .write("Y", ["i"])
            .build()
            .unwrap();
        let text = kernel_to_c(&op);
        assert!(text.contains("Y[i] += A[i];"));
    }

    #[test]
    fn dataflow_round_trips() {
        let df = Dataflow::new(["i % 8", "j % 8"], ["floor(i / 8)", "i % 8 + j % 8 + k"]);
        let text = dataflow_to_notation(&df, &["i".into(), "j".into(), "k".into()]);
        let back = parse_dataflow(&text).unwrap();
        assert_eq!(back.space_exprs(), df.space_exprs());
        assert_eq!(back.time_exprs(), df.time_exprs());
    }

    #[test]
    fn arch_round_trips_all_interconnects() {
        for ic in [
            Interconnect::Systolic1D,
            Interconnect::Systolic2D,
            Interconnect::Mesh,
            Interconnect::Multicast { radius: 3 },
            Interconnect::Custom {
                offsets: vec![vec![1, 0], vec![0, 1]],
                same_cycle: false,
            },
        ] {
            let mut arch = ArchSpec::new("roundtrip", [4, 4], ic, 2.5);
            arch.energy.noc_hop = 1.75;
            let text = arch_to_spec(&arch);
            let back = parse_arch(&text).unwrap();
            assert_eq!(back, arch, "spec text was:\n{text}");
        }
    }
}
