//! # tenet-frontend
//!
//! The textual front end of the TENET reproduction — the input half of
//! the paper's Figure 2 flow, which "takes a tensor operation written in
//! C and hardware specification as inputs".
//!
//! Three parsers are provided:
//!
//! * [`parse_kernel`] — a C-like perfectly nested loop with a single
//!   statement (Section II-B) into a [`tenet_core::TensorOp`];
//! * [`parse_dataflow`] — the relation-centric notation of Definition 1 /
//!   Table III into a [`tenet_core::Dataflow`];
//! * [`parse_arch`] — a hardware-specification block into a
//!   [`tenet_core::ArchSpec`].
//!
//! plus the matching printers ([`kernel_to_c`], [`dataflow_to_notation`],
//! [`arch_to_spec`]) so every object round-trips through text, and
//! [`parse_problem`] which reads all three sections from one file.
//!
//! ```
//! use tenet_core::Analysis;
//!
//! let op = tenet_frontend::parse_kernel(
//!     "for (i = 0; i < 2; i++)
//!        for (j = 0; j < 2; j++)
//!          for (k = 0; k < 4; k++)
//!            S: Y[i][j] += A[i][k] * B[k][j];",
//! )?;
//! let df = tenet_frontend::parse_dataflow("{ S[i,j,k] -> (PE[i,j] | T[i+j+k]) }")?;
//! let arch = tenet_frontend::parse_arch(
//!     "arch \"2x2\" { array = [2, 2] interconnect = systolic2d bandwidth = 4 }",
//! )?;
//! let report = Analysis::new(&op, &df, &arch)?.report()?;
//! assert_eq!(report.macs, 16);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod archspec;
mod dataflow;
mod error;
mod expr;
mod kernel;
mod lex;
mod print;
mod problem;

pub use archspec::parse_arch;
pub use dataflow::{parse_dataflow, parse_dataflow_ast, ParsedDataflow};
pub use error::{ParseError, Result};
pub use expr::Expr;
pub use kernel::{parse_kernel, parse_kernel_ast, AccessSpec, LoopSpec, ParsedKernel};
pub use print::{arch_to_spec, dataflow_to_notation, kernel_to_c};
pub use problem::{parse_problem, problem_to_text, Problem};
