//! Parser for tensor operations written as C-like loop nests.
//!
//! TENET "takes a tensor operation written in C ... as input" (Figure 2).
//! The accepted subset is exactly the paper's program class (Section
//! II-B): a perfectly nested `for` loop with affine bounds and a single
//! unconditional statement, e.g.
//!
//! ```c
//! for (i = 0; i < 64; i++)
//!   for (j = 0; j < 64; j++)
//!     for (k = 0; k < 64; k++)
//!       S: Y[i][j] += A[i][k] * B[k][j];
//! ```
//!
//! The statement label (`S:`) names the resulting [`TensorOp`]; it is
//! optional and defaults to `kernel`. The left-hand side becomes the
//! output tensor access; every tensor reference on the right-hand side
//! becomes an input access. Index expressions may be any quasi-affine
//! function of the loop iterators.

use crate::error::{ParseError, Result};
use crate::expr::Expr;
use crate::lex::{Cursor, Tok};
use tenet_core::{Role, TensorOp};

/// One parsed `for` loop level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSpec {
    /// Iterator name.
    pub iter: String,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
}

/// One tensor reference `A[e0][e1]...` or `A[e0, e1, ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSpec {
    /// Tensor name.
    pub tensor: String,
    /// Whether the statement reads or writes this reference.
    pub role: Role,
    /// One index expression per tensor dimension.
    pub indices: Vec<Expr>,
}

/// The parsed form of a kernel, before lowering to [`TensorOp`].
///
/// Exposed so tools can inspect the surface syntax (e.g. to re-print the
/// kernel or to report which accesses alias).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedKernel {
    /// Statement label, used as the operation name.
    pub name: String,
    /// Loop levels, outermost first.
    pub loops: Vec<LoopSpec>,
    /// All tensor references; the write comes first.
    pub accesses: Vec<AccessSpec>,
    /// True if the statement accumulates (`+=`) rather than assigns (`=`).
    pub accumulates: bool,
}

impl ParsedKernel {
    /// Lowers the parsed kernel to a [`TensorOp`].
    ///
    /// # Errors
    ///
    /// Fails if the loop nest is invalid (duplicate iterators, empty
    /// ranges rejected by the core builder) or an index expression uses a
    /// name that is not a loop iterator.
    pub fn to_op(&self) -> Result<TensorOp> {
        let mut b = TensorOp::builder(&self.name);
        for l in &self.loops {
            b = b.dim_range(&l.iter, l.lo, l.hi);
        }
        for a in &self.accesses {
            let exprs: Vec<String> = a.indices.iter().map(Expr::to_notation).collect();
            b = match a.role {
                Role::Input => b.read(&a.tensor, exprs),
                Role::Output => b.write(&a.tensor, exprs),
            };
        }
        b.build()
            .map_err(|e| ParseError::new(format!("invalid kernel: {e}"), 1, 1))
    }
}

/// Parses a C-like loop nest and lowers it to a [`TensorOp`].
///
/// ```
/// let op = tenet_frontend::parse_kernel(
///     "for (i = 0; i < 4; i++)
///        for (j = 0; j < 3; j++)
///          S: Y[i] += A[i + j] * B[j];",
/// )?;
/// assert_eq!(op.name(), "S");
/// assert_eq!(op.instances().unwrap(), 12);
/// # Ok::<(), tenet_frontend::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] with source position on any syntax error, on
/// imperfect nesting, and on index expressions that reference undeclared
/// iterators.
pub fn parse_kernel(source: &str) -> Result<TensorOp> {
    parse_kernel_ast(source)?.to_op()
}

/// Parses a C-like loop nest into its surface form without lowering.
pub fn parse_kernel_ast(source: &str) -> Result<ParsedKernel> {
    let mut cur = Cursor::new(source)?;
    let kernel = parse_kernel_from(&mut cur)?;
    if !cur.at_eof() {
        return Err(cur.error_here(format!(
            "unexpected {} after kernel (perfectly nested loops allow a single statement)",
            cur.peek().tok
        )));
    }
    Ok(kernel)
}

// Parses one loop nest from an open cursor, leaving trailing tokens for
// the caller (used by the combined problem-file parser).
pub(crate) fn parse_kernel_from(cur: &mut Cursor) -> Result<ParsedKernel> {
    let kernel = parse_nest(cur)?;
    validate(&kernel, cur)?;
    Ok(kernel)
}

fn parse_nest(cur: &mut Cursor) -> Result<ParsedKernel> {
    parse_nest_body(cur, Vec::new())
}

// Parses loop levels (braced or not) down to the single statement,
// carrying the loops parsed so far.
fn parse_nest_body(cur: &mut Cursor, mut loops: Vec<LoopSpec>) -> Result<ParsedKernel> {
    loop {
        match cur.peek().tok.clone() {
            Tok::Ident(kw) if kw == "for" => {
                loops.push(parse_for_header(cur)?);
                if cur.eat(&Tok::LBrace) {
                    let inner = parse_nest_body(cur, loops)?;
                    cur.expect(&Tok::RBrace, "`}` closing loop body")?;
                    return Ok(inner);
                }
            }
            _ => {
                let (name, accesses, accumulates) = parse_statement(cur)?;
                return Ok(ParsedKernel {
                    name,
                    loops,
                    accesses,
                    accumulates,
                });
            }
        }
    }
}

fn parse_for_header(cur: &mut Cursor) -> Result<LoopSpec> {
    cur.bump(); // `for`
    cur.expect(&Tok::LParen, "`(` after `for`")?;
    // Optional C type keyword.
    if matches!(&cur.peek().tok, Tok::Ident(k) if k == "int" || k == "long" || k == "size_t") {
        cur.bump();
    }
    let (iter, _) = cur.expect_ident("loop iterator")?;
    cur.expect(&Tok::Assign, "`=` in loop initializer")?;
    let lo = parse_signed_int(cur, "loop lower bound")?;
    cur.expect(&Tok::Semi, "`;` after loop initializer")?;

    let (cond_var, sp) = cur.expect_ident("loop condition variable")?;
    if cond_var != iter {
        return Err(ParseError::new(
            format!("loop condition tests `{cond_var}` but the iterator is `{iter}`"),
            sp.line,
            sp.col,
        ));
    }
    let strict = match cur.bump().tok {
        Tok::Lt => true,
        Tok::Le => false,
        other => {
            return Err(cur.error_here(format!(
                "expected `<` or `<=` in loop condition, found {other}"
            )))
        }
    };
    let bound = parse_signed_int(cur, "loop upper bound")?;
    let hi = if strict { bound } else { bound + 1 };
    cur.expect(&Tok::Semi, "`;` after loop condition")?;

    // Increment: `i++`, `++i`, or `i += 1`.
    match cur.peek().tok.clone() {
        Tok::PlusPlus => {
            cur.bump();
            let (v, sp) = cur.expect_ident("iterator after `++`")?;
            if v != iter {
                return Err(ParseError::new(
                    format!("increment updates `{v}`, expected `{iter}`"),
                    sp.line,
                    sp.col,
                ));
            }
        }
        Tok::Ident(v) => {
            let sp = cur.bump();
            if v != iter {
                return Err(ParseError::new(
                    format!("increment updates `{v}`, expected `{iter}`"),
                    sp.line,
                    sp.col,
                ));
            }
            match cur.bump().tok {
                Tok::PlusPlus => {}
                Tok::PlusAssign => {
                    let step = cur.expect_int("step")?;
                    if step != 1 {
                        return Err(cur.error_here(
                            "only unit-stride loops are supported; normalize the \
                             iteration space first",
                        ));
                    }
                }
                other => {
                    return Err(cur.error_here(format!(
                        "expected `++` or `+= 1` in loop increment, found {other}"
                    )))
                }
            }
        }
        other => return Err(cur.error_here(format!("expected loop increment, found {other}"))),
    }
    cur.expect(&Tok::RParen, "`)` closing loop header")?;
    Ok(LoopSpec { iter, lo, hi })
}

fn parse_signed_int(cur: &mut Cursor, what: &str) -> Result<i64> {
    let neg = cur.eat(&Tok::Minus);
    let v = cur.expect_int(what)?;
    Ok(if neg { -v } else { v })
}

type Statement = (String, Vec<AccessSpec>, bool);

fn parse_statement(cur: &mut Cursor) -> Result<Statement> {
    // Optional `Label:` before the assignment.
    let mut name = "kernel".to_string();
    if let (Tok::Ident(label), Tok::Colon) = (&cur.peek().tok, &cur.peek2().tok) {
        // Distinguish a label from a tensor access `Y[...]`.
        name = label.clone();
        cur.bump();
        cur.bump();
    }

    let write = parse_access(cur, Role::Output)?;
    let accumulates = match cur.bump().tok {
        Tok::PlusAssign => true,
        Tok::Assign => false,
        other => {
            return Err(cur.error_here(format!(
                "expected `+=` or `=` after output access, found {other}"
            )))
        }
    };

    let mut accesses = vec![write];
    parse_rhs(cur, &mut accesses)?;
    cur.expect(&Tok::Semi, "`;` terminating the statement")?;
    Ok((name, accesses, accumulates))
}

// The right-hand side is an arbitrary arithmetic expression over tensor
// references and constants. Only the tensor references matter for the
// dataflow model, so the expression tree is scanned rather than built.
fn parse_rhs(cur: &mut Cursor, accesses: &mut Vec<AccessSpec>) -> Result<()> {
    parse_rhs_term(cur, accesses)?;
    loop {
        match cur.peek().tok {
            Tok::Plus | Tok::Minus | Tok::Star | Tok::Slash => {
                cur.bump();
                parse_rhs_term(cur, accesses)?;
            }
            _ => return Ok(()),
        }
    }
}

fn parse_rhs_term(cur: &mut Cursor, accesses: &mut Vec<AccessSpec>) -> Result<()> {
    match cur.peek().tok.clone() {
        Tok::LParen => {
            cur.bump();
            parse_rhs(cur, accesses)?;
            cur.expect(&Tok::RParen, "`)`")?;
            Ok(())
        }
        Tok::Int(_) => {
            cur.bump();
            Ok(())
        }
        Tok::Minus => {
            cur.bump();
            parse_rhs_term(cur, accesses)
        }
        Tok::Ident(_) => {
            let acc = parse_access(cur, Role::Input)?;
            accesses.push(acc);
            Ok(())
        }
        other => Err(cur.error_here(format!("expected operand, found {other}"))),
    }
}

fn parse_access(cur: &mut Cursor, role: Role) -> Result<AccessSpec> {
    let (tensor, sp) = cur.expect_ident("tensor name")?;
    if cur.peek().tok != Tok::LBracket {
        return Err(ParseError::new(
            format!("`{tensor}` must be subscripted (scalars are 0-d tensors: `{tensor}[0]`)"),
            sp.line,
            sp.col,
        ));
    }
    let mut indices = Vec::new();
    while cur.eat(&Tok::LBracket) {
        indices.push(Expr::parse_from(cur)?);
        while cur.eat(&Tok::Comma) {
            indices.push(Expr::parse_from(cur)?);
        }
        cur.expect(&Tok::RBracket, "`]` closing subscript")?;
    }
    Ok(AccessSpec {
        tensor,
        role,
        indices,
    })
}

fn validate(k: &ParsedKernel, cur: &Cursor) -> Result<()> {
    if k.loops.is_empty() {
        return Err(cur.error_here("kernel has no loops"));
    }
    for (idx, l) in k.loops.iter().enumerate() {
        if k.loops[..idx].iter().any(|p| p.iter == l.iter) {
            return Err(cur.error_here(format!("duplicate loop iterator `{}`", l.iter)));
        }
        if l.hi <= l.lo {
            return Err(cur.error_here(format!(
                "loop `{}` has empty range [{}, {})",
                l.iter, l.lo, l.hi
            )));
        }
    }
    let iters: Vec<&str> = k.loops.iter().map(|l| l.iter.as_str()).collect();
    for a in &k.accesses {
        for e in &a.indices {
            for v in e.free_vars() {
                if !iters.contains(&v.as_str()) {
                    return Err(cur.error_here(format!(
                        "index of `{}` uses `{v}`, which is not a loop iterator",
                        a.tensor
                    )));
                }
            }
        }
        if iters.contains(&a.tensor.as_str()) {
            return Err(cur.error_here(format!("tensor `{}` shadows a loop iterator", a.tensor)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GEMM: &str = "
        for (i = 0; i < 2; i++)
          for (j = 0; j < 2; j++)
            for (k = 0; k < 4; k++)
              S: Y[i][j] += A[i][k] * B[k][j];
    ";

    #[test]
    fn parses_figure3_gemm() {
        let op = parse_kernel(GEMM).unwrap();
        assert_eq!(op.name(), "S");
        assert_eq!(op.instances().unwrap(), 16);
        let names: Vec<&str> = op.accesses().iter().map(|a| a.tensor.as_str()).collect();
        assert_eq!(names, ["Y", "A", "B"]);
        assert_eq!(op.accesses()[0].role, Role::Output);
        assert_eq!(op.accesses()[1].role, Role::Input);
    }

    #[test]
    fn parses_comma_subscripts_and_braces() {
        let op = parse_kernel(
            "for (int i = 0; i < 3; i++) {
               for (int j = 0; j <= 4; j += 1) {
                 Y[i, j] = A[i, j] + 1;
               }
             }",
        )
        .unwrap();
        assert_eq!(op.name(), "kernel");
        assert_eq!(op.instances().unwrap(), 15);
    }

    #[test]
    fn parses_1d_conv_from_figure1() {
        let op = parse_kernel(
            "for (j = 0; j < 3; j++)
               for (i = 0; i < 4; i++)
                 S: Y[i] += A[i + j] * B[j];",
        )
        .unwrap();
        assert_eq!(op.instances().unwrap(), 12);
        // Input footprint of A is i+j in [0, 6).
        let fp = op.footprint("A").unwrap();
        assert_eq!(fp.card().unwrap(), 6);
    }

    #[test]
    fn parses_jacobi_style_multi_access() {
        let op = parse_kernel(
            "for (i = 1; i < 9; i++)
               for (j = 1; j < 9; j++)
                 S: Y[i][j] = (A[i][j] + A[i - 1][j] + A[i][j - 1]
                               + A[i + 1][j] + A[i][j + 1]) / 5;",
        )
        .unwrap();
        let a_accesses = op.accesses().iter().filter(|a| a.tensor == "A").count();
        assert_eq!(a_accesses, 5);
    }

    #[test]
    fn parses_prefix_increment_and_le_bound() {
        let k = parse_kernel_ast("for (i = 0; i <= 3; ++i) S: Y[i] = A[i];").unwrap();
        assert_eq!(k.loops[0].hi, 4);
        assert!(!k.accumulates);
    }

    #[test]
    fn parses_negative_lower_bound() {
        let k = parse_kernel_ast("for (i = -2; i < 2; i++) S: Y[i] = A[i];").unwrap();
        assert_eq!((k.loops[0].lo, k.loops[0].hi), (-2, 2));
        assert_eq!(k.to_op().unwrap().instances().unwrap(), 4);
    }

    #[test]
    fn quasi_affine_subscripts_allowed() {
        let op = parse_kernel("for (i = 0; i < 16; i++) S: Y[i % 4][fl(i/4)] += A[i];").unwrap();
        assert_eq!(op.footprint("Y").unwrap().card().unwrap(), 16);
    }

    #[test]
    fn rejects_mismatched_condition_variable() {
        let err = parse_kernel("for (i = 0; j < 4; i++) S: Y[i] = A[i];").unwrap_err();
        assert!(err.message().contains("tests `j`"));
    }

    #[test]
    fn rejects_wrong_increment_variable() {
        let err = parse_kernel("for (i = 0; i < 4; j++) S: Y[i] = A[i];").unwrap_err();
        assert!(err.message().contains("updates `j`"));
    }

    #[test]
    fn rejects_non_unit_stride() {
        let err = parse_kernel("for (i = 0; i < 4; i += 2) S: Y[i] = A[i];").unwrap_err();
        assert!(err.message().contains("unit-stride"));
    }

    #[test]
    fn rejects_duplicate_iterator() {
        let err = parse_kernel("for (i = 0; i < 4; i++) for (i = 0; i < 2; i++) S: Y[i] = A[i];")
            .unwrap_err();
        assert!(err.message().contains("duplicate"));
    }

    #[test]
    fn rejects_unknown_index_variable() {
        let err = parse_kernel("for (i = 0; i < 4; i++) S: Y[i] = A[q];").unwrap_err();
        assert!(err.message().contains("not a loop iterator"));
    }

    #[test]
    fn rejects_empty_loop_range() {
        let err = parse_kernel("for (i = 5; i < 5; i++) S: Y[i] = A[i];").unwrap_err();
        assert!(err.message().contains("empty range"));
    }

    #[test]
    fn rejects_unsubscripted_scalar() {
        let err = parse_kernel("for (i = 0; i < 4; i++) S: Y[i] = alpha;").unwrap_err();
        assert!(err.message().contains("subscripted"));
    }

    #[test]
    fn rejects_statement_after_nest() {
        let err =
            parse_kernel("for (i = 0; i < 4; i++) S: Y[i] = A[i]; T: Z[0] = A[0];").unwrap_err();
        assert!(err.message().contains("after kernel"));
    }

    #[test]
    fn error_position_is_useful() {
        let err = parse_kernel("for (i = 0 i < 4; i++) S: Y[i] = A[i];").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.col() >= 11);
    }
}
