//! The consistent-hash ring: canonical request keys onto workers.
//!
//! Each worker owns `vnodes` pseudo-random points on the `u64` circle; a
//! request key is owned by the worker whose point is the first at or
//! after the key (wrapping at the top). The properties the cluster
//! depends on, locked by `tests/ring_props.rs`:
//!
//! * **Stability** — adding or removing one worker remaps only the keys
//!   whose owning arc changed, ≈ `1/N` of the population, instead of
//!   reshuffling everything the way `key % N` would. A remap costs one
//!   cold recompute on the new owner; the old owner's cache entry ages
//!   out of its LRU.
//! * **Liveness** — a removed worker holds no points, so lookups can
//!   never name a dead worker.
//! * **Determinism** — point positions depend only on `(worker, replica)`
//!   through a fixed mix function, so every router instance (and every
//!   restart) builds the identical ring.

use std::collections::BTreeSet;

/// A consistent-hash ring over worker indexes.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    /// `(point, worker)` sorted by point (ties broken by worker, so even
    /// colliding points order deterministically).
    points: Vec<(u64, usize)>,
    members: BTreeSet<usize>,
}

/// SplitMix64 finalizer — the fixed mix placing `(worker, replica)` on
/// the circle.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn vnode_point(worker: usize, replica: usize) -> u64 {
    mix(((worker as u64) << 32) ^ replica as u64)
}

impl HashRing {
    /// An empty ring with `vnodes` points per worker (at least 1).
    pub fn new(vnodes: usize) -> HashRing {
        HashRing {
            vnodes: vnodes.max(1),
            points: Vec::new(),
            members: BTreeSet::new(),
        }
    }

    /// Adds a worker's points; returns `false` if it was already present.
    pub fn add(&mut self, worker: usize) -> bool {
        if !self.members.insert(worker) {
            return false;
        }
        for replica in 0..self.vnodes {
            let p = (vnode_point(worker, replica), worker);
            let at = self.points.partition_point(|q| *q < p);
            self.points.insert(at, p);
        }
        true
    }

    /// Removes a worker's points; returns `false` if it was not present.
    pub fn remove(&mut self, worker: usize) -> bool {
        if !self.members.remove(&worker) {
            return false;
        }
        self.points.retain(|&(_, w)| w != worker);
        true
    }

    /// Whether `worker` is currently on the ring.
    pub fn contains(&self, worker: usize) -> bool {
        self.members.contains(&worker)
    }

    /// The worker owning `key`: the first point at or after it, wrapping.
    /// `None` only when the ring is empty.
    pub fn owner(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.points.partition_point(|&(p, _)| p < key);
        let (_, worker) = self.points[at % self.points.len()];
        Some(worker)
    }

    /// The first `r` *distinct* workers at or after `key`, wrapping: the
    /// key's replica set. `owners(key, 1)` is `[owner(key)]`; the second
    /// entry is the key's first successor — exactly the worker that
    /// becomes the owner if the primary is removed, which is what makes
    /// successor replication a warm failover: the rehashed lookup lands
    /// precisely on the replica that already holds the key's answer.
    /// Returns `min(r, members)` workers; empty only when the ring is
    /// empty or `r` is 0.
    pub fn owners(&self, key: u64, r: usize) -> Vec<usize> {
        let want = r.min(self.members.len());
        let mut out = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        for i in 0..self.points.len() {
            let (_, worker) = self.points[(start + i) % self.points.len()];
            if !out.contains(&worker) {
                out.push(worker);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// Current members, ascending.
    pub fn members(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().copied()
    }

    /// Number of workers on the ring.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no worker is on the ring.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_deterministic_and_total() {
        let mut a = HashRing::new(64);
        let mut b = HashRing::new(64);
        for w in [2, 0, 1] {
            a.add(w);
        }
        for w in [0, 1, 2] {
            b.add(w);
        }
        for key in (0..5000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let owner = a.owner(key).unwrap();
            assert_eq!(Some(owner), b.owner(key), "insertion order must not matter");
            assert!(owner < 3);
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let mut ring = HashRing::new(8);
        assert_eq!(ring.owner(42), None);
        ring.add(7);
        assert_eq!(ring.owner(42), Some(7), "a singleton owns every key");
        assert_eq!(ring.owner(u64::MAX), Some(7));
        ring.remove(7);
        assert_eq!(ring.owner(42), None);
    }

    #[test]
    fn duplicate_add_and_remove_are_refused() {
        let mut ring = HashRing::new(8);
        assert!(ring.add(1));
        assert!(!ring.add(1));
        assert_eq!(ring.points.len(), 8, "no duplicate points");
        assert!(ring.remove(1));
        assert!(!ring.remove(1));
        assert!(ring.is_empty());
        assert!(ring.points.is_empty());
    }

    #[test]
    fn owners_are_distinct_and_promote_on_removal() {
        let mut ring = HashRing::new(64);
        for w in 0..4 {
            ring.add(w);
        }
        for key in (0..2000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let owners = ring.owners(key, 2);
            assert_eq!(owners.len(), 2);
            assert_ne!(owners[0], owners[1]);
            assert_eq!(owners[0], ring.owner(key).unwrap());
            // The replication invariant: removing the primary promotes
            // exactly the successor replica.
            let mut without = ring.clone();
            without.remove(owners[0]);
            assert_eq!(without.owner(key), Some(owners[1]));
        }
        // r clamps to the member count; an empty ring owns nothing.
        assert_eq!(ring.owners(42, 9).len(), 4);
        assert_eq!(ring.owners(42, 0), Vec::<usize>::new());
        assert_eq!(HashRing::new(8).owners(42, 2), Vec::<usize>::new());
    }

    #[test]
    fn vnodes_spread_ownership_roughly_evenly() {
        let mut ring = HashRing::new(64);
        for w in 0..4 {
            ring.add(w);
        }
        let mut counts = [0usize; 4];
        let keys = 8000u64;
        for key in (0..keys).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            counts[ring.owner(key).unwrap()] += 1;
        }
        for (w, &c) in counts.iter().enumerate() {
            let share = c as f64 / keys as f64;
            assert!(
                (0.10..=0.45).contains(&share),
                "worker {w} owns {share:.3} of keys — vnode spread broken: {counts:?}"
            );
        }
    }
}
