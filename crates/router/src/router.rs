//! The front tier: accept loop, request proxying over [`Transport`]s,
//! replication, hedging, fan-out endpoints, health probing, and
//! cascaded drain.

use crate::merge;
use crate::ring::HashRing;
use crate::transport::{ForwardError, LocalTransport, Transport};
use crate::upstream::HttpTransport;
use std::collections::HashSet;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use tenet_core::json::Json;
use tenet_server::http::{self, RequestBuffer};
use tenet_server::pool::{SubmitError, WorkerPool};
use tenet_server::{canonical_key, canonical_request, WorkerCore};

/// Deferred work (hedged primaries, replication write-throughs) run by
/// the router's helper pool.
type AuxJob = Box<dyn FnOnce() + Send + 'static>;

/// Bound on the router's memory of already-replicated keys; reaching it
/// clears the set (re-warming is idempotent, forgetting is only a little
/// redundant work).
const WARMED_KEYS_CAP: usize = 65_536;

/// Router configuration. Defaults match [`tenet_server::ServerConfig`]'s
/// posture: loopback, small host, every knob overridable by tests.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address, e.g. `127.0.0.1:8090` (port `0` for ephemeral).
    pub addr: String,
    /// HTTP worker addresses to attach (`host:port`). May be empty when
    /// workers are supplied directly via [`Router::bind_with_workers`].
    pub workers: Vec<String>,
    /// Threads serving client connections.
    pub threads: usize,
    /// Accepted connections allowed to wait for a worker thread before
    /// the router sheds load with `503`.
    pub queue_capacity: usize,
    /// Per-client-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout (client side and upstream side).
    pub write_timeout: Duration,
    /// How long a proxied call may wait for the owning shard's answer
    /// (cold `/v1/dse` sweeps compute before writing anything).
    pub upstream_read_timeout: Duration,
    /// Maximum request-body size in bytes (`413` beyond).
    pub max_body: usize,
    /// Maximum header-block size in bytes (`431` beyond).
    pub max_header: usize,
    /// Maximum connections (idle + in flight) the router keeps open to
    /// each HTTP worker. Load-bearing: the worker parks one thread per
    /// keep-alive connection, so this must stay below the worker's
    /// thread count or parked proxy sockets starve fresh connections —
    /// including health probes, which would evict a healthy worker.
    /// Spawners size worker pools at `upstream_connections + 2`.
    pub upstream_connections: usize,
    /// Virtual nodes per worker on the hash ring.
    pub vnodes: usize,
    /// Liveness-probe period; `Duration::ZERO` disables the prober
    /// (failures are then detected only on proxied traffic).
    pub health_interval: Duration,
    /// How many ring owners (the primary plus `R-1` successor replicas)
    /// each cacheable answer is written to. With `R >= 2` a worker death
    /// degrades to a warm hit on the promoted successor instead of a
    /// cold recompute storm; `1` disables replication.
    pub replication: usize,
    /// Latency threshold after which a call to a hedgeable (remote)
    /// primary is raced against the key's first replica — first response
    /// wins, the loser is discarded. `Duration::MAX` disables hedging.
    /// In-process workers are never hedged (the dispatch runs
    /// synchronously on the caller's thread; there is no waiting to
    /// race).
    pub hedge_after: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        RouterConfig {
            addr: "127.0.0.1:8090".into(),
            workers: Vec::new(),
            threads: parallelism.clamp(2, 16),
            queue_capacity: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            upstream_read_timeout: Duration::from_secs(60),
            max_body: 1 << 20,
            max_header: 16 * 1024,
            upstream_connections: 4,
            vnodes: 64,
            health_interval: Duration::from_millis(250),
            replication: 2,
            hedge_after: Duration::from_millis(25),
        }
    }
}

/// Router-level counters (the proxied workers keep their own).
#[derive(Default)]
pub struct RouterStats {
    /// Client connections accepted.
    pub connections: AtomicU64,
    /// Requests fully parsed and handled.
    pub requests: AtomicU64,
    /// Requests completed (any status).
    pub completed: AtomicU64,
    /// Responses with a 2xx status.
    pub status_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub status_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub status_5xx: AtomicU64,
    /// Connections shed with 503 because the backlog was full.
    pub rejected_busy: AtomicU64,
    /// Proxied calls re-routed after a shard failed mid-request.
    pub retries: AtomicU64,
    /// Workers evicted from the ring (probe or forward failure).
    pub rehashes: AtomicU64,
    /// Workers re-admitted after a successful probe.
    pub revivals: AtomicU64,
    /// Hedge requests fired (primary exceeded the latency threshold).
    pub hedges_fired: AtomicU64,
    /// Hedged calls won by the replica rather than the primary.
    pub hedges_won: AtomicU64,
    /// Replica cache entries written through (`POST /v1/warm` accepted).
    pub warm_writes: AtomicU64,
}

impl RouterStats {
    fn record(&self, status: u16) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// One registered worker as the router sees it: a stable ring identity,
/// a liveness belief, routing counters, and the [`Transport`] that
/// reaches it.
pub struct Shard {
    /// Stable index — the identity the hash ring places on its circle.
    pub index: usize,
    transport: Box<dyn Transport>,
    alive: AtomicBool,
    /// Sharded requests answered by this worker — incremented by the
    /// router's proxy path for the *winning* response only (fan-out
    /// stats fetches, probes, hedge losers, and warm writes don't
    /// count), so it is the per-shard hit distribution `servload
    /// --router` records.
    pub routed: AtomicU64,
    /// Forward attempts that failed at the transport layer.
    pub errors: AtomicU64,
}

impl Shard {
    fn new(index: usize, transport: Box<dyn Transport>) -> Shard {
        Shard {
            index,
            transport,
            alive: AtomicBool::new(true),
            routed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Current liveness belief.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn set_alive(&self, alive: bool) {
        self.alive.store(alive, Ordering::Release);
        if !alive {
            self.transport.on_dead();
        }
    }

    /// The transport reaching this worker.
    pub fn transport(&self) -> &dyn Transport {
        &*self.transport
    }
}

/// How one worker is attached to the router.
pub enum WorkerSpec {
    /// A worker process reachable at `host:port` over pooled keep-alive
    /// HTTP.
    Http(String),
    /// An in-process worker core, dispatched to directly — no socket.
    Local(Arc<WorkerCore>),
    /// Any custom [`Transport`] (test doubles, future transports).
    Custom(Box<dyn Transport>),
}

/// State shared by the accept loop, connection workers, and the prober.
pub struct RouterState {
    /// Router configuration (immutable after bind).
    pub config: RouterConfig,
    /// The registered workers, indexed by ring identity.
    pub shards: Vec<Arc<Shard>>,
    ring: RwLock<HashRing>,
    /// Router-level counters.
    pub stats: RouterStats,
    shutdown: Arc<AtomicBool>,
    started: Instant,
    /// Keys already written through to their replica set. Cleared on
    /// every ring-membership change: the successor sets shift, so keys
    /// must re-replicate onto the new arrangement.
    warmed: RwLock<HashSet<u64>>,
    /// Helper pool for hedged primaries and replication write-throughs;
    /// present only while [`Router::run`] is live. Without it, hedging
    /// degrades to synchronous dispatch and replication is skipped.
    aux: Mutex<Option<WorkerPool<AuxJob>>>,
}

impl RouterState {
    /// Evicts a worker from the ring (idempotent); keys it owned rehash
    /// to the survivors — onto the successor replica that already holds
    /// their warm answers when replication is on.
    fn mark_dead(&self, worker: usize) {
        let removed = {
            let mut ring = self.ring.write().expect("ring poisoned");
            ring.remove(worker)
        };
        if removed {
            self.shards[worker].set_alive(false);
            self.stats.rehashes.fetch_add(1, Ordering::Relaxed);
            self.warmed.write().expect("warmed poisoned").clear();
        }
    }

    /// Re-admits a worker after a successful probe (idempotent).
    fn revive(&self, worker: usize) {
        let added = {
            let mut ring = self.ring.write().expect("ring poisoned");
            ring.add(worker)
        };
        if added {
            self.shards[worker].set_alive(true);
            self.stats.revivals.fetch_add(1, Ordering::Relaxed);
            self.warmed.write().expect("warmed poisoned").clear();
        }
    }

    /// Live workers on the ring right now.
    pub fn alive_workers(&self) -> usize {
        self.ring.read().expect("ring poisoned").len()
    }

    /// Hands a job to the helper pool; `false` when the pool is absent
    /// (router not running) or saturated.
    fn submit_aux(&self, job: AuxJob) -> bool {
        let guard = self.aux.lock().expect("aux poisoned");
        match guard.as_ref() {
            Some(pool) => pool.try_submit(job).is_ok(),
            None => false,
        }
    }
}

/// A cheap, clonable remote control for a running [`Router`].
#[derive(Clone)]
pub struct RouterHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain of the router itself. Does NOT cascade to
    /// workers — that is `POST /v1/shutdown`'s job; a supervisor holding
    /// worker handles can drain them directly.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// A router spawned onto its own thread by [`Router::spawn`].
pub struct SpawnedRouter {
    handle: RouterHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedRouter {
    /// The router's remote control.
    pub fn handle(&self) -> RouterHandle {
        self.handle.clone()
    }

    /// The router's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// Requests a drain and waits for the router thread to stop.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("router thread panicked"))?
    }
}

/// A bound (but not yet running) sharding router.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
    addr: SocketAddr,
}

impl Router {
    /// Binds `config.addr`, resolves `config.workers` as HTTP workers,
    /// and builds the ring with every worker initially admitted.
    pub fn bind(config: RouterConfig) -> std::io::Result<Router> {
        Router::bind_with_workers(config, Vec::new())
    }

    /// Binds with an explicit worker topology: `specs` first (in order),
    /// then every `config.workers` address as an HTTP worker. At least
    /// one worker is required between the two.
    pub fn bind_with_workers(
        config: RouterConfig,
        specs: Vec<WorkerSpec>,
    ) -> std::io::Result<Router> {
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        for spec in specs {
            transports.push(match spec {
                WorkerSpec::Http(addr) => Box::new(resolve_http(&addr, &config)?),
                WorkerSpec::Local(core) => Box::new(LocalTransport::new(core)),
                WorkerSpec::Custom(t) => t,
            });
        }
        for addr in &config.workers {
            transports.push(Box::new(resolve_http(addr, &config)?));
        }
        if transports.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one worker",
            ));
        }
        let mut shards = Vec::with_capacity(transports.len());
        let mut ring = HashRing::new(config.vnodes);
        for (index, transport) in transports.into_iter().enumerate() {
            shards.push(Arc::new(Shard::new(index, transport)));
            ring.add(index);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(RouterState {
            config,
            shards,
            ring: RwLock::new(ring),
            stats: RouterStats::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            warmed: RwLock::new(HashSet::new()),
            aux: Mutex::new(None),
        });
        Ok(Router {
            listener,
            state,
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            shutdown: Arc::clone(&self.state.shutdown),
            addr: self.addr,
        }
    }

    /// The shared router state (shard counters, ring view) — read-only
    /// introspection for harnesses and benchmarks.
    pub fn state(&self) -> Arc<RouterState> {
        Arc::clone(&self.state)
    }

    /// Binds and runs on a new thread; bind errors surface here, run
    /// errors at join.
    pub fn spawn(config: RouterConfig) -> std::io::Result<SpawnedRouter> {
        Router::spawn_with_workers(config, Vec::new())
    }

    /// [`Router::bind_with_workers`] plus a thread to run on.
    pub fn spawn_with_workers(
        config: RouterConfig,
        specs: Vec<WorkerSpec>,
    ) -> std::io::Result<SpawnedRouter> {
        let router = Router::bind_with_workers(config, specs)?;
        let handle = router.handle();
        let thread = std::thread::Builder::new()
            .name(format!("tenet-router-{}", handle.addr().port()))
            .spawn(move || router.run())?;
        Ok(SpawnedRouter { handle, thread })
    }

    /// Runs until a graceful shutdown is requested, then drains: the
    /// accept loop stops, admitted connections finish, the prober, the
    /// helper pool, and the connection workers join.
    pub fn run(self) -> std::io::Result<()> {
        let state = Arc::clone(&self.state);
        {
            // The helper pool exists for work the proxy path must not
            // block on: hedged primaries and replica warm writes.
            let mut aux = state.aux.lock().expect("aux poisoned");
            *aux = Some(WorkerPool::new(
                "tenet-router-aux",
                state.config.threads,
                state.config.queue_capacity,
                |job: AuxJob| job(),
            ));
        }
        let prober = if state.config.health_interval > Duration::ZERO {
            let state = Arc::clone(&state);
            Some(
                std::thread::Builder::new()
                    .name("tenet-router-health".into())
                    .spawn(move || health_loop(&state))?,
            )
        } else {
            None
        };
        let pool_state = Arc::clone(&self.state);
        let pool = WorkerPool::new(
            "tenet-route",
            state.config.threads,
            state.config.queue_capacity,
            move |stream: TcpStream| serve_connection(stream, &pool_state),
        );
        let shutdown = Arc::clone(&state.shutdown);
        let outcome = loop {
            if shutdown.load(Ordering::Acquire) {
                break Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    state.stats.connections.fetch_add(1, Ordering::Relaxed);
                    match pool.try_submit(stream) {
                        Ok(()) => {}
                        Err((stream, SubmitError::Busy | SubmitError::ShuttingDown)) => {
                            state.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            shed(stream, &state);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        pool.shutdown();
        // The connection workers are gone; nothing submits aux jobs
        // anymore. Drain what was admitted (late hedge results land in
        // dropped receivers and are discarded).
        let aux = state.aux.lock().expect("aux poisoned").take();
        if let Some(aux) = aux {
            aux.shutdown();
        }
        if let Some(p) = prober {
            let _ = p.join();
        }
        outcome
    }
}

/// Resolves one `host:port` worker spec into its pooled HTTP transport.
fn resolve_http(spec: &str, config: &RouterConfig) -> std::io::Result<HttpTransport> {
    let addr = spec.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("worker address `{spec}` resolves to nothing"),
        )
    })?;
    Ok(HttpTransport::new(addr, config.upstream_connections))
}

/// Periodic worker liveness: a failed probe evicts (rehash), a
/// successful probe of an evicted worker re-admits (the keys that
/// rehashed away migrate back, restoring the original affinity).
fn health_loop(state: &Arc<RouterState>) {
    let interval = state.config.health_interval;
    let probe_timeout = interval.clamp(Duration::from_millis(100), Duration::from_secs(1));
    while !state.shutdown.load(Ordering::Acquire) {
        for shard in &state.shards {
            if state.shutdown.load(Ordering::Acquire) {
                return;
            }
            let on_ring = {
                let ring = state.ring.read().expect("ring poisoned");
                ring.contains(shard.index)
            };
            match (shard.transport.probe(probe_timeout), on_ring) {
                (true, false) => state.revive(shard.index),
                (false, true) => state.mark_dead(shard.index),
                _ => {}
            }
        }
        // Sleep in small slices so a drain is observed promptly.
        let mut slept = Duration::ZERO;
        while slept < interval && !state.shutdown.load(Ordering::Acquire) {
            let step = (interval - slept).min(Duration::from_millis(20));
            std::thread::sleep(step);
            slept += step;
        }
    }
}

fn error_body(kind: &str, message: impl Into<String>) -> Arc<Vec<u8>> {
    Arc::new(
        Json::obj([(
            "error",
            Json::obj([
                ("kind", Json::from(kind)),
                ("message", Json::from(message.into())),
            ]),
        )])
        .to_string()
        .into_bytes(),
    )
}

/// Answers `503` on the accept thread when the pool refused a connection.
fn shed(mut stream: TcpStream, state: &Arc<RouterState>) {
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let body = error_body("busy", "router backlog full; retry later");
    let _ = stream.write_all(&http::encode_response(
        503,
        "application/json",
        &body,
        false,
    ));
}

/// Serves one client connection: parse → handle/proxy → respond,
/// repeating for keep-alive/pipelined requests until close, error, or
/// drain. Mirrors the worker's connection loop so clients cannot tell a
/// router from a single server.
fn serve_connection(mut stream: TcpStream, state: &Arc<RouterState>) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut rb = RequestBuffer::new(state.config.max_header, state.config.max_body);
    loop {
        loop {
            match rb.next_request() {
                Ok(Some(req)) => {
                    let draining = state.shutdown.load(Ordering::Acquire);
                    let keep_alive = req.keep_alive && !draining;
                    state.stats.requests.fetch_add(1, Ordering::Relaxed);
                    let (status, body) = handle(&req, state);
                    state.stats.record(status);
                    let bytes =
                        http::encode_response(status, "application/json", &body, keep_alive);
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is broken (including chunked bodies → 501);
                    // report and hang up, counting the request.
                    let body = error_body("parse", e.message());
                    let _ = stream.write_all(&http::encode_response(
                        e.status(),
                        "application/json",
                        &body,
                        false,
                    ));
                    state.stats.requests.fetch_add(1, Ordering::Relaxed);
                    state.stats.record(e.status());
                    return;
                }
            }
        }
        match rb.fill_from(&mut stream) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

/// Routes one parsed request: local endpoints, fan-outs, or the sharded
/// proxy path.
fn handle(req: &http::Request, state: &Arc<RouterState>) -> (u16, Arc<Vec<u8>>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => healthz(state),
        ("GET", "/v1/stats") => stats_doc(state),
        ("POST", "/v1/shutdown") => cascade_shutdown(state),
        ("POST", "/v1/analyze" | "/v1/dse") => proxy(req, state),
        ("GET" | "POST", _) => (
            404,
            error_body("not_found", format!("no route for {}", req.path)),
        ),
        _ => (
            405,
            error_body("method_not_allowed", format!("method {}", req.method)),
        ),
    }
}

fn healthz(state: &Arc<RouterState>) -> (u16, Arc<Vec<u8>>) {
    let alive = state.alive_workers();
    let body = Json::obj([
        (
            "status",
            Json::from(if alive > 0 { "ok" } else { "degraded" }),
        ),
        ("role", Json::from("router")),
        ("workers", Json::from(state.shards.len())),
        ("alive_workers", Json::from(alive)),
    ])
    .to_string()
    .into_bytes();
    (200, Arc::new(body))
}

/// One dispatch attempt's outcome over the current owner set.
enum Dispatch {
    /// `(winning shard, status, body)` — the response to relay.
    Reply(usize, u16, Arc<Vec<u8>>),
    /// The owner refused with backpressure; shed load, never evict.
    Busy,
    /// These shards failed at the transport layer; evict and re-route.
    Dead(Vec<usize>),
}

/// The sharded proxy path: consistent-hash the canonical request key,
/// forward to the owning worker (hedging against the first replica when
/// the primary is slow), and on transport failure evict + retry on the
/// rehashed owner — which, with replication on, is exactly the successor
/// replica already holding the key's warm answer. Re-sending is safe —
/// analyses are pure functions of the request text, so a retry or a
/// hedge can only recompute the same bytes. 5xx statuses *returned by a
/// worker* are relayed untouched (a deterministic analysis failure is
/// the answer, not a routing problem); a router-originated 5xx means an
/// empty ring or shed load. Pool-slot exhaustion on the owning shard
/// ([`ForwardError::Busy`]) is backpressure, answered `503 busy` without
/// eviction: the shard is healthy, just saturated, and rehashing its
/// keys would throw away its warm cache for nothing.
fn proxy(req: &http::Request, state: &Arc<RouterState>) -> (u16, Arc<Vec<u8>>) {
    let canon = canonical_request(&req.method, &req.path, &req.body);
    let key = canonical_key(&canon);
    let replication = state.config.replication.max(1);
    let mut attempts = 0usize;
    loop {
        let owners = {
            let ring = state.ring.read().expect("ring poisoned");
            ring.owners(key, replication)
        };
        let Some(&primary) = owners.first() else {
            return (
                503,
                error_body("no_workers", "no live workers on the ring; retry later"),
            );
        };
        let hedging = owners.len() >= 2
            && state.config.hedge_after != Duration::MAX
            && state.shards[primary].transport.hedgeable();
        let outcome = if hedging {
            hedged_call(state, &owners, req, &canon)
        } else {
            sync_call(state, primary, req, &canon)
        };
        match outcome {
            Dispatch::Reply(winner, status, bytes) => {
                state.shards[winner].routed.fetch_add(1, Ordering::Relaxed);
                if status == 200 {
                    maybe_replicate(state, &canon, key, &owners, winner, status, &bytes);
                }
                return (status, bytes);
            }
            Dispatch::Busy => {
                state.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                return (
                    503,
                    error_body(
                        "busy",
                        "owning shard's connection slots are busy; retry later",
                    ),
                );
            }
            Dispatch::Dead(failed) => {
                for worker in failed {
                    state.shards[worker].errors.fetch_add(1, Ordering::Relaxed);
                    state.mark_dead(worker);
                }
                state.stats.retries.fetch_add(1, Ordering::Relaxed);
                attempts += 1;
                if attempts > state.shards.len() {
                    return (
                        503,
                        error_body("no_workers", "every worker failed this request"),
                    );
                }
            }
        }
    }
}

/// One synchronous forward to `worker` on the caller's thread — the
/// in-process fast path, and the fallback when the helper pool is
/// saturated. Hands the already-computed canonical form along so a
/// local transport skips re-canonicalizing.
fn sync_call(
    state: &Arc<RouterState>,
    worker: usize,
    req: &http::Request,
    canon: &str,
) -> Dispatch {
    match state.shards[worker].transport.call_keyed(
        &req.method,
        &req.path,
        &req.body,
        canon,
        state.config.upstream_read_timeout,
        state.config.write_timeout,
    ) {
        Ok((status, bytes)) => Dispatch::Reply(worker, status, bytes),
        Err(ForwardError::Busy) => Dispatch::Busy,
        Err(ForwardError::Transport(_)) => Dispatch::Dead(vec![worker]),
    }
}

/// Submits one forward to the helper pool, reporting `(worker, result)`
/// on `tx` when it completes.
#[allow(clippy::type_complexity)]
fn submit_call(
    state: &Arc<RouterState>,
    worker: usize,
    req: &http::Request,
    tx: &mpsc::Sender<(usize, Result<(u16, Arc<Vec<u8>>), ForwardError>)>,
) -> bool {
    let shard = Arc::clone(&state.shards[worker]);
    let tx = tx.clone();
    let method = req.method.clone();
    let path = req.path.clone();
    let body = req.body.clone();
    let read_timeout = state.config.upstream_read_timeout;
    let write_timeout = state.config.write_timeout;
    state.submit_aux(Box::new(move || {
        let res = shard
            .transport
            .call(&method, &path, &body, read_timeout, write_timeout);
        // The receiver may be long gone (the hedge race was already
        // decided); a loser's response is silently discarded here.
        let _ = tx.send((worker, res));
    }))
}

/// The hedged dispatch: fire the primary asynchronously; if it has not
/// answered within `hedge_after`, fire the same request at the first
/// replica and take whichever response lands first. The loser's response
/// is discarded (its channel send hits a dropped receiver), and only the
/// winner is counted as `routed`. Safe because analyses are pure: either
/// replica's bytes are *the* answer.
fn hedged_call(
    state: &Arc<RouterState>,
    owners: &[usize],
    req: &http::Request,
    canon: &str,
) -> Dispatch {
    let (tx, rx) = mpsc::channel();
    if !submit_call(state, owners[0], req, &tx) {
        // Helper pool saturated or absent: degrade to the plain
        // synchronous path — hedging is an optimization, not a
        // correctness requirement.
        return sync_call(state, owners[0], req, canon);
    }
    let mut pending = 1usize;
    let mut first = match rx.recv_timeout(state.config.hedge_after) {
        Ok(msg) => Some(msg),
        Err(_) => {
            state.stats.hedges_fired.fetch_add(1, Ordering::Relaxed);
            if submit_call(state, owners[1], req, &tx) {
                pending += 1;
            }
            None
        }
    };
    // Every submitted job sends exactly once; dropping our sender makes
    // `recv` fail fast if a job is lost to a panic instead of hanging.
    drop(tx);
    let mut busy = false;
    let mut dead = Vec::new();
    while pending > 0 {
        let (worker, res) = match first.take() {
            Some(msg) => msg,
            None => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break,
            },
        };
        pending -= 1;
        match res {
            Ok((status, bytes)) => {
                if worker != owners[0] {
                    state.stats.hedges_won.fetch_add(1, Ordering::Relaxed);
                }
                return Dispatch::Reply(worker, status, bytes);
            }
            Err(ForwardError::Busy) => busy = true,
            Err(ForwardError::Transport(_)) => dead.push(worker),
        }
    }
    if !dead.is_empty() {
        Dispatch::Dead(dead)
    } else if busy {
        Dispatch::Busy
    } else {
        // Unreachable in practice (a submitted job always reports); treat
        // a lost job as a primary transport failure.
        Dispatch::Dead(vec![owners[0]])
    }
}

/// Replication write-through: after the first winning 2xx for a key,
/// asynchronously store the answer in the `R-1` successor replicas'
/// dedup caches (`POST /v1/warm`). The ring's successor property makes
/// this exact: if the primary dies, the rehashed owner *is* the warmed
/// replica, so the victim's keys stay warm instead of recomputing cold.
fn maybe_replicate(
    state: &Arc<RouterState>,
    canon: &str,
    key: u64,
    owners: &[usize],
    winner: usize,
    status: u16,
    bytes: &Arc<Vec<u8>>,
) {
    if state.config.replication < 2 || owners.len() < 2 {
        return;
    }
    let Ok(body_text) = std::str::from_utf8(bytes) else {
        return;
    };
    // Fast path: steady state is "already written through" — answer that
    // from a shared read lock so concurrent request threads never
    // serialize here.
    if state.warmed.read().expect("warmed poisoned").contains(&key) {
        return;
    }
    {
        let mut warmed = state.warmed.write().expect("warmed poisoned");
        if warmed.len() >= WARMED_KEYS_CAP {
            warmed.clear();
        }
        if !warmed.insert(key) {
            return; // already written through under this ring arrangement
        }
    }
    let warm_body = Json::obj([
        ("key", Json::from(canon)),
        ("status", Json::from(u64::from(status))),
        ("body", Json::from(body_text)),
    ])
    .to_string();
    let targets: Vec<usize> = owners.iter().copied().filter(|&w| w != winner).collect();
    let st = Arc::clone(state);
    let submitted = state.submit_aux(Box::new(move || {
        for worker in targets {
            let shard = &st.shards[worker];
            if !shard.is_alive() {
                continue;
            }
            if let Ok((200, _)) = shard.transport.call(
                "POST",
                "/v1/warm",
                warm_body.as_bytes(),
                st.config.write_timeout,
                st.config.write_timeout,
            ) {
                st.stats.warm_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }));
    if !submitted {
        // Couldn't schedule the write-through; forget the key so a later
        // request retries it.
        state.warmed.write().expect("warmed poisoned").remove(&key);
    }
}

/// `GET /v1/stats` fan-out: each live worker's stats document, the
/// additive merge across them, and the router's own counters. A worker
/// whose stats fetch fails at the transport layer is evicted (the fetch
/// *is* a probe); a worker whose pool slots are merely busy stays on the
/// ring and just misses this snapshot. The fetch uses the short write
/// timeout, not the long sweep timeout — stats answer instantly, and a
/// hung shard must not stall the whole fan-out for a minute.
fn stats_doc(state: &Arc<RouterState>) -> (u16, Arc<Vec<u8>>) {
    let mut shards = Vec::with_capacity(state.shards.len());
    let mut docs = Vec::new();
    for shard in &state.shards {
        let (doc, alive) = if shard.is_alive() {
            match shard.transport.call(
                "GET",
                "/v1/stats",
                b"",
                state.config.write_timeout,
                state.config.write_timeout,
            ) {
                Ok((200, bytes)) => {
                    let parsed = std::str::from_utf8(&bytes)
                        .ok()
                        .and_then(|t| Json::parse(t).ok());
                    if parsed.is_none() {
                        state.mark_dead(shard.index);
                    }
                    let alive = parsed.is_some();
                    (parsed, alive)
                }
                Err(ForwardError::Busy) => (None, true),
                Ok(_) | Err(ForwardError::Transport(_)) => {
                    state.mark_dead(shard.index);
                    (None, false)
                }
            }
        } else {
            (None, false)
        };
        shards.push(Json::obj([
            ("worker", Json::from(shard.index)),
            ("addr", Json::from(shard.transport.endpoint())),
            ("transport", Json::from(shard.transport.kind())),
            ("alive", Json::from(alive)),
            ("routed", Json::from(shard.routed.load(Ordering::Relaxed))),
            ("errors", Json::from(shard.errors.load(Ordering::Relaxed))),
            ("stats", doc.clone().unwrap_or(Json::Null)),
        ]));
        if let Some(d) = doc {
            docs.push(d);
        }
    }
    let merged = merge::merge_worker_stats(&docs);
    let s = &state.stats;
    let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
    let body = Json::obj([
        (
            "router",
            Json::obj([
                (
                    "uptime_ms",
                    Json::from(state.started.elapsed().as_millis().min(u64::MAX as u128) as u64),
                ),
                ("workers", Json::from(state.shards.len())),
                ("alive_workers", Json::from(state.alive_workers())),
                (
                    "requests",
                    Json::obj([
                        ("accepted_connections", load(&s.connections)),
                        ("total", load(&s.requests)),
                        ("completed", load(&s.completed)),
                        ("status_2xx", load(&s.status_2xx)),
                        ("status_4xx", load(&s.status_4xx)),
                        ("status_5xx", load(&s.status_5xx)),
                        ("rejected_busy", load(&s.rejected_busy)),
                    ]),
                ),
                ("retries", load(&s.retries)),
                ("rehashes", load(&s.rehashes)),
                ("revivals", load(&s.revivals)),
                (
                    "replication",
                    Json::obj([
                        ("factor", Json::from(state.config.replication.max(1))),
                        ("warm_writes", load(&s.warm_writes)),
                    ]),
                ),
                (
                    "hedges",
                    Json::obj([
                        ("fired", load(&s.hedges_fired)),
                        ("won", load(&s.hedges_won)),
                    ]),
                ),
            ]),
        ),
        ("merged", merged),
        ("shards", Json::Arr(shards)),
    ])
    .to_string()
    .into_bytes();
    (200, Arc::new(body))
}

/// `POST /v1/shutdown` cascade: drain every worker, then the router
/// itself. The drain goes to *every* registered worker — including ones
/// currently marked dead — on the transport's control path (a fresh
/// unpooled connection for HTTP, a drain-exempt dispatch for local): a
/// worker that was transiently evicted (one lost probe, one dropped
/// socket) is still running and must not be leaked past the cascade,
/// and a genuinely dead one just answers "unreachable" after a fast
/// refused connect. Worker outcomes are reported so an operator sees
/// which shards acknowledged.
fn cascade_shutdown(state: &Arc<RouterState>) -> (u16, Arc<Vec<u8>>) {
    let mut workers = Vec::with_capacity(state.shards.len());
    for shard in &state.shards {
        let outcome =
            match shard
                .transport
                .send_control("POST", "/v1/shutdown", state.config.write_timeout)
            {
                Ok((200, _)) => "draining",
                Ok(_) => "error",
                Err(_) => "unreachable",
            };
        workers.push(Json::obj([
            ("worker", Json::from(shard.index)),
            ("status", Json::from(outcome)),
        ]));
    }
    state.shutdown.store(true, Ordering::Release);
    let body = Json::obj([
        ("status", Json::from("draining")),
        ("workers", Json::Arr(workers)),
    ])
    .to_string()
    .into_bytes();
    (200, Arc::new(body))
}
