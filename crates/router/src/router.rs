//! The front tier: accept loop, request proxying over [`Transport`]s,
//! replication, hedging, fan-out endpoints, health probing, and
//! cascaded drain.

use crate::merge;
use crate::ring::HashRing;
use crate::transport::{ForwardError, LocalTransport, Transport};
use crate::upstream::HttpTransport;
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, RwLock, Weak};
use std::time::{Duration, Instant};
use tenet_core::json::Json;
use tenet_core::obs::{self, EdgeTimings, PromBuf, Span, TraceRecord, TraceStore};
use tenet_server::http::{self, RequestBuffer};
use tenet_server::pool::{SubmitError, WorkerPool};
use tenet_server::{canonical_key, canonical_request, WorkerCore};

/// Deferred work (hedged primaries, replication write-throughs) run by
/// the router's helper pool.
type AuxJob = Box<dyn FnOnce() + Send + 'static>;

/// Bound on the router's memory of already-replicated keys. At the cap
/// the *older generation* is dropped ([`WarmedSet`]), so recently
/// repeated keys stay remembered and only stale ones re-replicate
/// (re-warming is idempotent, forgetting is only a little redundant
/// work).
const WARMED_KEYS_CAP: usize = 65_536;

/// Upper bound on warm-ship transfers per ring change: a huge surviving
/// cache must not turn one eviction into an unbounded background storm.
const WARM_SHIP_MAX: usize = 4096;

/// Router configuration. Defaults match [`tenet_server::ServerConfig`]'s
/// posture: loopback, small host, every knob overridable by tests.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address, e.g. `127.0.0.1:8090` (port `0` for ephemeral).
    pub addr: String,
    /// HTTP worker addresses to attach (`host:port`). May be empty when
    /// workers are supplied directly via [`Router::bind_with_workers`].
    pub workers: Vec<String>,
    /// Threads serving client connections.
    pub threads: usize,
    /// Accepted connections allowed to wait for a worker thread before
    /// the router sheds load with `503`.
    pub queue_capacity: usize,
    /// Per-client-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout (client side and upstream side).
    pub write_timeout: Duration,
    /// How long a proxied call may wait for the owning shard's answer
    /// (cold `/v1/dse` sweeps compute before writing anything).
    pub upstream_read_timeout: Duration,
    /// Maximum request-body size in bytes (`413` beyond).
    pub max_body: usize,
    /// Maximum header-block size in bytes (`431` beyond).
    pub max_header: usize,
    /// Maximum connections (idle + in flight) the router keeps open to
    /// each HTTP worker. Load-bearing: the worker parks one thread per
    /// keep-alive connection, so this must stay below the worker's
    /// thread count or parked proxy sockets starve fresh connections —
    /// including health probes, which would evict a healthy worker.
    /// Spawners size worker pools at `upstream_connections + 2`.
    pub upstream_connections: usize,
    /// Virtual nodes per worker on the hash ring.
    pub vnodes: usize,
    /// Liveness-probe period; `Duration::ZERO` disables the prober
    /// (failures are then detected only on proxied traffic).
    pub health_interval: Duration,
    /// How many ring owners (the primary plus `R-1` successor replicas)
    /// each cacheable answer is written to. With `R >= 2` a worker death
    /// degrades to a warm hit on the promoted successor instead of a
    /// cold recompute storm; `1` disables replication.
    pub replication: usize,
    /// Latency threshold after which a call to a hedgeable (remote)
    /// primary is raced against the key's first replica — first response
    /// wins, the loser is discarded. `Duration::MAX` disables hedging.
    /// In-process workers are never hedged (the dispatch runs
    /// synchronously on the caller's thread; there is no waiting to
    /// race).
    pub hedge_after: Duration,
    /// Re-route attempts after the first failed dispatch of a proxied
    /// request (transport failure or a retryable upstream `502`/`503`).
    /// Retries back off with bounded decorrelated jitter and never sleep
    /// past the request's deadline.
    pub max_retries: usize,
    /// Consecutive transport failures that trip a shard's circuit
    /// breaker: the shard is evicted from the ring (the breaker's *open*
    /// state) until a health probe succeeds (*half-open* → closed).
    /// `u32::MAX` effectively disables the breaker — failures then evict
    /// nothing and the retry budget alone decides the request's fate.
    pub breaker_threshold: u32,
    /// Per-client admission rate (requests/second, token bucket keyed on
    /// `X-Tenet-Client` or the peer IP) applied to proxied data paths
    /// before they reach the backlog. `0` disables admission control.
    pub admission_rps: u64,
    /// Token-bucket burst capacity; `0` means `2 × admission_rps`.
    pub admission_burst: u64,
    /// Capacity of the router's trace rings (recent + slow); `0`
    /// disables router-tier request tracing entirely.
    pub trace_buffer: usize,
    /// Requests at or above this router-observed latency also enter the
    /// slow-trace ring served by `GET /v1/trace/slow`.
    pub slow_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        RouterConfig {
            addr: "127.0.0.1:8090".into(),
            workers: Vec::new(),
            threads: parallelism.clamp(2, 16),
            queue_capacity: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            upstream_read_timeout: Duration::from_secs(60),
            max_body: 1 << 20,
            max_header: 16 * 1024,
            upstream_connections: 4,
            vnodes: 64,
            health_interval: Duration::from_millis(250),
            replication: 2,
            hedge_after: Duration::from_millis(25),
            max_retries: 2,
            breaker_threshold: 2,
            admission_rps: 0,
            admission_burst: 0,
            trace_buffer: 256,
            slow_ms: 100,
        }
    }
}

/// Router-level counters (the proxied workers keep their own).
#[derive(Default)]
pub struct RouterStats {
    /// Client connections accepted.
    pub connections: AtomicU64,
    /// Requests fully parsed and handled.
    pub requests: AtomicU64,
    /// Requests completed (any status).
    pub completed: AtomicU64,
    /// Responses with a 2xx status.
    pub status_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub status_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub status_5xx: AtomicU64,
    /// Connections shed with 503 because the backlog was full.
    pub rejected_busy: AtomicU64,
    /// Proxied calls re-routed after a shard failed mid-request.
    pub retries: AtomicU64,
    /// Workers evicted from the ring (probe or forward failure).
    pub rehashes: AtomicU64,
    /// Workers re-admitted after a successful probe.
    pub revivals: AtomicU64,
    /// Hedge requests fired (primary exceeded the latency threshold).
    pub hedges_fired: AtomicU64,
    /// Hedged calls won by the replica rather than the primary.
    pub hedges_won: AtomicU64,
    /// Replica cache entries written through (`POST /v1/warm` accepted).
    pub warm_writes: AtomicU64,
    /// Cached answers shipped to keys' new owners after an eviction
    /// through the same `/v1/warm` write-through path.
    pub warm_shipped: AtomicU64,
    /// Warm-ship transfers refused or unreachable at the target.
    pub warm_ship_failures: AtomicU64,
    /// Circuit breakers tripped: a shard evicted because it failed
    /// [`RouterConfig::breaker_threshold`] consecutive forwards.
    pub breaker_trips: AtomicU64,
    /// Requests answered `504` because their deadline expired at the
    /// router (before or between dispatch attempts).
    pub deadline_exceeded: AtomicU64,
    /// Requests answered `429` by per-client admission control.
    pub admission_rejects: AtomicU64,
}

impl RouterStats {
    fn record(&self, status: u16) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// The router's memory of keys already written through to their replica
/// set, bounded by generational rotation instead of a wholesale clear:
/// inserts land in the young generation, and when it reaches half
/// [`WARMED_KEYS_CAP`] the old generation is dropped and the young one
/// takes its place. A key re-inserted at any sustained rate is promoted
/// young before it ages out, so its write-through memory survives the
/// cap — the previous behavior (clear everything at the cap) forgot
/// *every* hot key at once and re-replicated the entire working set.
#[derive(Default)]
struct WarmedSet {
    young: HashSet<u64>,
    old: HashSet<u64>,
}

impl WarmedSet {
    /// Whether the key is remembered in either generation.
    fn contains(&self, key: u64) -> bool {
        self.young.contains(&key) || self.old.contains(&key)
    }

    /// Remembers a key, returning `true` when it was not already known.
    /// A key found in the old generation is promoted young (and reports
    /// already-known), so repeated keys never age out while hot.
    fn insert(&mut self, key: u64) -> bool {
        if self.young.contains(&key) {
            return false;
        }
        let known = self.old.remove(&key);
        if self.young.len() >= WARMED_KEYS_CAP / 2 {
            self.old = std::mem::take(&mut self.young);
        }
        self.young.insert(key);
        !known
    }

    fn remove(&mut self, key: u64) {
        self.young.remove(&key);
        self.old.remove(&key);
    }

    fn clear(&mut self) {
        self.young.clear();
        self.old.clear();
    }
}

/// One registered worker as the router sees it: a stable ring identity,
/// a liveness belief, routing counters, and the [`Transport`] that
/// reaches it.
pub struct Shard {
    /// Stable index — the identity the hash ring places on its circle.
    pub index: usize,
    transport: Box<dyn Transport>,
    alive: AtomicBool,
    /// Sharded requests answered by this worker — incremented by the
    /// router's proxy path for the *winning* response only (fan-out
    /// stats fetches, probes, hedge losers, and warm writes don't
    /// count), so it is the per-shard hit distribution `servload
    /// --router` records.
    pub routed: AtomicU64,
    /// Forward attempts that failed at the transport layer.
    pub errors: AtomicU64,
    /// The circuit breaker's failure streak: consecutive transport
    /// failures with no intervening success. Reaching
    /// [`RouterConfig::breaker_threshold`] trips the breaker (eviction).
    consecutive_failures: AtomicU32,
    /// Set when the worker acknowledged a drain (shutdown cascade); the
    /// prober skips draining shards instead of burning probe sockets on
    /// a worker that is leaving on purpose.
    draining: AtomicBool,
}

impl Shard {
    fn new(index: usize, transport: Box<dyn Transport>) -> Shard {
        Shard {
            index,
            transport,
            alive: AtomicBool::new(true),
            routed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            consecutive_failures: AtomicU32::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// Current liveness belief.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Whether this worker acknowledged a drain request.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn set_alive(&self, alive: bool) {
        self.alive.store(alive, Ordering::Release);
        if !alive {
            self.transport.on_dead();
        }
    }

    /// The transport reaching this worker.
    pub fn transport(&self) -> &dyn Transport {
        &*self.transport
    }
}

/// How one worker is attached to the router.
pub enum WorkerSpec {
    /// A worker process reachable at `host:port` over pooled keep-alive
    /// HTTP.
    Http(String),
    /// An in-process worker core, dispatched to directly — no socket.
    Local(Arc<WorkerCore>),
    /// Any custom [`Transport`] (test doubles, future transports).
    Custom(Box<dyn Transport>),
}

/// State shared by the accept loop, connection workers, and the prober.
pub struct RouterState {
    /// Router configuration (immutable after bind).
    pub config: RouterConfig,
    /// The registered workers, indexed by ring identity.
    pub shards: Vec<Arc<Shard>>,
    ring: RwLock<HashRing>,
    /// Router-level counters.
    pub stats: RouterStats,
    shutdown: Arc<AtomicBool>,
    started: Instant,
    /// Keys already written through to their replica set. Cleared on
    /// every ring-membership change: the successor sets shift, so keys
    /// must re-replicate onto the new arrangement.
    warmed: RwLock<WarmedSet>,
    /// A weak self-reference, set right after construction, so
    /// ring-change handlers deep in `&self` methods can hand the whole
    /// state to a background warm-ship job.
    self_ref: OnceLock<Weak<RouterState>>,
    /// Helper pool for hedged primaries and replication write-throughs;
    /// present only while [`Router::run`] is live. Without it, hedging
    /// degrades to synchronous dispatch and replication is skipped.
    aux: Mutex<Option<WorkerPool<AuxJob>>>,
    /// Per-client token buckets: `client key -> (tokens, last refill)`.
    admission: Mutex<HashMap<String, (f64, Instant)>>,
    /// The router tier's trace rings, served by `GET /v1/trace/...`.
    pub traces: TraceStore,
}

impl RouterState {
    /// Evicts a worker from the ring (idempotent); keys it owned rehash
    /// to the survivors — onto the successor replica that already holds
    /// their warm answers when replication is on. Returns whether this
    /// call performed the eviction (so a breaker trip is counted once).
    fn mark_dead(&self, worker: usize) -> bool {
        let removed = {
            let mut ring = self.ring.write().expect("ring poisoned");
            ring.remove(worker)
        };
        if removed {
            self.shards[worker].set_alive(false);
            self.stats.rehashes.fetch_add(1, Ordering::Relaxed);
            self.warmed.write().expect("warmed poisoned").clear();
            self.schedule_warm_ship();
        }
        removed
    }

    /// Re-admits a worker after a successful probe (idempotent). This is
    /// the breaker's half-open → closed transition: the probe was the
    /// trial request, so the failure streak resets.
    fn revive(&self, worker: usize) {
        let added = {
            let mut ring = self.ring.write().expect("ring poisoned");
            ring.add(worker)
        };
        if added {
            let shard = &self.shards[worker];
            shard.alive.store(true, Ordering::Release);
            shard.consecutive_failures.store(0, Ordering::Relaxed);
            self.stats.revivals.fetch_add(1, Ordering::Relaxed);
            // No eager shipping here, deliberately: the revived shard
            // just came back from the dead, and greeting it with a burst
            // of warm writes is a fine way to re-kill it. Clearing the
            // `warmed` set is enough — every moved key's next winning
            // 200 re-replicates to the revived owner through the
            // ordinary write-through, so it re-warms at traffic pace.
            self.warmed.write().expect("warmed poisoned").clear();
        }
    }

    /// Schedules a background warm-ship pass onto the helper pool after
    /// an eviction. Best-effort: with the pool absent or
    /// saturated the pass is skipped, and moved keys re-warm lazily
    /// through the ordinary replication write-through instead.
    fn schedule_warm_ship(&self) {
        let Some(state) = self.self_ref.get().and_then(Weak::upgrade) else {
            return;
        };
        let _ = self.submit_aux(Box::new(move || warm_ship(&state)));
    }

    /// Records one transport failure against a shard's breaker; at the
    /// threshold the breaker trips: the shard is evicted (open) until a
    /// probe revives it (half-open → closed). Returns whether this call
    /// tripped the breaker, so the proxy path can put a `breaker_trip`
    /// event on the request's trace timeline.
    fn note_failure(&self, worker: usize) -> bool {
        let shard = &self.shards[worker];
        shard.errors.fetch_add(1, Ordering::Relaxed);
        let streak = shard.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.config.breaker_threshold && self.mark_dead(worker) {
            self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Live workers on the ring right now.
    pub fn alive_workers(&self) -> usize {
        self.ring.read().expect("ring poisoned").len()
    }

    /// Hands a job to the helper pool; `false` when the pool is absent
    /// (router not running) or saturated.
    fn submit_aux(&self, job: AuxJob) -> bool {
        let guard = self.aux.lock().expect("aux poisoned");
        match guard.as_ref() {
            Some(pool) => pool.try_submit(job).is_ok(),
            None => false,
        }
    }
}

/// A cheap, clonable remote control for a running [`Router`].
#[derive(Clone)]
pub struct RouterHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain of the router itself. Does NOT cascade to
    /// workers — that is `POST /v1/shutdown`'s job; a supervisor holding
    /// worker handles can drain them directly.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// A router spawned onto its own thread by [`Router::spawn`].
pub struct SpawnedRouter {
    handle: RouterHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedRouter {
    /// The router's remote control.
    pub fn handle(&self) -> RouterHandle {
        self.handle.clone()
    }

    /// The router's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// Requests a drain and waits for the router thread to stop.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("router thread panicked"))?
    }
}

/// A bound (but not yet running) sharding router.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
    addr: SocketAddr,
}

impl Router {
    /// Binds `config.addr`, resolves `config.workers` as HTTP workers,
    /// and builds the ring with every worker initially admitted.
    pub fn bind(config: RouterConfig) -> std::io::Result<Router> {
        Router::bind_with_workers(config, Vec::new())
    }

    /// Binds with an explicit worker topology: `specs` first (in order),
    /// then every `config.workers` address as an HTTP worker. At least
    /// one worker is required between the two.
    pub fn bind_with_workers(
        config: RouterConfig,
        specs: Vec<WorkerSpec>,
    ) -> std::io::Result<Router> {
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        for spec in specs {
            transports.push(match spec {
                WorkerSpec::Http(addr) => Box::new(resolve_http(&addr, &config)?),
                WorkerSpec::Local(core) => Box::new(LocalTransport::new(core)),
                WorkerSpec::Custom(t) => t,
            });
        }
        for addr in &config.workers {
            transports.push(Box::new(resolve_http(addr, &config)?));
        }
        if transports.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one worker",
            ));
        }
        let mut shards = Vec::with_capacity(transports.len());
        let mut ring = HashRing::new(config.vnodes);
        for (index, transport) in transports.into_iter().enumerate() {
            shards.push(Arc::new(Shard::new(index, transport)));
            ring.add(index);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let traces = TraceStore::new(config.trace_buffer, config.slow_ms.saturating_mul(1_000));
        let state = Arc::new(RouterState {
            config,
            shards,
            ring: RwLock::new(ring),
            stats: RouterStats::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            warmed: RwLock::new(WarmedSet::default()),
            self_ref: OnceLock::new(),
            aux: Mutex::new(None),
            admission: Mutex::new(HashMap::new()),
            traces,
        });
        let _ = state.self_ref.set(Arc::downgrade(&state));
        Ok(Router {
            listener,
            state,
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            shutdown: Arc::clone(&self.state.shutdown),
            addr: self.addr,
        }
    }

    /// The shared router state (shard counters, ring view) — read-only
    /// introspection for harnesses and benchmarks.
    pub fn state(&self) -> Arc<RouterState> {
        Arc::clone(&self.state)
    }

    /// Binds and runs on a new thread; bind errors surface here, run
    /// errors at join.
    pub fn spawn(config: RouterConfig) -> std::io::Result<SpawnedRouter> {
        Router::spawn_with_workers(config, Vec::new())
    }

    /// [`Router::bind_with_workers`] plus a thread to run on.
    pub fn spawn_with_workers(
        config: RouterConfig,
        specs: Vec<WorkerSpec>,
    ) -> std::io::Result<SpawnedRouter> {
        let router = Router::bind_with_workers(config, specs)?;
        let handle = router.handle();
        let thread = std::thread::Builder::new()
            .name(format!("tenet-router-{}", handle.addr().port()))
            .spawn(move || router.run())?;
        Ok(SpawnedRouter { handle, thread })
    }

    /// Runs until a graceful shutdown is requested, then drains: the
    /// accept loop stops, admitted connections finish, the prober, the
    /// helper pool, and the connection workers join.
    pub fn run(self) -> std::io::Result<()> {
        let state = Arc::clone(&self.state);
        {
            // The helper pool exists for work the proxy path must not
            // block on: hedged primaries and replica warm writes.
            let mut aux = state.aux.lock().expect("aux poisoned");
            *aux = Some(WorkerPool::new(
                "tenet-router-aux",
                state.config.threads,
                state.config.queue_capacity,
                |job: AuxJob| job(),
            ));
        }
        let prober = if state.config.health_interval > Duration::ZERO {
            let state = Arc::clone(&state);
            Some(
                std::thread::Builder::new()
                    .name("tenet-router-health".into())
                    .spawn(move || health_loop(&state))?,
            )
        } else {
            None
        };
        let pool_state = Arc::clone(&self.state);
        let pool = WorkerPool::new(
            "tenet-route",
            state.config.threads,
            state.config.queue_capacity,
            move |(queued_at, stream): (Instant, TcpStream)| {
                serve_connection(stream, queued_at, &pool_state)
            },
        );
        let shutdown = Arc::clone(&state.shutdown);
        let outcome = loop {
            if shutdown.load(Ordering::Acquire) {
                break Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    state.stats.connections.fetch_add(1, Ordering::Relaxed);
                    match pool.try_submit((Instant::now(), stream)) {
                        Ok(()) => {}
                        Err(((_, stream), SubmitError::Busy | SubmitError::ShuttingDown)) => {
                            state.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            shed(stream, &state);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        pool.shutdown();
        // The connection workers are gone; nothing submits aux jobs
        // anymore. Drain what was admitted (late hedge results land in
        // dropped receivers and are discarded).
        let aux = state.aux.lock().expect("aux poisoned").take();
        if let Some(aux) = aux {
            aux.shutdown();
        }
        if let Some(p) = prober {
            let _ = p.join();
        }
        outcome
    }
}

/// Resolves one `host:port` worker spec into its pooled HTTP transport.
fn resolve_http(spec: &str, config: &RouterConfig) -> std::io::Result<HttpTransport> {
    let addr = spec.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("worker address `{spec}` resolves to nothing"),
        )
    })?;
    Ok(HttpTransport::new(addr, config.upstream_connections))
}

/// Periodic worker liveness: a failed probe evicts (rehash), a
/// successful probe of an evicted worker re-admits (the keys that
/// rehashed away migrate back, restoring the original affinity).
/// Draining shards are skipped — a worker that acknowledged a drain is
/// leaving on purpose, and probing it wastes sockets. Each cycle's sleep
/// carries ±20% deterministic jitter so a fleet of routers probing the
/// same workers does not synchronize into probe bursts.
fn health_loop(state: &Arc<RouterState>) {
    let interval = state.config.health_interval;
    let probe_timeout = interval.clamp(Duration::from_millis(100), Duration::from_secs(1));
    let mut rng = 0x7e57_ab1e_5eed_c0de_u64;
    while !state.shutdown.load(Ordering::Acquire) {
        for shard in &state.shards {
            if state.shutdown.load(Ordering::Acquire) {
                return;
            }
            if shard.is_draining() {
                continue;
            }
            let on_ring = {
                let ring = state.ring.read().expect("ring poisoned");
                ring.contains(shard.index)
            };
            match (shard.transport.probe(probe_timeout), on_ring) {
                (true, false) => state.revive(shard.index),
                (false, true) => {
                    state.mark_dead(shard.index);
                }
                _ => {}
            }
        }
        // Sleep in small slices so a drain is observed promptly.
        rng = mix(rng);
        let jittered = interval * (80 + (rng % 41) as u32) / 100;
        let mut slept = Duration::ZERO;
        while slept < jittered && !state.shutdown.load(Ordering::Acquire) {
            let step = (jittered - slept).min(Duration::from_millis(20));
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// The splitmix64 finalizer: deterministic jitter and backoff draws
/// without wall-clock entropy (reproducible under test).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A leading edge-phase span (queue wait, parse time) for the router's
/// trace timeline.
fn edge_span(name: &str, start_us: u64, dur_us: u64) -> Span {
    Span {
        name: name.into(),
        start_us,
        dur_us,
        detail: String::new(),
        phase: true,
    }
}

fn error_body(kind: &str, message: impl Into<String>) -> Arc<Vec<u8>> {
    Arc::new(
        Json::obj([(
            "error",
            Json::obj([
                ("kind", Json::from(kind)),
                ("message", Json::from(message.into())),
            ]),
        )])
        .to_string()
        .into_bytes(),
    )
}

/// Answers `503` on the accept thread when the pool refused a connection.
fn shed(mut stream: TcpStream, state: &Arc<RouterState>) {
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let body = error_body("busy", "router backlog full; retry later");
    let _ = stream.write_all(&http::encode_response_with(
        503,
        "application/json",
        &body,
        false,
        &[("Retry-After", "1".to_string())],
    ));
}

/// Resolves a request's trace id at the router edge, mirroring the
/// worker's policy: a client-sent id is accepted (a garbled one degrades
/// to a fresh id), and header-less requests are not traced at all —
/// span recording is opt-in per request, so the untraced hot path pays
/// nothing (always-on recording measurably cost ~9% router throughput).
fn resolve_trace_id(req: &http::Request) -> Option<u64> {
    req.trace_id.as_deref().map(|text| {
        obs::TraceId::parse(text)
            .unwrap_or_else(obs::TraceId::generate)
            .0
    })
}

/// Serves one client connection: parse → handle/proxy → respond,
/// repeating for keep-alive/pipelined requests until close, error, or
/// drain. Mirrors the worker's connection loop so clients cannot tell a
/// router from a single server. `queued_at` is when the accept loop
/// admitted the connection; the gap until the first parsed request is
/// its traced queue phase.
fn serve_connection(mut stream: TcpStream, queued_at: Instant, state: &Arc<RouterState>) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let _ = stream.set_nodelay(true);
    // The admission fallback key when the client sends no
    // `X-Tenet-Client`: one bucket per peer IP.
    let peer = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".into());
    let mut rb = RequestBuffer::new(state.config.max_header, state.config.max_body);
    let mut queue_us = queued_at.elapsed().as_micros() as u64;
    let mut parse_acc = Duration::ZERO;
    loop {
        loop {
            let t_parse = Instant::now();
            let parsed = rb.next_request();
            parse_acc += t_parse.elapsed();
            match parsed {
                Ok(Some(req)) => {
                    let draining = state.shutdown.load(Ordering::Acquire);
                    let keep_alive = req.keep_alive && !draining;
                    state.stats.requests.fetch_add(1, Ordering::Relaxed);
                    // The deadline is anchored at parse time: routing,
                    // queueing, and compute debit it from here on.
                    let deadline = req
                        .deadline_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms));
                    let edge = EdgeTimings {
                        queue_us: std::mem::take(&mut queue_us),
                        parse_us: parse_acc.as_micros() as u64,
                    };
                    parse_acc = Duration::ZERO;
                    let trace_id = resolve_trace_id(&req);
                    // Observability endpoints are never traced: scraping
                    // metrics or fetching a trace must not spam the ring.
                    let obs_path = req.method == "GET"
                        && (req.path == "/metrics" || req.path.starts_with("/v1/trace/"));
                    let tracing = !obs_path && trace_id.is_some() && state.traces.enabled();
                    let scope = tracing.then(obs::begin);
                    let t0 = Instant::now();
                    let (status, body, retry_after) =
                        handle(&req, state, &peer, deadline, trace_id);
                    state.stats.record(status);
                    let record = match (scope, trace_id) {
                        (Some(scope), Some(id)) => {
                            let handled_us = t0.elapsed().as_micros() as u64;
                            let mut spans = scope.finish();
                            // Whatever the proxy path did not attribute to
                            // upstream waits or backoff sleeps is the
                            // router's own work (routing, framing).
                            let attributed: u64 =
                                spans.iter().filter(|s| s.phase).map(|s| s.dur_us).sum();
                            let residual = handled_us.saturating_sub(attributed);
                            if residual > 0 {
                                spans.push(Span {
                                    name: "router".into(),
                                    start_us: 0,
                                    dur_us: residual,
                                    detail: String::new(),
                                    phase: true,
                                });
                            }
                            let off = edge.queue_us + edge.parse_us;
                            if off > 0 {
                                for s in &mut spans {
                                    s.start_us += off;
                                }
                                if edge.parse_us > 0 {
                                    spans.insert(
                                        0,
                                        edge_span("parse", edge.queue_us, edge.parse_us),
                                    );
                                }
                                if edge.queue_us > 0 {
                                    spans.insert(0, edge_span("queue", 0, edge.queue_us));
                                }
                            }
                            Some(state.traces.record(TraceRecord {
                                id,
                                tier: "router",
                                endpoint: format!("{} {}", req.method, req.path),
                                status,
                                total_us: off + handled_us,
                                spans,
                            }))
                        }
                        _ => None,
                    };
                    let content_type = if req.path == "/metrics" {
                        "text/plain; version=0.0.4"
                    } else {
                        "application/json"
                    };
                    let mut extra: Vec<(&str, String)> = Vec::new();
                    if let Some(secs) = retry_after {
                        extra.push(("Retry-After", secs.to_string()));
                    }
                    if let Some(rec) = &record {
                        extra.push(("X-Tenet-Trace-Id", obs::TraceId(rec.id).to_string()));
                        let timing = rec.server_timing();
                        if !timing.is_empty() {
                            extra.push(("X-Tenet-Server-Timing", timing));
                        }
                    }
                    let bytes = if extra.is_empty() {
                        http::encode_response(status, content_type, &body, keep_alive)
                    } else {
                        http::encode_response_with(status, content_type, &body, keep_alive, &extra)
                    };
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is broken (including chunked bodies → 501);
                    // report and hang up, counting the request.
                    let body = error_body("parse", e.message());
                    let _ = stream.write_all(&http::encode_response(
                        e.status(),
                        "application/json",
                        &body,
                        false,
                    ));
                    state.stats.requests.fetch_add(1, Ordering::Relaxed);
                    state.stats.record(e.status());
                    return;
                }
            }
        }
        match rb.fill_from(&mut stream) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

/// Routes one parsed request: local endpoints, fan-outs, or the sharded
/// proxy path. The third element of the return is an optional
/// `Retry-After` value (seconds) for shed/throttle responses.
fn handle(
    req: &http::Request,
    state: &Arc<RouterState>,
    peer: &str,
    deadline: Option<Instant>,
    trace_id: Option<u64>,
) -> (u16, Arc<Vec<u8>>, Option<u64>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => plain(healthz(state)),
        ("GET", "/v1/stats") => plain(stats_doc(state)),
        ("GET", "/metrics") => plain(metrics_doc(state)),
        ("GET", p) if p.starts_with("/v1/trace/") => plain(trace_doc(state, p)),
        ("POST", "/v1/shutdown") => plain(cascade_shutdown(state)),
        ("POST", "/v1/analyze" | "/v1/dse") => {
            if let Some(secs) = admission_reject(req, state, peer) {
                state
                    .stats
                    .admission_rejects
                    .fetch_add(1, Ordering::Relaxed);
                return (
                    429,
                    error_body("rate_limited", "per-client admission rate exceeded"),
                    Some(secs),
                );
            }
            proxy(req, state, deadline, trace_id)
        }
        ("GET" | "POST", _) => (
            404,
            error_body("not_found", format!("no route for {}", req.path)),
            None,
        ),
        _ => (
            405,
            error_body("method_not_allowed", format!("method {}", req.method)),
            None,
        ),
    }
}

/// Adapts a plain `(status, body)` endpoint to [`handle`]'s triple.
fn plain((status, body): (u16, Arc<Vec<u8>>)) -> (u16, Arc<Vec<u8>>, Option<u64>) {
    (status, body, None)
}

/// Token-bucket admission on the proxied data paths, keyed on
/// `X-Tenet-Client` (falling back to the peer IP). Returns
/// `Some(retry_after_secs)` when the client is over its rate — the
/// request is refused `429` *before* it can occupy a backlog slot, so a
/// single bursting tenant throttles itself instead of pushing everyone
/// else into `503`s. Disabled (always admits) when
/// [`RouterConfig::admission_rps`] is `0`.
fn admission_reject(req: &http::Request, state: &Arc<RouterState>, peer: &str) -> Option<u64> {
    let rps = state.config.admission_rps;
    if rps == 0 {
        return None;
    }
    let burst = match state.config.admission_burst {
        0 => rps.saturating_mul(2),
        b => b,
    }
    .max(1) as f64;
    let key = req.client.clone().unwrap_or_else(|| peer.to_string());
    let now = Instant::now();
    let mut buckets = state.admission.lock().expect("admission poisoned");
    // Bound the map: a scan of spoofed client names must not grow it
    // forever. Clearing refills every bucket — brief over-admission, no
    // lost legitimate state.
    if buckets.len() >= 4096 && !buckets.contains_key(&key) {
        buckets.clear();
    }
    let (tokens, last) = buckets.entry(key).or_insert((burst, now));
    *tokens = (*tokens + now.duration_since(*last).as_secs_f64() * rps as f64).min(burst);
    *last = now;
    if *tokens >= 1.0 {
        *tokens -= 1.0;
        None
    } else {
        let secs = ((1.0 - *tokens) / rps as f64).ceil() as u64;
        Some(secs.max(1))
    }
}

fn healthz(state: &Arc<RouterState>) -> (u16, Arc<Vec<u8>>) {
    let alive = state.alive_workers();
    let body = Json::obj([
        (
            "status",
            Json::from(if alive > 0 { "ok" } else { "degraded" }),
        ),
        ("role", Json::from("router")),
        ("workers", Json::from(state.shards.len())),
        ("alive_workers", Json::from(alive)),
    ])
    .to_string()
    .into_bytes();
    (200, Arc::new(body))
}

/// One dispatch attempt's outcome over the current owner set.
enum Dispatch {
    /// `(winning shard, status, body)` — the response to relay.
    Reply(usize, u16, Arc<Vec<u8>>),
    /// The owner refused with backpressure; shed load, never evict.
    Busy,
    /// These shards failed at the transport layer; count against their
    /// breakers and re-route.
    Dead(Vec<usize>),
    /// The request's deadline expired while waiting; answer `504`
    /// without blaming (or evicting) any shard — a timeout is the
    /// *request's* failure, not proof the worker is dead.
    DeadlineExpired,
}

/// The sharded proxy path: consistent-hash the canonical request key,
/// forward to the owning worker (hedging against the first replica when
/// the primary is slow), and on transport failure count the shard's
/// circuit breaker and retry — at the breaker threshold the shard is
/// evicted, so the retry lands on the rehashed owner, which with
/// replication on is exactly the successor replica already holding the
/// key's warm answer. Re-sending is safe — analyses are pure functions
/// of the request text, so a retry or a hedge can only recompute the
/// same bytes. Retries are bounded ([`RouterConfig::max_retries`]) and
/// back off with decorrelated jitter, never sleeping past the request's
/// deadline; an expired deadline answers `504` between attempts without
/// evicting anyone. Upstream `502`/`503` answers are treated as
/// retryable soft failures (a transient shed or an injected burst) and
/// relayed only when the retry budget is spent; other worker statuses —
/// including `500`/`504` — are relayed untouched (a deterministic
/// analysis failure or a worker-side deadline verdict *is* the answer).
/// Pool-slot exhaustion on the owning shard ([`ForwardError::Busy`]) is
/// backpressure, answered `503 busy` without eviction: the shard is
/// healthy, just saturated, and rehashing its keys would throw away its
/// warm cache for nothing.
fn proxy(
    req: &http::Request,
    state: &Arc<RouterState>,
    deadline: Option<Instant>,
    trace_id: Option<u64>,
) -> (u16, Arc<Vec<u8>>, Option<u64>) {
    let canon = canonical_request(&req.method, &req.path, &req.body);
    let key = canonical_key(&canon);
    let replication = state.config.replication.max(1);
    let max_retries = state.config.max_retries;
    let mut retries = 0usize;
    let mut rng = key;
    let mut backoff_us = 2_000u64;
    loop {
        if expired(deadline) {
            state
                .stats
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            return (
                504,
                error_body(
                    "deadline_exceeded",
                    "request deadline expired before a worker answered",
                ),
                None,
            );
        }
        let owners = {
            let ring = state.ring.read().expect("ring poisoned");
            ring.owners(key, replication)
        };
        let Some(&primary) = owners.first() else {
            return (
                503,
                error_body("no_workers", "no live workers on the ring; retry later"),
                Some(1),
            );
        };
        let hedging = owners.len() >= 2
            && state.config.hedge_after != Duration::MAX
            && state.shards[primary].transport.hedgeable();
        let t_attempt = Instant::now();
        let outcome = if hedging {
            hedged_call(state, &owners, req, &canon, deadline, trace_id)
        } else {
            sync_call(state, primary, req, &canon, deadline, trace_id)
        };
        if obs::is_active() {
            obs::add_span(
                "upstream",
                t_attempt,
                t_attempt.elapsed(),
                format!("attempt={retries} worker={primary}"),
            );
        }
        match outcome {
            Dispatch::Reply(winner, status, bytes) => {
                state.shards[winner]
                    .consecutive_failures
                    .store(0, Ordering::Relaxed);
                if matches!(status, 502 | 503) && retries < max_retries {
                    // A soft upstream failure: back off and re-dispatch
                    // (the shard answered, so its breaker is unharmed
                    // and it keeps its keys).
                    state.stats.retries.fetch_add(1, Ordering::Relaxed);
                    if obs::is_active() {
                        obs::add_event("retry", format!("status={status} worker={winner}"));
                    }
                    retries += 1;
                    backoff_sleep(&mut rng, &mut backoff_us, deadline);
                    continue;
                }
                state.shards[winner].routed.fetch_add(1, Ordering::Relaxed);
                if status == 200 {
                    maybe_replicate(
                        state, &canon, key, &owners, winner, status, &bytes, trace_id,
                    );
                }
                let retry_after = matches!(status, 502 | 503).then_some(1);
                return (status, bytes, retry_after);
            }
            Dispatch::Busy => {
                state.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                return (
                    503,
                    error_body(
                        "busy",
                        "owning shard's connection slots are busy; retry later",
                    ),
                    Some(1),
                );
            }
            Dispatch::DeadlineExpired => {
                state
                    .stats
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                return (
                    504,
                    error_body(
                        "deadline_exceeded",
                        "request deadline expired while waiting for the owning shard",
                    ),
                    None,
                );
            }
            Dispatch::Dead(failed) => {
                for worker in failed {
                    let tripped = state.note_failure(worker);
                    if obs::is_active() {
                        if tripped {
                            let streak = state.config.breaker_threshold;
                            obs::add_event(
                                "breaker_trip",
                                format!("worker={worker} streak={streak} state=open"),
                            );
                        } else {
                            obs::add_event("retry", format!("transport_failure worker={worker}"));
                        }
                    }
                }
                state.stats.retries.fetch_add(1, Ordering::Relaxed);
                retries += 1;
                if retries > max_retries {
                    return (
                        503,
                        error_body("no_workers", "retry budget exhausted; every attempt failed"),
                        Some(1),
                    );
                }
                backoff_sleep(&mut rng, &mut backoff_us, deadline);
            }
        }
    }
}

/// Whether a deadline has already passed.
fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// One decorrelated-jitter backoff sleep: uniformly drawn from
/// `[base, 3 × previous]`, capped at 50 ms, clamped to the remaining
/// deadline. The draw is a deterministic function of the request key and
/// the attempt number — reproducible, and de-synchronized across keys.
fn backoff_sleep(rng: &mut u64, backoff_us: &mut u64, deadline: Option<Instant>) {
    const BASE_US: u64 = 2_000;
    const CAP_US: u64 = 50_000;
    *rng = mix(*rng);
    let hi = (*backoff_us).saturating_mul(3).clamp(BASE_US, CAP_US);
    *backoff_us = BASE_US + *rng % (hi - BASE_US + 1);
    let mut pause = Duration::from_micros(*backoff_us);
    if let Some(dl) = deadline {
        pause = pause.min(dl.saturating_duration_since(Instant::now()));
    }
    if !pause.is_zero() {
        let t0 = Instant::now();
        std::thread::sleep(pause);
        if obs::is_active() {
            obs::add_span("backoff", t0, t0.elapsed(), "");
        }
    }
}

/// One synchronous forward to `worker` on the caller's thread — the
/// in-process fast path, and the fallback when the helper pool is
/// saturated. Hands the already-computed canonical form along so a
/// local transport skips re-canonicalizing.
fn sync_call(
    state: &Arc<RouterState>,
    worker: usize,
    req: &http::Request,
    canon: &str,
    deadline: Option<Instant>,
    trace_id: Option<u64>,
) -> Dispatch {
    match state.shards[worker].transport.call_traced(
        &req.method,
        &req.path,
        &req.body,
        canon,
        state.config.upstream_read_timeout,
        state.config.write_timeout,
        deadline,
        trace_id,
    ) {
        Ok((status, bytes)) => Dispatch::Reply(worker, status, bytes),
        Err(ForwardError::Busy) => Dispatch::Busy,
        Err(ForwardError::Transport(_)) if expired(deadline) => Dispatch::DeadlineExpired,
        Err(ForwardError::Transport(_)) => Dispatch::Dead(vec![worker]),
    }
}

/// Submits one forward to the helper pool, reporting `(worker, result)`
/// on `tx` when it completes.
#[allow(clippy::type_complexity)]
fn submit_call(
    state: &Arc<RouterState>,
    worker: usize,
    req: &http::Request,
    canon: &str,
    deadline: Option<Instant>,
    trace_id: Option<u64>,
    tx: &mpsc::Sender<(usize, Result<(u16, Arc<Vec<u8>>), ForwardError>)>,
) -> bool {
    let shard = Arc::clone(&state.shards[worker]);
    let tx = tx.clone();
    let method = req.method.clone();
    let path = req.path.clone();
    let body = req.body.clone();
    let canon = canon.to_string();
    let read_timeout = state.config.upstream_read_timeout;
    let write_timeout = state.config.write_timeout;
    state.submit_aux(Box::new(move || {
        let res = shard.transport.call_traced(
            &method,
            &path,
            &body,
            &canon,
            read_timeout,
            write_timeout,
            deadline,
            trace_id,
        );
        // The receiver may be long gone (the hedge race was already
        // decided, or the deadline expired); a loser's response is
        // silently discarded here.
        let _ = tx.send((worker, res));
    }))
}

/// The hedged dispatch: fire the primary asynchronously; if it has not
/// answered within `hedge_after`, fire the same request at the first
/// replica and take whichever response lands first. The loser's response
/// is discarded (its channel send hits a dropped receiver), and only the
/// winner is counted as `routed`. Safe because analyses are pure: either
/// replica's bytes are *the* answer.
fn hedged_call(
    state: &Arc<RouterState>,
    owners: &[usize],
    req: &http::Request,
    canon: &str,
    deadline: Option<Instant>,
    trace_id: Option<u64>,
) -> Dispatch {
    let (tx, rx) = mpsc::channel();
    if !submit_call(state, owners[0], req, canon, deadline, trace_id, &tx) {
        // Helper pool saturated or absent: degrade to the plain
        // synchronous path — hedging is an optimization, not a
        // correctness requirement.
        return sync_call(state, owners[0], req, canon, deadline, trace_id);
    }
    let mut pending = 1usize;
    // The hedge timer never outlives the deadline: with less budget left
    // than the hedge threshold, a second dispatch could not answer in
    // time anyway — it would only duplicate doomed work.
    let hedge_wait = match deadline {
        Some(dl) => state
            .config
            .hedge_after
            .min(dl.saturating_duration_since(Instant::now())),
        None => state.config.hedge_after,
    };
    let mut first = match rx.recv_timeout(hedge_wait) {
        Ok(msg) => Some(msg),
        Err(_) => {
            if expired(deadline) {
                // Dropping the receiver discards the primary's eventual
                // response without touching any hedge counters.
                return Dispatch::DeadlineExpired;
            }
            state.stats.hedges_fired.fetch_add(1, Ordering::Relaxed);
            if obs::is_active() {
                obs::add_event(
                    "hedge_fired",
                    format!("primary={} replica={}", owners[0], owners[1]),
                );
            }
            if submit_call(state, owners[1], req, canon, deadline, trace_id, &tx) {
                pending += 1;
            }
            None
        }
    };
    // Every submitted job sends exactly once; dropping our sender makes
    // `recv` fail fast if a job is lost to a panic instead of hanging.
    drop(tx);
    let mut busy = false;
    let mut dead = Vec::new();
    while pending > 0 {
        let (worker, res) = match first.take() {
            Some(msg) => msg,
            None => {
                let received = match deadline {
                    // The drain is bounded by the remaining budget: once
                    // it runs out, the in-flight responses land in a
                    // dropped receiver and are discarded.
                    Some(dl) => rx
                        .recv_timeout(dl.saturating_duration_since(Instant::now()))
                        .map_err(|e| e == mpsc::RecvTimeoutError::Timeout),
                    None => rx.recv().map_err(|_| false),
                };
                match received {
                    Ok(msg) => msg,
                    Err(true) => return Dispatch::DeadlineExpired,
                    Err(false) => break,
                }
            }
        };
        pending -= 1;
        match res {
            Ok((status, bytes)) => {
                if worker != owners[0] {
                    state.stats.hedges_won.fetch_add(1, Ordering::Relaxed);
                    if obs::is_active() {
                        obs::add_event("hedge_won", format!("replica={worker}"));
                    }
                }
                return Dispatch::Reply(worker, status, bytes);
            }
            Err(ForwardError::Busy) => busy = true,
            Err(ForwardError::Transport(_)) => dead.push(worker),
        }
    }
    if expired(deadline) {
        Dispatch::DeadlineExpired
    } else if !dead.is_empty() {
        Dispatch::Dead(dead)
    } else if busy {
        Dispatch::Busy
    } else {
        // Unreachable in practice (a submitted job always reports); treat
        // a lost job as a primary transport failure.
        Dispatch::Dead(vec![owners[0]])
    }
}

/// One warm-ship pass after an eviction: pull each surviving shard's
/// cached responses (`GET /v1/snapshot?section=dedup`), recompute every
/// key's owner set on the *current* ring, and write entries through to
/// alive owners that do not already hold them (`POST /v1/warm`) — so
/// keys that moved in the rehash greet their first post-change request
/// warm instead of recomputing cold. Bounded by [`WARM_SHIP_MAX`]
/// transfers; failures are only counted, never used as liveness
/// evidence (the prober and the data path own eviction decisions).
fn warm_ship(state: &Arc<RouterState>) {
    let replication = state.config.replication.max(1);
    let timeout = state.config.write_timeout;
    // Pass 1: who holds what, per the survivors' own dedup exports.
    // Keyed on the canonical hash — the same identity the ring shards.
    type Held = (String, u64, String, Vec<usize>);
    let mut held: HashMap<u64, Held> = HashMap::new();
    for source in &state.shards {
        if !source.is_alive() {
            continue;
        }
        let Ok((200, bytes)) =
            source
                .transport
                .call("GET", "/v1/snapshot?section=dedup", b"", timeout, timeout)
        else {
            continue;
        };
        let Some(doc) = std::str::from_utf8(&bytes)
            .ok()
            .and_then(|t| Json::parse(t).ok())
        else {
            continue;
        };
        let Some(rows) = doc.get("dedup").and_then(Json::as_arr) else {
            continue;
        };
        for row in rows {
            let (Some(canon), Some(status), Some(body)) = (
                row.get("key").and_then(Json::as_str),
                row.get("status").and_then(Json::as_u64),
                row.get("body").and_then(Json::as_str),
            ) else {
                continue;
            };
            // Mirror the replication path: a deadline-truncated answer
            // is a timing accident and must not poison anyone's cache.
            if body.contains("\"truncated\"") {
                continue;
            }
            held.entry(canonical_key(canon))
                .or_insert_with(|| (canon.to_string(), status, body.to_string(), Vec::new()))
                .3
                .push(source.index);
        }
    }
    // Pass 2: ship each entry to the current owners missing it.
    let mut ships = 0usize;
    for (key, (canon, status, body, holders)) in &held {
        let owners = {
            let ring = state.ring.read().expect("ring poisoned");
            ring.owners(*key, replication)
        };
        let missing: Vec<usize> = owners
            .into_iter()
            .filter(|w| !holders.contains(w) && state.shards[*w].is_alive())
            .collect();
        if missing.is_empty() {
            continue;
        }
        let warm_body = Json::obj([
            ("key", Json::from(canon.as_str())),
            ("status", Json::from(*status)),
            ("body", Json::from(body.as_str())),
        ])
        .to_string();
        for owner in missing {
            if ships >= WARM_SHIP_MAX {
                return;
            }
            ships += 1;
            match state.shards[owner].transport.call(
                "POST",
                "/v1/warm",
                warm_body.as_bytes(),
                timeout,
                timeout,
            ) {
                Ok((200, _)) => {
                    state.stats.warm_shipped.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    state
                        .stats
                        .warm_ship_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Replication write-through: after the first winning 2xx for a key,
/// asynchronously store the answer in the `R-1` successor replicas'
/// dedup caches (`POST /v1/warm`). The ring's successor property makes
/// this exact: if the primary dies, the rehashed owner *is* the warmed
/// replica, so the victim's keys stay warm instead of recomputing cold.
#[allow(clippy::too_many_arguments)]
fn maybe_replicate(
    state: &Arc<RouterState>,
    canon: &str,
    key: u64,
    owners: &[usize],
    winner: usize,
    status: u16,
    bytes: &Arc<Vec<u8>>,
    trace_id: Option<u64>,
) {
    if state.config.replication < 2 || owners.len() < 2 {
        return;
    }
    let Ok(body_text) = std::str::from_utf8(bytes) else {
        return;
    };
    // A degraded (deadline-truncated) answer is a timing accident, not a
    // fact about the request — warm-replicating it would poison the
    // replicas' caches for deadline-free repeats.
    if body_text.contains("\"truncated\"") {
        return;
    }
    // Fast path: steady state is "already written through" — answer that
    // from a shared read lock so concurrent request threads never
    // serialize here.
    if state.warmed.read().expect("warmed poisoned").contains(key) {
        return;
    }
    if !state.warmed.write().expect("warmed poisoned").insert(key) {
        return; // already written through under this ring arrangement
    }
    let warm_body = Json::obj([
        ("key", Json::from(canon)),
        ("status", Json::from(u64::from(status))),
        ("body", Json::from(body_text)),
    ])
    .to_string();
    let targets: Vec<usize> = owners.iter().copied().filter(|&w| w != winner).collect();
    let st = Arc::clone(state);
    let submitted = state.submit_aux(Box::new(move || {
        for worker in targets {
            let shard = &st.shards[worker];
            if !shard.is_alive() {
                continue;
            }
            // The warm write carries the originating request's trace id,
            // so the replication hop shows up on the same timeline.
            if let Ok((200, _)) = shard.transport.call_traced(
                "POST",
                "/v1/warm",
                warm_body.as_bytes(),
                "",
                st.config.write_timeout,
                st.config.write_timeout,
                None,
                trace_id,
            ) {
                st.stats.warm_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }));
    if !submitted {
        // Couldn't schedule the write-through; forget the key so a later
        // request retries it.
        state.warmed.write().expect("warmed poisoned").remove(key);
    }
}

/// `GET /v1/stats` fan-out: each live worker's stats document, the
/// additive merge across them, and the router's own counters. A worker
/// whose stats fetch fails at the transport layer is evicted (the fetch
/// *is* a probe); a worker whose pool slots are merely busy stays on the
/// ring and just misses this snapshot. The fetch uses the short write
/// timeout, not the long sweep timeout — stats answer instantly, and a
/// hung shard must not stall the whole fan-out for a minute.
fn stats_doc(state: &Arc<RouterState>) -> (u16, Arc<Vec<u8>>) {
    let mut shards = Vec::with_capacity(state.shards.len());
    let mut docs = Vec::new();
    for shard in &state.shards {
        let was_alive = shard.is_alive();
        let (doc, alive) = if was_alive {
            match shard.transport.call(
                "GET",
                "/v1/stats",
                b"",
                state.config.write_timeout,
                state.config.write_timeout,
            ) {
                Ok((200, bytes)) => {
                    let parsed = std::str::from_utf8(&bytes)
                        .ok()
                        .and_then(|t| Json::parse(t).ok());
                    if parsed.is_none() {
                        state.mark_dead(shard.index);
                    }
                    let alive = parsed.is_some();
                    (parsed, alive)
                }
                Err(ForwardError::Busy) => (None, true),
                Ok(_) | Err(ForwardError::Transport(_)) => {
                    state.mark_dead(shard.index);
                    (None, false)
                }
            }
        } else {
            // Display-only best effort for an evicted shard (a flapping
            // worker is often reachable between its dark windows): its
            // last-known counters fill the row, but nothing revives it
            // here — that is the prober's call — and its document stays
            // out of the merge, which covers live shards only.
            let doc = match shard.transport.call(
                "GET",
                "/v1/stats",
                b"",
                state.config.write_timeout,
                state.config.write_timeout,
            ) {
                Ok((200, bytes)) => std::str::from_utf8(&bytes)
                    .ok()
                    .and_then(|t| Json::parse(t).ok()),
                _ => None,
            };
            (doc, false)
        };
        shards.push(Json::obj([
            ("worker", Json::from(shard.index)),
            ("addr", Json::from(shard.transport.endpoint())),
            ("transport", Json::from(shard.transport.kind())),
            ("alive", Json::from(alive)),
            ("routed", Json::from(shard.routed.load(Ordering::Relaxed))),
            ("errors", Json::from(shard.errors.load(Ordering::Relaxed))),
            ("stats", doc.clone().unwrap_or(Json::Null)),
        ]));
        if was_alive {
            if let Some(d) = doc {
                docs.push(d);
            }
        }
    }
    let merged = merge::merge_worker_stats(&docs);
    let s = &state.stats;
    let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
    let body = Json::obj([
        (
            "router",
            Json::obj([
                (
                    "uptime_ms",
                    Json::from(state.started.elapsed().as_millis().min(u64::MAX as u128) as u64),
                ),
                ("workers", Json::from(state.shards.len())),
                ("alive_workers", Json::from(state.alive_workers())),
                (
                    "requests",
                    Json::obj([
                        ("accepted_connections", load(&s.connections)),
                        ("total", load(&s.requests)),
                        ("completed", load(&s.completed)),
                        ("status_2xx", load(&s.status_2xx)),
                        ("status_4xx", load(&s.status_4xx)),
                        ("status_5xx", load(&s.status_5xx)),
                        ("rejected_busy", load(&s.rejected_busy)),
                        ("deadline_exceeded", load(&s.deadline_exceeded)),
                    ]),
                ),
                ("retries", load(&s.retries)),
                ("rehashes", load(&s.rehashes)),
                ("revivals", load(&s.revivals)),
                (
                    "breakers",
                    Json::obj([
                        (
                            "threshold",
                            Json::from(u64::from(state.config.breaker_threshold)),
                        ),
                        ("trips", load(&s.breaker_trips)),
                    ]),
                ),
                (
                    "admission",
                    Json::obj([
                        ("rps", Json::from(state.config.admission_rps)),
                        ("rejects", load(&s.admission_rejects)),
                    ]),
                ),
                (
                    "replication",
                    Json::obj([
                        ("factor", Json::from(state.config.replication.max(1))),
                        ("warm_writes", load(&s.warm_writes)),
                        ("warm_shipped", load(&s.warm_shipped)),
                        ("warm_ship_failures", load(&s.warm_ship_failures)),
                    ]),
                ),
                (
                    "hedges",
                    Json::obj([
                        ("fired", load(&s.hedges_fired)),
                        ("won", load(&s.hedges_won)),
                    ]),
                ),
            ]),
        ),
        ("merged", merged),
        ("shards", Json::Arr(shards)),
    ])
    .to_string()
    .into_bytes();
    (200, Arc::new(body))
}

/// `GET /metrics` at the router tier: one Prometheus text document
/// covering the cluster. The `tenet_worker_*` families come from the
/// additive merge of every live shard's `/v1/stats` document — so each
/// merged series equals the sum of the per-shard expositions — and the
/// `tenet_router_*` families append the router's own counters. The
/// merged document carries no `isl_cache.process` section, so the
/// single-process `tenet_process_*` families are naturally absent here.
fn metrics_doc(state: &Arc<RouterState>) -> (u16, Arc<Vec<u8>>) {
    let mut docs = Vec::new();
    for shard in &state.shards {
        if !shard.is_alive() {
            continue;
        }
        match shard.transport.call(
            "GET",
            "/v1/stats",
            b"",
            state.config.write_timeout,
            state.config.write_timeout,
        ) {
            Ok((200, bytes)) => {
                match std::str::from_utf8(&bytes)
                    .ok()
                    .and_then(|t| Json::parse(t).ok())
                {
                    Some(doc) => docs.push(doc),
                    None => {
                        state.mark_dead(shard.index);
                    }
                }
            }
            Err(ForwardError::Busy) => {} // saturated, not dead: skip this scrape
            Ok(_) | Err(ForwardError::Transport(_)) => {
                state.mark_dead(shard.index);
            }
        }
    }
    let merged = merge::merge_worker_stats(&docs);
    let mut text = tenet_server::stats::prometheus_from_worker_doc(&merged);
    text.push_str(&router_prometheus(state));
    (200, Arc::new(text.into_bytes()))
}

/// The router's own counter families in Prometheus text form, appended
/// after the merged worker families by [`metrics_doc`].
fn router_prometheus(state: &Arc<RouterState>) -> String {
    let s = &state.stats;
    let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let mut p = PromBuf::new();
    p.gauge(
        "tenet_router_uptime_ms",
        &[],
        state.started.elapsed().as_millis().min(u64::MAX as u128) as f64,
    );
    p.gauge("tenet_router_workers", &[], state.shards.len() as f64);
    p.gauge(
        "tenet_router_alive_workers",
        &[],
        state.alive_workers() as f64,
    );
    p.counter("tenet_router_connections_total", &[], c(&s.connections));
    p.counter("tenet_router_requests_total", &[], c(&s.requests));
    p.counter("tenet_router_completed_total", &[], c(&s.completed));
    p.counter_vec(
        "tenet_router_responses_total",
        "class",
        &[
            ("2xx", c(&s.status_2xx)),
            ("4xx", c(&s.status_4xx)),
            ("5xx", c(&s.status_5xx)),
        ],
    );
    p.counter("tenet_router_rejected_busy_total", &[], c(&s.rejected_busy));
    p.counter("tenet_router_retries_total", &[], c(&s.retries));
    p.counter("tenet_router_rehashes_total", &[], c(&s.rehashes));
    p.counter("tenet_router_revivals_total", &[], c(&s.revivals));
    p.counter_vec(
        "tenet_router_hedges_total",
        "outcome",
        &[("fired", c(&s.hedges_fired)), ("won", c(&s.hedges_won))],
    );
    p.counter("tenet_router_warm_writes_total", &[], c(&s.warm_writes));
    p.counter("tenet_router_warm_shipped_total", &[], c(&s.warm_shipped));
    p.counter(
        "tenet_router_warm_ship_failures_total",
        &[],
        c(&s.warm_ship_failures),
    );
    p.counter("tenet_router_breaker_trips_total", &[], c(&s.breaker_trips));
    p.counter(
        "tenet_router_deadline_exceeded_total",
        &[],
        c(&s.deadline_exceeded),
    );
    p.counter(
        "tenet_router_admission_rejects_total",
        &[],
        c(&s.admission_rejects),
    );
    p.into_string()
}

/// `GET /v1/trace/...` at the router tier. `/v1/trace/slow` serves the
/// router's own slow ring; `/v1/trace/<id>` assembles the cross-tier
/// timeline — the router's record plus every live shard's records for
/// the same id, fetched over the transport fan-out.
fn trace_doc(state: &Arc<RouterState>, path: &str) -> (u16, Arc<Vec<u8>>) {
    let rest = path.strip_prefix("/v1/trace/").unwrap_or("");
    let (rest, query) = match rest.split_once('?') {
        Some((r, q)) => (r, Some(q)),
        None => (rest, None),
    };
    if rest == "slow" {
        // A present-but-unparseable threshold is a client mistake and
        // must say so — silently ignoring it would serve the *unfiltered*
        // slow ring as if the filter had applied.
        let min_us = match query.and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("ms="))) {
            Some(v) => match v.parse::<u64>() {
                Ok(ms) => Some(ms.saturating_mul(1_000)),
                Err(_) => {
                    return (
                        400,
                        error_body(
                            "usage",
                            format!("bad `ms` value `{v}`: expected a non-negative integer"),
                        ),
                    );
                }
            },
            None => None,
        };
        let rows = state.traces.slow(min_us);
        let body = Json::obj([(
            "traces",
            Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
        )]);
        return (200, Arc::new(body.to_string().into_bytes()));
    }
    let Some(id) = obs::TraceId::parse(rest) else {
        return (400, error_body("usage", "malformed trace id"));
    };
    let mut records: Vec<Json> = Vec::new();
    if let Some(rec) = state.traces.find(id.0) {
        records.push(rec.to_json());
    }
    let worker_path = format!("/v1/trace/{id}");
    for shard in &state.shards {
        if !shard.is_alive() {
            continue;
        }
        if let Ok((200, bytes)) = shard.transport.call(
            "GET",
            &worker_path,
            b"",
            state.config.write_timeout,
            state.config.write_timeout,
        ) {
            if let Some(doc) = std::str::from_utf8(&bytes)
                .ok()
                .and_then(|t| Json::parse(t).ok())
            {
                if let Some(rows) = doc.get("records").and_then(Json::as_arr) {
                    records.extend(rows.iter().cloned());
                }
            }
        }
    }
    if records.is_empty() {
        return (
            404,
            error_body(
                "not_found",
                "trace not found at any tier (evicted, never recorded, or tracing disabled)",
            ),
        );
    }
    let body = Json::obj([
        ("trace_id", Json::from(id.to_string())),
        ("records", Json::Arr(records)),
    ]);
    (200, Arc::new(body.to_string().into_bytes()))
}

/// `POST /v1/shutdown` cascade: drain every worker, then the router
/// itself. The drain goes to *every* registered worker — including ones
/// currently marked dead — on the transport's control path (a fresh
/// unpooled connection for HTTP, a drain-exempt dispatch for local): a
/// worker that was transiently evicted (one lost probe, one dropped
/// socket) is still running and must not be leaked past the cascade,
/// and a genuinely dead one just answers "unreachable" after a fast
/// refused connect. Worker outcomes are reported so an operator sees
/// which shards acknowledged.
fn cascade_shutdown(state: &Arc<RouterState>) -> (u16, Arc<Vec<u8>>) {
    let mut workers = Vec::with_capacity(state.shards.len());
    for shard in &state.shards {
        let outcome =
            match shard
                .transport
                .send_control("POST", "/v1/shutdown", state.config.write_timeout)
            {
                Ok((200, _)) => {
                    // Remember the ack so the prober stops probing a
                    // worker that is leaving on purpose.
                    shard.draining.store(true, Ordering::Release);
                    "draining"
                }
                Ok(_) => "error",
                Err(_) => "unreachable",
            };
        workers.push(Json::obj([
            ("worker", Json::from(shard.index)),
            ("status", Json::from(outcome)),
        ]));
    }
    state.shutdown.store(true, Ordering::Release);
    let body = Json::obj([
        ("status", Json::from("draining")),
        ("workers", Json::Arr(workers)),
    ])
    .to_string()
    .into_bytes();
    (200, Arc::new(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cap regression: with the old wholesale clear, hitting
    /// [`WARMED_KEYS_CAP`] forgot *every* key, so a hot key repeated
    /// right past the cap reported "new" again and re-replicated. With
    /// generational rotation a repeatedly touched key must stay known
    /// through an unbounded stream of one-shot keys.
    #[test]
    fn warmed_set_remembers_repeated_keys_past_the_cap() {
        let mut w = WarmedSet::default();
        assert!(w.insert(7), "first sighting is new");
        for k in 0..(WARMED_KEYS_CAP as u64 * 2) {
            w.insert((1 << 40) | k);
            assert!(!w.insert(7), "hot key forgotten after {k} one-shot inserts");
        }
        // The forgetting is still bounded: two generations of half the
        // cap each, never the unbounded set the rotation replaced.
        assert!(w.young.len() + w.old.len() <= WARMED_KEYS_CAP);
    }

    #[test]
    fn warmed_set_eventually_forgets_untouched_keys() {
        let mut w = WarmedSet::default();
        assert!(w.insert(7));
        // Push two full generations of distinct keys with no re-touch:
        // the key ages out and is treated as new again (harmless — the
        // write-through it triggers is idempotent).
        for k in 0..(WARMED_KEYS_CAP as u64) {
            w.insert((1 << 40) | k);
        }
        assert!(w.insert(7), "an untouched key must age out at the cap");
    }

    #[test]
    fn warmed_set_clear_and_remove_cover_both_generations() {
        let mut w = WarmedSet::default();
        for k in 0..(WARMED_KEYS_CAP as u64 / 2) {
            w.insert(k);
        }
        w.insert(u64::MAX); // key 0..CAP/2 now old, MAX young
        assert!(w.contains(0) && w.contains(u64::MAX));
        w.remove(0);
        w.remove(u64::MAX);
        assert!(!w.contains(0) && !w.contains(u64::MAX));
        w.insert(1);
        w.clear();
        assert!(!w.contains(1));
    }
}
