//! The front tier: accept loop, request proxying, fan-out endpoints,
//! health probing, and cascaded drain.

use crate::merge;
use crate::ring::HashRing;
use crate::upstream::{ForwardError, Upstream};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tenet_core::json::Json;
use tenet_server::http::{self, RequestBuffer};
use tenet_server::pool::{SubmitError, WorkerPool};
use tenet_server::{canonical_key, canonical_request};

/// Router configuration. Defaults match [`tenet_server::ServerConfig`]'s
/// posture: loopback, small host, every knob overridable by tests.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address, e.g. `127.0.0.1:8090` (port `0` for ephemeral).
    pub addr: String,
    /// Worker addresses to attach (`host:port`). At least one required.
    pub workers: Vec<String>,
    /// Threads serving client connections.
    pub threads: usize,
    /// Accepted connections allowed to wait for a worker thread before
    /// the router sheds load with `503`.
    pub queue_capacity: usize,
    /// Per-client-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout (client side and upstream side).
    pub write_timeout: Duration,
    /// How long a proxied call may wait for the owning shard's answer
    /// (cold `/v1/dse` sweeps compute before writing anything).
    pub upstream_read_timeout: Duration,
    /// Maximum request-body size in bytes (`413` beyond).
    pub max_body: usize,
    /// Maximum header-block size in bytes (`431` beyond).
    pub max_header: usize,
    /// Maximum connections (idle + in flight) the router keeps open to
    /// each worker. Load-bearing: the worker parks one thread per
    /// keep-alive connection, so this must stay below the worker's
    /// thread count or parked proxy sockets starve fresh connections —
    /// including health probes, which would evict a healthy worker.
    /// Spawners size worker pools at `upstream_connections + 2`.
    pub upstream_connections: usize,
    /// Virtual nodes per worker on the hash ring.
    pub vnodes: usize,
    /// Liveness-probe period; `Duration::ZERO` disables the prober
    /// (failures are then detected only on proxied traffic).
    pub health_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        RouterConfig {
            addr: "127.0.0.1:8090".into(),
            workers: Vec::new(),
            threads: parallelism.clamp(2, 16),
            queue_capacity: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            upstream_read_timeout: Duration::from_secs(60),
            max_body: 1 << 20,
            max_header: 16 * 1024,
            upstream_connections: 4,
            vnodes: 64,
            health_interval: Duration::from_millis(250),
        }
    }
}

/// Router-level counters (the proxied workers keep their own).
#[derive(Default)]
pub struct RouterStats {
    /// Client connections accepted.
    pub connections: AtomicU64,
    /// Requests fully parsed and handled.
    pub requests: AtomicU64,
    /// Requests completed (any status).
    pub completed: AtomicU64,
    /// Responses with a 2xx status.
    pub status_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub status_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub status_5xx: AtomicU64,
    /// Connections shed with 503 because the backlog was full.
    pub rejected_busy: AtomicU64,
    /// Proxied calls re-routed after a shard failed mid-request.
    pub retries: AtomicU64,
    /// Workers evicted from the ring (probe or forward failure).
    pub rehashes: AtomicU64,
    /// Workers re-admitted after a successful probe.
    pub revivals: AtomicU64,
}

impl RouterStats {
    fn record(&self, status: u16) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by the accept loop, connection workers, and the prober.
pub struct RouterState {
    /// Router configuration (immutable after bind).
    pub config: RouterConfig,
    /// The registered workers, indexed by ring identity.
    pub upstreams: Vec<Arc<Upstream>>,
    ring: Mutex<HashRing>,
    /// Router-level counters.
    pub stats: RouterStats,
    shutdown: Arc<AtomicBool>,
    started: Instant,
}

impl RouterState {
    /// Evicts a worker from the ring (idempotent); keys it owned rehash
    /// to the survivors on their next lookup.
    fn mark_dead(&self, worker: usize) {
        let mut ring = self.ring.lock().expect("ring poisoned");
        if ring.remove(worker) {
            self.upstreams[worker].set_alive(false);
            self.stats.rehashes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Re-admits a worker after a successful probe (idempotent).
    fn revive(&self, worker: usize) {
        let mut ring = self.ring.lock().expect("ring poisoned");
        if ring.add(worker) {
            self.upstreams[worker].set_alive(true);
            self.stats.revivals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Live workers on the ring right now.
    pub fn alive_workers(&self) -> usize {
        self.ring.lock().expect("ring poisoned").len()
    }
}

/// A cheap, clonable remote control for a running [`Router`].
#[derive(Clone)]
pub struct RouterHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain of the router itself. Does NOT cascade to
    /// workers — that is `POST /v1/shutdown`'s job; a supervisor holding
    /// worker handles can drain them directly.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// A router spawned onto its own thread by [`Router::spawn`].
pub struct SpawnedRouter {
    handle: RouterHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedRouter {
    /// The router's remote control.
    pub fn handle(&self) -> RouterHandle {
        self.handle.clone()
    }

    /// The router's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// Requests a drain and waits for the router thread to stop.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("router thread panicked"))?
    }
}

/// A bound (but not yet running) sharding router.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
    addr: SocketAddr,
}

impl Router {
    /// Binds `config.addr`, resolves the worker addresses, and builds the
    /// ring with every worker initially admitted.
    pub fn bind(config: RouterConfig) -> std::io::Result<Router> {
        if config.workers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one worker address",
            ));
        }
        let mut upstreams = Vec::with_capacity(config.workers.len());
        let mut ring = HashRing::new(config.vnodes);
        for (index, spec) in config.workers.iter().enumerate() {
            let addr = spec.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("worker address `{spec}` resolves to nothing"),
                )
            })?;
            upstreams.push(Arc::new(Upstream::new(
                index,
                addr,
                config.upstream_connections,
            )));
            ring.add(index);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(RouterState {
            config,
            upstreams,
            ring: Mutex::new(ring),
            stats: RouterStats::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
        });
        Ok(Router {
            listener,
            state,
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            shutdown: Arc::clone(&self.state.shutdown),
            addr: self.addr,
        }
    }

    /// Binds and runs on a new thread; bind errors surface here, run
    /// errors at join.
    pub fn spawn(config: RouterConfig) -> std::io::Result<SpawnedRouter> {
        let router = Router::bind(config)?;
        let handle = router.handle();
        let thread = std::thread::Builder::new()
            .name(format!("tenet-router-{}", handle.addr().port()))
            .spawn(move || router.run())?;
        Ok(SpawnedRouter { handle, thread })
    }

    /// Runs until a graceful shutdown is requested, then drains: the
    /// accept loop stops, admitted connections finish, the prober and the
    /// connection workers join.
    pub fn run(self) -> std::io::Result<()> {
        let state = Arc::clone(&self.state);
        let prober = if state.config.health_interval > Duration::ZERO {
            let state = Arc::clone(&state);
            Some(
                std::thread::Builder::new()
                    .name("tenet-router-health".into())
                    .spawn(move || health_loop(&state))?,
            )
        } else {
            None
        };
        let pool_state = Arc::clone(&self.state);
        let pool = WorkerPool::new(
            "tenet-route",
            state.config.threads,
            state.config.queue_capacity,
            move |stream: TcpStream| serve_connection(stream, &pool_state),
        );
        let shutdown = Arc::clone(&state.shutdown);
        let outcome = loop {
            if shutdown.load(Ordering::Acquire) {
                break Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    state.stats.connections.fetch_add(1, Ordering::Relaxed);
                    match pool.try_submit(stream) {
                        Ok(()) => {}
                        Err((stream, SubmitError::Busy | SubmitError::ShuttingDown)) => {
                            state.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            shed(stream, &state);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        pool.shutdown();
        if let Some(p) = prober {
            let _ = p.join();
        }
        outcome
    }
}

/// Periodic worker liveness: a failed probe evicts (rehash), a
/// successful probe of an evicted worker re-admits (the keys that
/// rehashed away migrate back, restoring the original affinity).
fn health_loop(state: &Arc<RouterState>) {
    let interval = state.config.health_interval;
    let probe_timeout = interval.clamp(Duration::from_millis(100), Duration::from_secs(1));
    while !state.shutdown.load(Ordering::Acquire) {
        for up in &state.upstreams {
            if state.shutdown.load(Ordering::Acquire) {
                return;
            }
            let on_ring = {
                let ring = state.ring.lock().expect("ring poisoned");
                ring.contains(up.index)
            };
            match (up.probe_health(probe_timeout), on_ring) {
                (true, false) => state.revive(up.index),
                (false, true) => state.mark_dead(up.index),
                _ => {}
            }
        }
        // Sleep in small slices so a drain is observed promptly.
        let mut slept = Duration::ZERO;
        while slept < interval && !state.shutdown.load(Ordering::Acquire) {
            let step = (interval - slept).min(Duration::from_millis(20));
            std::thread::sleep(step);
            slept += step;
        }
    }
}

fn error_body(kind: &str, message: impl Into<String>) -> Vec<u8> {
    Json::obj([(
        "error",
        Json::obj([
            ("kind", Json::from(kind)),
            ("message", Json::from(message.into())),
        ]),
    )])
    .to_string()
    .into_bytes()
}

/// Answers `503` on the accept thread when the pool refused a connection.
fn shed(mut stream: TcpStream, state: &Arc<RouterState>) {
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let body = error_body("busy", "router backlog full; retry later");
    let _ = stream.write_all(&http::encode_response(
        503,
        "application/json",
        &body,
        false,
    ));
}

/// Serves one client connection: parse → handle/proxy → respond,
/// repeating for keep-alive/pipelined requests until close, error, or
/// drain. Mirrors the worker's connection loop so clients cannot tell a
/// router from a single server.
fn serve_connection(mut stream: TcpStream, state: &Arc<RouterState>) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut rb = RequestBuffer::new(state.config.max_header, state.config.max_body);
    loop {
        loop {
            match rb.next_request() {
                Ok(Some(req)) => {
                    let draining = state.shutdown.load(Ordering::Acquire);
                    let keep_alive = req.keep_alive && !draining;
                    state.stats.requests.fetch_add(1, Ordering::Relaxed);
                    let (status, body) = handle(&req, state);
                    state.stats.record(status);
                    let bytes =
                        http::encode_response(status, "application/json", &body, keep_alive);
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is broken (including chunked bodies → 501);
                    // report and hang up, counting the request.
                    let body = error_body("parse", e.message());
                    let _ = stream.write_all(&http::encode_response(
                        e.status(),
                        "application/json",
                        &body,
                        false,
                    ));
                    state.stats.requests.fetch_add(1, Ordering::Relaxed);
                    state.stats.record(e.status());
                    return;
                }
            }
        }
        match rb.fill_from(&mut stream) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

/// Routes one parsed request: local endpoints, fan-outs, or the sharded
/// proxy path.
fn handle(req: &http::Request, state: &Arc<RouterState>) -> (u16, Vec<u8>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => healthz(state),
        ("GET", "/v1/stats") => stats_doc(state),
        ("POST", "/v1/shutdown") => cascade_shutdown(state),
        ("POST", "/v1/analyze" | "/v1/dse") => proxy(req, state),
        ("GET" | "POST", _) => (
            404,
            error_body("not_found", format!("no route for {}", req.path)),
        ),
        _ => (
            405,
            error_body("method_not_allowed", format!("method {}", req.method)),
        ),
    }
}

fn healthz(state: &Arc<RouterState>) -> (u16, Vec<u8>) {
    let alive = state.alive_workers();
    let body = Json::obj([
        (
            "status",
            Json::from(if alive > 0 { "ok" } else { "degraded" }),
        ),
        ("role", Json::from("router")),
        ("workers", Json::from(state.upstreams.len())),
        ("alive_workers", Json::from(alive)),
    ])
    .to_string()
    .into_bytes();
    (200, body)
}

/// The sharded proxy path: consistent-hash the canonical request key,
/// forward to the owning worker, and on transport failure evict + retry
/// on the rehashed owner. Re-sending is safe — analyses are pure
/// functions of the request text, so a retry can only recompute the same
/// bytes. 5xx statuses *returned by a worker* are relayed untouched (a
/// deterministic analysis failure is the answer, not a routing problem);
/// a router-originated 5xx means an empty ring or shed load. Pool-slot
/// exhaustion on the owning shard ([`ForwardError::Busy`]) is
/// backpressure, answered `503 busy` without eviction: the shard is
/// healthy, just saturated, and rehashing its keys would throw away its
/// warm cache for nothing.
fn proxy(req: &http::Request, state: &Arc<RouterState>) -> (u16, Vec<u8>) {
    let key = canonical_key(&canonical_request(&req.method, &req.path, &req.body));
    let mut attempts = 0usize;
    loop {
        let owner = {
            let ring = state.ring.lock().expect("ring poisoned");
            ring.owner(key)
        };
        let Some(worker) = owner else {
            return (
                503,
                error_body("no_workers", "no live workers on the ring; retry later"),
            );
        };
        let up = &state.upstreams[worker];
        match up.forward(
            &req.method,
            &req.path,
            &req.body,
            state.config.upstream_read_timeout,
            state.config.write_timeout,
        ) {
            Ok((status, bytes)) => {
                up.routed.fetch_add(1, Ordering::Relaxed);
                return (status, bytes);
            }
            Err(ForwardError::Busy) => {
                state.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                return (
                    503,
                    error_body(
                        "busy",
                        "owning shard's connection slots are busy; retry later",
                    ),
                );
            }
            Err(ForwardError::Transport(_)) => {
                up.errors.fetch_add(1, Ordering::Relaxed);
                state.mark_dead(worker);
                state.stats.retries.fetch_add(1, Ordering::Relaxed);
                attempts += 1;
                if attempts > state.upstreams.len() {
                    return (
                        503,
                        error_body("no_workers", "every worker failed this request"),
                    );
                }
            }
        }
    }
}

/// `GET /v1/stats` fan-out: each live worker's stats document, the
/// additive merge across them, and the router's own counters. A worker
/// whose stats fetch fails at the transport layer is evicted (the fetch
/// *is* a probe); a worker whose pool slots are merely busy stays on the
/// ring and just misses this snapshot. The fetch uses the short write
/// timeout, not the long sweep timeout — stats answer instantly, and a
/// hung shard must not stall the whole fan-out for a minute.
fn stats_doc(state: &Arc<RouterState>) -> (u16, Vec<u8>) {
    let mut shards = Vec::with_capacity(state.upstreams.len());
    let mut docs = Vec::new();
    for up in &state.upstreams {
        let (doc, alive) = if up.is_alive() {
            match up.forward(
                "GET",
                "/v1/stats",
                b"",
                state.config.write_timeout,
                state.config.write_timeout,
            ) {
                Ok((200, bytes)) => {
                    let parsed = std::str::from_utf8(&bytes)
                        .ok()
                        .and_then(|t| Json::parse(t).ok());
                    if parsed.is_none() {
                        state.mark_dead(up.index);
                    }
                    let alive = parsed.is_some();
                    (parsed, alive)
                }
                Err(ForwardError::Busy) => (None, true),
                Ok(_) | Err(ForwardError::Transport(_)) => {
                    state.mark_dead(up.index);
                    (None, false)
                }
            }
        } else {
            (None, false)
        };
        shards.push(Json::obj([
            ("worker", Json::from(up.index)),
            ("addr", Json::from(up.addr.to_string())),
            ("alive", Json::from(alive)),
            ("routed", Json::from(up.routed.load(Ordering::Relaxed))),
            ("errors", Json::from(up.errors.load(Ordering::Relaxed))),
            ("stats", doc.clone().unwrap_or(Json::Null)),
        ]));
        if let Some(d) = doc {
            docs.push(d);
        }
    }
    let merged = merge::merge_worker_stats(&docs);
    let s = &state.stats;
    let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
    let body = Json::obj([
        (
            "router",
            Json::obj([
                (
                    "uptime_ms",
                    Json::from(state.started.elapsed().as_millis().min(u64::MAX as u128) as u64),
                ),
                ("workers", Json::from(state.upstreams.len())),
                ("alive_workers", Json::from(state.alive_workers())),
                (
                    "requests",
                    Json::obj([
                        ("accepted_connections", load(&s.connections)),
                        ("total", load(&s.requests)),
                        ("completed", load(&s.completed)),
                        ("status_2xx", load(&s.status_2xx)),
                        ("status_4xx", load(&s.status_4xx)),
                        ("status_5xx", load(&s.status_5xx)),
                        ("rejected_busy", load(&s.rejected_busy)),
                    ]),
                ),
                ("retries", load(&s.retries)),
                ("rehashes", load(&s.rehashes)),
                ("revivals", load(&s.revivals)),
            ]),
        ),
        ("merged", merged),
        ("shards", Json::Arr(shards)),
    ])
    .to_string()
    .into_bytes();
    (200, body)
}

/// `POST /v1/shutdown` cascade: drain every worker, then the router
/// itself. The drain goes to *every* registered worker — including ones
/// currently marked dead — on a fresh unpooled connection: a worker that
/// was transiently evicted (one lost probe, one dropped socket) is still
/// running and must not be leaked past the cascade, and a genuinely dead
/// one just answers "unreachable" after a fast refused connect. Worker
/// outcomes are reported so an operator sees which shards acknowledged.
fn cascade_shutdown(state: &Arc<RouterState>) -> (u16, Vec<u8>) {
    let mut workers = Vec::with_capacity(state.upstreams.len());
    for up in &state.upstreams {
        let outcome = match up.send_once("POST", "/v1/shutdown", state.config.write_timeout) {
            Ok((200, _)) => "draining",
            Ok(_) => "error",
            Err(_) => "unreachable",
        };
        workers.push(Json::obj([
            ("worker", Json::from(up.index)),
            ("status", Json::from(outcome)),
        ]));
    }
    state.shutdown.store(true, Ordering::Release);
    let body = Json::obj([
        ("status", Json::from("draining")),
        ("workers", Json::Arr(workers)),
    ])
    .to_string()
    .into_bytes();
    (200, body)
}
