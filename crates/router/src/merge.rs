//! Merging per-worker `/v1/stats` documents into one cluster view.
//!
//! The merged document covers the *additive* core of a worker's stats —
//! request counters, the latency histogram, the dedup layer, the
//! server-attributed ISL-cache counters — with the derived values
//! (hit rates, latency quantiles) recomputed from the sums rather than
//! averaged: an average of per-shard p99s is not a p99, but the quantile
//! of the summed histogram is exact at bucket resolution.
//!
//! `isl_cache.process` is deliberately *not* merged: workers spawned
//! in-process (the `tenet route` default) share one process-wide memo
//! context, and summing the same gauge N times would fabricate work. The
//! per-shard section still carries each worker's full raw document.

use tenet_core::json::Json;

fn get<'a>(doc: &'a Json, path: &[&str]) -> Option<&'a Json> {
    let mut v = doc;
    for key in path {
        v = v.get(key)?;
    }
    Some(v)
}

fn get_u64(doc: &Json, path: &[&str]) -> u64 {
    get(doc, path).and_then(Json::as_u64).unwrap_or(0)
}

fn sum(docs: &[Json], path: &[&str]) -> u64 {
    docs.iter().map(|d| get_u64(d, path)).sum()
}

fn max(docs: &[Json], path: &[&str]) -> u64 {
    docs.iter().map(|d| get_u64(d, path)).max().unwrap_or(0)
}

fn rate(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// One merged histogram bucket: upper bound (`None` = open-ended) and the
/// summed count.
type Bucket = (Option<u64>, u64);

/// Sums the workers' latency histograms bucket-by-bucket. Bucket bounds
/// come from the first document carrying a histogram; every worker runs
/// the same code, so bounds agree — counts are aligned by index.
fn merge_histograms(docs: &[Json]) -> Vec<Bucket> {
    let template = docs
        .iter()
        .filter_map(|d| get(d, &["latency", "histogram"]).and_then(Json::as_arr))
        .max_by_key(|arr| arr.len());
    let Some(template) = template else {
        return Vec::new();
    };
    let mut merged: Vec<Bucket> = template
        .iter()
        .map(|b| (b.get("le_us").and_then(Json::as_u64), 0))
        .collect();
    for doc in docs {
        let Some(arr) = get(doc, &["latency", "histogram"]).and_then(Json::as_arr) else {
            continue;
        };
        for (i, bucket) in arr.iter().enumerate() {
            if let Some(slot) = merged.get_mut(i) {
                slot.1 += bucket.get("count").and_then(Json::as_u64).unwrap_or(0);
            }
        }
    }
    merged
}

/// The `q`-quantile of a merged histogram, reported as the upper bound
/// of the containing bucket (µs), exactly like the workers' own
/// `latency_quantile_us` — including the open-ended top bucket reporting
/// `u64::MAX`, so merged and per-shard quantiles agree bucket-for-bucket
/// on identical data. 0 on an empty histogram.
fn quantile_us(hist: &[Bucket], q: f64) -> u64 {
    let total: u64 = hist.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil() as u64;
    let mut seen = 0;
    for &(le, count) in hist {
        seen += count;
        if seen >= target {
            return le.unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

/// Merges worker stats documents into the cluster-wide additive view.
pub fn merge_worker_stats(docs: &[Json]) -> Json {
    let requests_keys = [
        "accepted_connections",
        "total",
        "in_flight",
        "completed",
        "status_2xx",
        "status_4xx",
        "status_5xx",
        "rejected_busy",
        "deadline_exceeded",
        "degraded_responses",
        "backlog",
    ];
    let requests = Json::Obj(
        requests_keys
            .iter()
            .map(|&k| (k.to_string(), Json::from(sum(docs, &["requests", k]))))
            .collect(),
    );

    let hist = merge_histograms(docs);
    let histogram = Json::Arr(
        hist.iter()
            .map(|&(le, count)| {
                Json::obj([
                    ("le_us", le.map(Json::from).unwrap_or(Json::Null)),
                    ("count", Json::from(count)),
                ])
            })
            .collect(),
    );
    // The exact latency sum is additive, so the merged mean is exact
    // too; the bucket estimate and its error are recomputed from the
    // merged histogram, mirroring each worker's own derivation.
    let sum_us = sum(docs, &["latency", "sum_us"]);
    let hist_total: u64 = hist.iter().map(|&(_, c)| c).sum();
    let mean_us = if hist_total == 0 {
        0.0
    } else {
        sum_us as f64 / hist_total as f64
    };
    let bounds: Vec<u64> = hist.iter().map(|&(le, _)| le.unwrap_or(u64::MAX)).collect();
    let counts: Vec<u64> = hist.iter().map(|&(_, c)| c).collect();
    let est_mean_us = tenet_server::stats::est_mean_from_buckets(&bounds, &counts);
    let est_error = if mean_us == 0.0 {
        0.0
    } else {
        (est_mean_us - mean_us) / mean_us
    };

    let (dh, dw, dm) = (
        sum(docs, &["dedup", "hits"]),
        sum(docs, &["dedup", "inflight_waits"]),
        sum(docs, &["dedup", "misses"]),
    );
    let warmed = sum(docs, &["dedup", "warmed"]);
    let (ih, im) = (
        sum(docs, &["isl_cache", "server", "hits"]),
        sum(docs, &["isl_cache", "server", "misses"]),
    );

    Json::obj([
        ("uptime_ms", Json::from(max(docs, &["uptime_ms"]))),
        ("requests", requests),
        (
            "latency",
            Json::obj([
                ("p50_us", Json::from(quantile_us(&hist, 0.50))),
                ("p99_us", Json::from(quantile_us(&hist, 0.99))),
                ("sum_us", Json::from(sum_us)),
                ("mean_us", Json::from(mean_us)),
                ("est_mean_us", Json::from(est_mean_us)),
                ("est_error", Json::from(est_error)),
                ("histogram", histogram),
            ]),
        ),
        (
            "dedup",
            Json::obj([
                ("hits", Json::from(dh)),
                ("inflight_waits", Json::from(dw)),
                ("misses", Json::from(dm)),
                ("warmed", Json::from(warmed)),
                ("entries", Json::from(sum(docs, &["dedup", "entries"]))),
                ("hit_rate", Json::from(rate(dh + dw, dh + dw + dm))),
            ]),
        ),
        (
            "isl_cache",
            Json::obj([(
                "server",
                Json::obj([
                    ("hits", Json::from(ih)),
                    ("misses", Json::from(im)),
                    ("hit_rate", Json::from(rate(ih, ih + im))),
                    (
                        "cold_us",
                        Json::from(sum(docs, &["isl_cache", "server", "cold_us"])),
                    ),
                    (
                        "fast_paths",
                        Json::from(sum(docs, &["isl_cache", "server", "fast_paths"])),
                    ),
                ]),
            )]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker_doc(completed: u64, hits: u64, misses: u64, fast: u64, slow: u64) -> Json {
        Json::obj([
            ("uptime_ms", Json::from(completed * 10)),
            (
                "requests",
                Json::obj([
                    ("total", Json::from(completed)),
                    ("completed", Json::from(completed)),
                    ("status_2xx", Json::from(completed)),
                ]),
            ),
            (
                "latency",
                Json::obj([
                    ("p50_us", Json::from(50u64)),
                    ("p99_us", Json::from(1000u64)),
                    ("sum_us", Json::from(completed * 40)),
                    (
                        "histogram",
                        Json::Arr(vec![
                            Json::obj([("le_us", Json::from(50u64)), ("count", Json::from(fast))]),
                            Json::obj([
                                ("le_us", Json::from(1000u64)),
                                ("count", Json::from(slow)),
                            ]),
                            Json::obj([("le_us", Json::Null), ("count", Json::from(0u64))]),
                        ]),
                    ),
                ]),
            ),
            (
                "dedup",
                Json::obj([
                    ("hits", Json::from(hits)),
                    ("inflight_waits", Json::from(0u64)),
                    ("misses", Json::from(misses)),
                    ("entries", Json::from(misses)),
                    ("hit_rate", Json::from(0.5)),
                ]),
            ),
            (
                "isl_cache",
                Json::obj([
                    (
                        "server",
                        Json::obj([
                            ("hits", Json::from(hits * 3)),
                            ("misses", Json::from(misses * 2)),
                        ]),
                    ),
                    ("process", Json::obj([("hits", Json::from(999_999u64))])),
                ]),
            ),
        ])
    }

    #[test]
    fn counters_sum_and_rates_recompute() {
        let docs = vec![worker_doc(10, 8, 2, 9, 1), worker_doc(30, 24, 6, 28, 2)];
        let merged = merge_worker_stats(&docs);
        assert_eq!(get_u64(&merged, &["requests", "completed"]), 40);
        assert_eq!(get_u64(&merged, &["dedup", "hits"]), 32);
        assert_eq!(get_u64(&merged, &["dedup", "misses"]), 8);
        let hit_rate = get(&merged, &["dedup", "hit_rate"])
            .and_then(Json::as_f64)
            .unwrap();
        assert!((hit_rate - 0.8).abs() < 1e-9, "recomputed, not averaged");
        assert_eq!(get_u64(&merged, &["uptime_ms"]), 300, "uptime is a max");
        assert!(
            get(&merged, &["isl_cache", "process"]).is_none(),
            "shared process gauges must not be summed"
        );
    }

    #[test]
    fn exact_latency_sum_merges_additively_and_means_recompute() {
        let docs = vec![worker_doc(10, 8, 2, 9, 1), worker_doc(30, 24, 6, 28, 2)];
        let merged = merge_worker_stats(&docs);
        assert_eq!(get_u64(&merged, &["latency", "sum_us"]), 1_600);
        let mean = get(&merged, &["latency", "mean_us"])
            .and_then(Json::as_f64)
            .unwrap();
        assert!((mean - 40.0).abs() < 1e-9, "exact mean = sum/count, {mean}");
        // Buckets: 37 within 50µs + 3 within 1000µs → estimate 121.25µs.
        let est = get(&merged, &["latency", "est_mean_us"])
            .and_then(Json::as_f64)
            .unwrap();
        assert!((est - 121.25).abs() < 1e-9, "{est}");
        let err = get(&merged, &["latency", "est_error"])
            .and_then(Json::as_f64)
            .unwrap();
        assert!((err - (121.25 - 40.0) / 40.0).abs() < 1e-9, "{err}");
    }

    #[test]
    fn histogram_sums_by_bucket_and_quantiles_follow() {
        let docs = vec![worker_doc(10, 8, 2, 9, 1), worker_doc(30, 24, 6, 28, 2)];
        let merged = merge_worker_stats(&docs);
        let hist = get(&merged, &["latency", "histogram"])
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(hist[0].get("count").and_then(Json::as_u64), Some(37));
        assert_eq!(hist[1].get("count").and_then(Json::as_u64), Some(3));
        // 37 of 40 within 50µs → p50 in the first bucket, p99 in the second.
        assert_eq!(get_u64(&merged, &["latency", "p50_us"]), 50);
        assert_eq!(get_u64(&merged, &["latency", "p99_us"]), 1000);
    }

    #[test]
    fn open_bucket_quantile_matches_the_worker_convention() {
        // All traffic in the open-ended top bucket: the worker's own
        // latency_quantile_us reports u64::MAX there, and the merged view
        // must agree rather than invent a finite bound.
        let hist: Vec<Bucket> = vec![(Some(50), 0), (Some(1000), 0), (None, 7)];
        assert_eq!(quantile_us(&hist, 0.50), u64::MAX);
        assert_eq!(quantile_us(&hist, 0.99), u64::MAX);
        assert_eq!(quantile_us(&[], 0.99), 0);
    }

    #[test]
    fn empty_input_merges_to_zeros() {
        let merged = merge_worker_stats(&[]);
        assert_eq!(get_u64(&merged, &["requests", "completed"]), 0);
        assert_eq!(get_u64(&merged, &["latency", "p50_us"]), 0);
    }
}
