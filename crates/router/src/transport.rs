//! The forward path abstraction: how the router talks to one worker.
//!
//! Everything the proxy path, the health prober, the stats fan-out, and
//! the shutdown cascade need from a worker fits one small trait —
//! canonical request bytes in, response bytes out — so the router is
//! indifferent to *where* the worker runs:
//!
//! * [`HttpTransport`](crate::upstream::HttpTransport) — pooled
//!   keep-alive HTTP/1.1 to a remote (or loopback) worker process.
//! * [`LocalTransport`] — direct dispatch into an in-process
//!   [`WorkerCore`]: no socket, no HTTP reframe, no loopback hop. This
//!   is what collapses the router's single-box throughput tax.
//!
//! The distinction the router's failure handling depends on —
//! backpressure versus death — is carried by [`ForwardError`] for both.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tenet_server::WorkerCore;

/// Why a [`Transport::call`] failed — the distinction drives the
/// router's reaction.
#[derive(Debug)]
pub enum ForwardError {
    /// The worker refused new work but is not dead (every connection
    /// slot in flight past the wait deadline). The right reaction is
    /// backpressure (`503`), **not** eviction — evicting a busy worker
    /// would rehash its whole key population and throw away its warm
    /// cache.
    Busy,
    /// The transport failed: connect refused, reset, timeout
    /// mid-exchange, or (locally) a drained core. The worker is presumed
    /// dead; evict and re-route.
    Transport(std::io::Error),
}

impl std::fmt::Display for ForwardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForwardError::Busy => write!(f, "connection slots busy"),
            ForwardError::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

/// One way of reaching one worker. Implementations must be safe to call
/// from many router threads at once.
pub trait Transport: Send + Sync {
    /// Forwards one request and returns the worker's `(status, body)`.
    /// The timeouts bound the exchange where a wire is involved; an
    /// in-process dispatch runs on the caller's thread and ignores them.
    fn call(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError>;

    /// [`call`](Transport::call), but with the canonical form the router
    /// already computed for routing (`canonical_request(method, path,
    /// body)`). Wire transports ignore it — the worker re-derives it on
    /// its side of the socket. An in-process transport hands it straight
    /// to the worker core, so the JSON-normalization cost is paid once
    /// per request instead of twice.
    fn call_keyed(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        _canon: &str,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        self.call(method, path, body, read_timeout, write_timeout)
    }

    /// [`call_keyed`](Transport::call_keyed), plus the request's
    /// remaining deadline. Implementations propagate it to the worker
    /// (as `X-Tenet-Deadline-Ms` over a wire, directly in-process) and
    /// clamp their own read timeouts to the remaining budget, so a
    /// short-deadline request never waits out the full upstream timeout.
    /// The default ignores the deadline — correct for transports (mocks,
    /// wrappers) that answer faster than any plausible budget.
    #[allow(clippy::too_many_arguments)]
    fn call_with_deadline(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        canon: &str,
        read_timeout: Duration,
        write_timeout: Duration,
        deadline: Option<Instant>,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        let _ = deadline;
        self.call_keyed(method, path, body, canon, read_timeout, write_timeout)
    }

    /// [`call_with_deadline`](Transport::call_with_deadline), plus the
    /// request's trace id. Implementations propagate it to the worker
    /// (as `X-Tenet-Trace-Id` over a wire, directly in-process) so the
    /// worker records its own tier of the request's timeline under the
    /// same id. The default drops the id — fine for transports (mocks,
    /// wrappers) that have no worker-side trace ring behind them.
    #[allow(clippy::too_many_arguments)]
    fn call_traced(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        canon: &str,
        read_timeout: Duration,
        write_timeout: Duration,
        deadline: Option<Instant>,
        trace_id: Option<u64>,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        let _ = trace_id;
        self.call_with_deadline(
            method,
            path,
            body,
            canon,
            read_timeout,
            write_timeout,
            deadline,
        )
    }

    /// One control message (`/v1/shutdown` cascades) that must get
    /// through even when the data path is saturated or the worker was
    /// marked dead — delivered outside the pooled/drain-gated path.
    fn send_control(
        &self,
        method: &str,
        path: &str,
        timeout: Duration,
    ) -> std::io::Result<(u16, Vec<u8>)>;

    /// One liveness probe, outside the data path.
    fn probe(&self, timeout: Duration) -> bool;

    /// Where this worker lives, for stats/logs (`host:port`, or
    /// `local`).
    fn endpoint(&self) -> String;

    /// Transport flavor for stats/logs: `"http"` or `"local"`.
    fn kind(&self) -> &'static str;

    /// Whether hedging a slow call to a replica makes sense. True for
    /// anything with a wire in the middle; false for in-process dispatch,
    /// which runs synchronously on the caller's thread — there is no
    /// waiting to hedge against, and the replica would only duplicate
    /// work on the same box.
    fn hedgeable(&self) -> bool {
        true
    }

    /// Hook invoked when the router marks this worker dead (pooled
    /// connections should be dropped; they point at a corpse).
    fn on_dead(&self) {}
}

/// Direct in-process dispatch into a worker's [`WorkerCore`]: the
/// request bytes go straight into the worker's handler on the calling
/// thread and the response bytes come straight back — no socket, no
/// HTTP reframe. A drained core answers [`ForwardError::Transport`] on
/// the data path (in-process "worker death"), while control messages and
/// warm writes still land.
pub struct LocalTransport {
    core: Arc<WorkerCore>,
}

impl LocalTransport {
    /// Wraps an in-process worker core.
    pub fn new(core: Arc<WorkerCore>) -> LocalTransport {
        LocalTransport { core }
    }

    /// The wrapped core (test harnesses drain it to simulate a kill).
    pub fn core(&self) -> Arc<WorkerCore> {
        Arc::clone(&self.core)
    }
}

impl Transport for LocalTransport {
    fn call(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        _read_timeout: Duration,
        _write_timeout: Duration,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        if self.core.is_draining() {
            return Err(ForwardError::Transport(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "local worker drained",
            )));
        }
        Ok(self.core.handle(method, path, body))
    }

    fn call_keyed(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        canon: &str,
        _read_timeout: Duration,
        _write_timeout: Duration,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        if self.core.is_draining() {
            return Err(ForwardError::Transport(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "local worker drained",
            )));
        }
        Ok(self.core.handle_canonical(method, path, body, Some(canon)))
    }

    fn call_with_deadline(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        canon: &str,
        _read_timeout: Duration,
        _write_timeout: Duration,
        deadline: Option<Instant>,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        if self.core.is_draining() {
            return Err(ForwardError::Transport(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "local worker drained",
            )));
        }
        Ok(self
            .core
            .handle_with_deadline(method, path, body, Some(canon), deadline))
    }

    #[allow(clippy::too_many_arguments)]
    fn call_traced(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        canon: &str,
        _read_timeout: Duration,
        _write_timeout: Duration,
        deadline: Option<Instant>,
        trace_id: Option<u64>,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        if self.core.is_draining() {
            return Err(ForwardError::Transport(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "local worker drained",
            )));
        }
        // The worker stores its own tier's record in its trace ring; the
        // router assembles the cross-tier view from there, so the record
        // returned here is deliberately dropped.
        let (status, bytes, _record) = self.core.handle_traced(
            method,
            path,
            body,
            Some(canon),
            deadline,
            trace_id,
            tenet_core::obs::EdgeTimings::default(),
        );
        Ok((status, bytes))
    }

    fn send_control(
        &self,
        method: &str,
        path: &str,
        _timeout: Duration,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        // Deliberately not drain-gated: a shutdown cascade must reach a
        // worker that is already draining (idempotently) — mirroring the
        // HTTP transport's fresh-connection control path.
        let (status, body) = self.core.handle(method, path, b"");
        Ok((status, body.as_ref().clone()))
    }

    fn probe(&self, _timeout: Duration) -> bool {
        !self.core.is_draining()
    }

    fn endpoint(&self) -> String {
        "local".into()
    }

    fn kind(&self) -> &'static str {
        "local"
    }

    fn hedgeable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_server::ServerConfig;

    fn local() -> LocalTransport {
        LocalTransport::new(WorkerCore::new(ServerConfig {
            addr: "unused".into(),
            ..Default::default()
        }))
    }

    #[test]
    fn local_dispatch_answers_without_a_socket() {
        let t = local();
        let (status, body) = t
            .call("GET", "/v1/healthz", b"", Duration::ZERO, Duration::ZERO)
            .unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("ok"));
        assert!(t.probe(Duration::ZERO));
        assert!(!t.hedgeable());
        assert_eq!(t.kind(), "local");
    }

    #[test]
    fn drained_core_fails_data_path_but_not_control() {
        let t = local();
        t.core().drain();
        assert!(matches!(
            t.call("GET", "/v1/healthz", b"", Duration::ZERO, Duration::ZERO),
            Err(ForwardError::Transport(_))
        ));
        assert!(!t.probe(Duration::ZERO));
        // The control path still reaches the (already draining) worker.
        let (status, _) = t
            .send_control("POST", "/v1/shutdown", Duration::ZERO)
            .unwrap();
        assert_eq!(status, 200);
    }
}
