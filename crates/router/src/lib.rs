//! # tenet-router
//!
//! A std-only consistent-hash sharding front tier for the TENET analysis
//! service — the ROADMAP's "horizontal scale needs a sharded dedup layer
//! in front of N processes" step.
//!
//! TENET's analyses are pure functions of the request text, so the
//! cluster's hottest resource is each worker's dedup cache. The router
//! exploits that: every `POST /v1/analyze` / `POST /v1/dse` request is
//! canonicalized ([`tenet_server::canonical_request`]), hashed
//! ([`tenet_server::canonical_key`]), and placed on a consistent-hash
//! [ring](ring::HashRing) with virtual nodes — a repeated query always
//! lands on the shard that already owns its cached answer, and a worker
//! loss remaps only ≈ `1/N` of the key population.
//!
//! The forward path is abstracted behind the [`Transport`] trait: a
//! worker can be a separate process reached over pooled keep-alive HTTP
//! ([`upstream::HttpTransport`]) or an in-process
//! [`tenet_server::WorkerCore`] dispatched to directly
//! ([`transport::LocalTransport`]) with no socket or HTTP reframe —
//! which is how the single-box topology escapes the loopback tax.
//! Each key additionally replicates onto its `R-1` ring successors
//! (write-through after the first answer, default `R = 2`), and slow
//! remote primaries are hedged against the first replica — so a worker
//! death degrades to a warm hit on the promoted successor instead of a
//! cold recompute storm.
//!
//! ## API (mirrors the worker, plus cluster semantics)
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/analyze`, `POST /v1/dse` | proxied to the owning shard (hedged when slow); transport failure evicts + retries on the rehashed owner |
//! | `GET /v1/healthz` | router liveness + live-worker count |
//! | `GET /v1/stats` | fan-out: per-shard documents, the additive merge, router counters |
//! | `GET /metrics` | Prometheus text: merged worker families + `tenet_router_*` counters |
//! | `GET /v1/trace/<id>` | cross-tier span timeline: router record + live shards' records |
//! | `GET /v1/trace/slow?ms=N` | the router's recent-slowest request timelines |
//! | `POST /v1/shutdown` | cascaded drain: workers first, then the router |
//!
//! ## Layers
//!
//! * [`ring`] — the consistent-hash ring (virtual nodes, deterministic
//!   placement, replica owner sets; invariants locked by
//!   `tests/ring_props.rs`).
//! * [`transport`] — the [`Transport`] trait and the in-process
//!   [`transport::LocalTransport`].
//! * [`upstream`] — [`upstream::HttpTransport`], pooled keep-alive
//!   connections to a worker process.
//! * [`merge`] — additive merge of per-worker `/v1/stats` documents.
//! * [`fault`] — [`fault::FaultTransport`], a seeded fault-injection
//!   wrapper around any transport (latency spikes, drops, 5xx bursts,
//!   torn responses, flap windows) for chaos tests and drills.
//! * [`router`] — accept loop, proxy path (deadline propagation,
//!   bounded jittered retries, per-shard circuit breakers, per-client
//!   admission control, hedging, replication write-through), fan-outs,
//!   health prober, cascaded drain.
//!
//! Like the worker, the router is loopback-oriented: no TLS, no
//! authentication — anything beyond local deployment needs a
//! terminating proxy in front.
//!
//! ```no_run
//! let worker = tenet_server::Server::spawn(tenet_server::ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..Default::default()
//! })?;
//! let config = tenet_router::RouterConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: vec![worker.addr().to_string()],
//!     ..Default::default()
//! };
//! let router = tenet_router::Router::bind(config)?;
//! println!("routing on {}", router.local_addr());
//! router.run()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod merge;
pub mod ring;
mod router;
pub mod transport;
pub mod upstream;

pub use fault::{FaultPlan, FaultTransport};
pub use router::{
    Router, RouterConfig, RouterHandle, RouterState, RouterStats, Shard, SpawnedRouter, WorkerSpec,
};
pub use transport::{ForwardError, LocalTransport, Transport};
pub use upstream::HttpTransport;
