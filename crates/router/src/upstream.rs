//! The HTTP transport: pooled keep-alive connections to a worker
//! process reachable over a socket (remote box or loopback).
//!
//! The router proxies every sharded request over a pooled connection to
//! the owning worker, so the steady-state per-request cost is one
//! round trip — no connect handshake. A pooled connection that fails
//! (stale keep-alive after a worker restart, read timeout) is retried
//! once on a fresh connect before the worker is reported dead; callers
//! then evict it from the ring and re-route. Shard identity, liveness
//! belief, and routing counters live in the router's
//! [`Shard`](crate::router::Shard), not here — this type only knows how
//! to move bytes.

use crate::transport::{ForwardError, Transport};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tenet_server::http::ResponseReader;

/// One pooled connection: the write half plus its buffered reader over a
/// clone of the same socket.
struct Conn {
    stream: TcpStream,
    reader: ResponseReader<TcpStream>,
}

/// The connection pool's guarded state: idle connections plus the count
/// of every socket currently open to the worker (idle *and* in use).
#[derive(Default)]
struct PoolState {
    idle: Vec<Conn>,
    open: usize,
}

/// Pooled keep-alive HTTP/1.1 to one worker process.
///
/// The pool bounds `open` — idle plus in-flight — at `limit`. The bound
/// is load-bearing, not an optimization: the worker dedicates a thread
/// to each connection for its keep-alive lifetime, so an unbounded pool
/// of parked keep-alive sockets would occupy every worker thread and
/// starve fresh connections (including health probes, which would then
/// evict a perfectly healthy worker). A spawner must size the worker's
/// thread pool at `limit + 2` or better (probe + slack).
pub struct HttpTransport {
    /// The worker's socket address.
    pub addr: SocketAddr,
    pool: Mutex<PoolState>,
    pool_freed: Condvar,
    limit: usize,
}

impl HttpTransport {
    /// A transport to the worker at `addr`, keeping at most `limit`
    /// connections open to it.
    pub fn new(addr: SocketAddr, limit: usize) -> HttpTransport {
        HttpTransport {
            addr,
            pool: Mutex::new(PoolState::default()),
            pool_freed: Condvar::new(),
            limit: limit.max(1),
        }
    }

    /// Drops every idle pooled connection (they point at a corpse after
    /// a worker death, or at a restarted process that won't recognize
    /// them).
    fn clear_pool(&self) {
        let mut pool = self.pool.lock().expect("pool poisoned");
        pool.open -= pool.idle.len();
        pool.idle.clear();
        drop(pool);
        self.pool_freed.notify_all();
    }

    /// Takes a connection: a pooled idle one, a fresh one when under the
    /// limit, or — with every slot in flight — waits up to `wait` for a
    /// peer to finish. Returns the connection and whether it was pooled.
    fn acquire(
        &self,
        read: Duration,
        write: Duration,
        wait: Duration,
    ) -> Result<(Conn, bool), ForwardError> {
        let deadline = std::time::Instant::now() + wait;
        let mut pool = self.pool.lock().expect("pool poisoned");
        loop {
            if let Some(conn) = pool.idle.pop() {
                return Ok((conn, true));
            }
            if pool.open < self.limit {
                pool.open += 1;
                drop(pool);
                // Connect outside the lock; roll the count back on failure.
                return match self.connect(read, write) {
                    Ok(conn) => Ok((conn, false)),
                    Err(e) => {
                        self.release_slot();
                        Err(ForwardError::Transport(e))
                    }
                };
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(ForwardError::Busy);
            }
            let (guard, _) = self
                .pool_freed
                .wait_timeout(pool, deadline - now)
                .expect("pool poisoned");
            pool = guard;
        }
    }

    /// Returns a finished connection to the idle pool for reuse.
    fn park(&self, conn: Conn) {
        let mut pool = self.pool.lock().expect("pool poisoned");
        pool.idle.push(conn);
        drop(pool);
        self.pool_freed.notify_one();
    }

    /// Accounts for a connection that was dropped instead of parked.
    fn release_slot(&self) {
        let mut pool = self.pool.lock().expect("pool poisoned");
        pool.open = pool.open.saturating_sub(1);
        drop(pool);
        self.pool_freed.notify_one();
    }

    fn connect(&self, read_timeout: Duration, write_timeout: Duration) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&self.addr, read_timeout.max(write_timeout))?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        stream.set_nodelay(true)?;
        let reader = ResponseReader::new(stream.try_clone()?);
        Ok(Conn { stream, reader })
    }

    fn send_on(
        conn: &mut Conn,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        Self::send_on_with(conn, method, path, body, None, None)
    }

    /// [`send_on`](Self::send_on), optionally forwarding the remaining
    /// deadline budget as `X-Tenet-Deadline-Ms` (so the worker can
    /// degrade instead of computing past it) and the request's trace id
    /// as `X-Tenet-Trace-Id` (so the worker's tier of the timeline lands
    /// under the same id).
    fn send_on_with(
        conn: &mut Conn,
        method: &str,
        path: &str,
        body: &[u8],
        deadline_ms: Option<u64>,
        trace_id: Option<u64>,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let deadline_header = match deadline_ms {
            Some(ms) => format!("X-Tenet-Deadline-Ms: {ms}\r\n"),
            None => String::new(),
        };
        let trace_header = match trace_id {
            Some(id) => format!("X-Tenet-Trace-Id: {id:016x}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: tenet-router\r\nContent-Type: application/json\r\n\
             {deadline_header}{trace_header}Content-Length: {}\r\n\r\n",
            body.len()
        );
        conn.stream.write_all(head.as_bytes())?;
        if !body.is_empty() {
            conn.stream.write_all(body)?;
        }
        conn.reader.next_response()
    }

    /// One request on a fresh, unpooled connection. The worker's
    /// `limit + 2` thread headroom exists exactly for these.
    fn send_once(
        &self,
        method: &str,
        path: &str,
        timeout: Duration,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let mut conn = self.connect(timeout, timeout)?;
        Self::send_on(&mut conn, method, path, b"")
    }

    /// The shared forwarding path behind [`Transport::call`] and
    /// [`Transport::call_with_deadline`]: pooled keep-alive reuse with a
    /// single fresh retry on a stale socket. With a deadline, the socket
    /// read timeout is clamped to ~1.5× the remaining budget (a degraded
    /// worker answer is still worth waiting slightly past expiry for —
    /// it beats a torn connection) and the remaining budget rides along
    /// as `X-Tenet-Deadline-Ms`.
    #[allow(clippy::too_many_arguments)]
    fn call_impl(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        read_timeout: Duration,
        write_timeout: Duration,
        deadline: Option<Instant>,
        trace_id: Option<u64>,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        let (read_timeout, deadline_ms) = match deadline {
            Some(dl) => {
                let remaining = dl.saturating_duration_since(Instant::now());
                let clamped = (remaining + remaining / 2 + Duration::from_millis(20))
                    .min(read_timeout.max(Duration::from_millis(1)));
                (
                    clamped,
                    Some(remaining.as_millis().min(u64::MAX as u128) as u64),
                )
            }
            None => (read_timeout, None),
        };
        let (mut conn, was_pooled) = self.acquire(read_timeout, write_timeout, read_timeout)?;
        // Pooled sockets keep the timeouts of the call that created
        // them; re-arm for this call so a short-deadline fan-out is not
        // silently governed by an earlier long-deadline proxy call.
        let _ = conn.stream.set_read_timeout(Some(read_timeout));
        let _ = conn.stream.set_write_timeout(Some(write_timeout));
        let (conn, (status, bytes)) =
            match Self::send_on_with(&mut conn, method, path, body, deadline_ms, trace_id) {
                Ok(reply) => (conn, reply),
                Err(first_err) if was_pooled => {
                    // Stale keep-alive; one fresh attempt before giving up.
                    // The slot stays ours: the dead socket closes and the
                    // fresh one takes its place in the accounting.
                    drop(conn);
                    let _ = first_err;
                    let retried = self.connect(read_timeout, write_timeout).and_then(|mut c| {
                        Self::send_on_with(&mut c, method, path, body, deadline_ms, trace_id)
                            .map(|reply| (c, reply))
                    });
                    match retried {
                        Ok(pair) => pair,
                        Err(e) => {
                            self.release_slot();
                            return Err(ForwardError::Transport(e));
                        }
                    }
                }
                Err(e) => {
                    self.release_slot();
                    return Err(ForwardError::Transport(e));
                }
            };
        self.park(conn);
        Ok((status, Arc::new(bytes)))
    }
}

impl Transport for HttpTransport {
    /// Proxies one request, reusing a pooled keep-alive connection when
    /// one exists. A failure on a *pooled* connection is retried once on
    /// a fresh connect (the worker may simply have closed an idle
    /// socket); a failure on a fresh connection is the worker's answer —
    /// the caller should evict and re-route on
    /// [`ForwardError::Transport`], and shed load (never evict) on
    /// [`ForwardError::Busy`].
    fn call(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        self.call_impl(method, path, body, read_timeout, write_timeout, None, None)
    }

    fn call_with_deadline(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        _canon: &str,
        read_timeout: Duration,
        write_timeout: Duration,
        deadline: Option<Instant>,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        self.call_impl(
            method,
            path,
            body,
            read_timeout,
            write_timeout,
            deadline,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn call_traced(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        _canon: &str,
        read_timeout: Duration,
        write_timeout: Duration,
        deadline: Option<Instant>,
        trace_id: Option<u64>,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        self.call_impl(
            method,
            path,
            body,
            read_timeout,
            write_timeout,
            deadline,
            trace_id,
        )
    }

    /// Control messages (`/v1/shutdown` cascades) go on a fresh unpooled
    /// connection so they get through even when every pool slot is busy
    /// or the worker was evicted and its pool cleared.
    fn send_control(
        &self,
        method: &str,
        path: &str,
        timeout: Duration,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        self.send_once(method, path, timeout)
    }

    /// One liveness probe: `GET /v1/healthz` on a short-deadline fresh
    /// connection (pooled sockets would mask a dead worker behind a
    /// buffered response).
    fn probe(&self, timeout: Duration) -> bool {
        matches!(self.send_once("GET", "/v1/healthz", timeout), Ok((200, _)))
    }

    fn endpoint(&self) -> String {
        self.addr.to_string()
    }

    fn kind(&self) -> &'static str {
        "http"
    }

    fn on_dead(&self) {
        self.clear_pool();
    }
}
