//! One registered worker: its address, liveness, pooled keep-alive
//! connections, and per-shard routing counters.
//!
//! The router proxies every sharded request over a pooled connection to
//! the owning worker, so the steady-state per-request cost is one
//! loopback round trip — no connect handshake. A pooled connection that
//! fails (stale keep-alive after a worker restart, read timeout) is
//! retried once on a fresh connect before the worker is reported dead;
//! callers then evict it from the ring and re-route.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;
use tenet_server::http::ResponseReader;

/// Why a [`forward`](Upstream::forward) failed — the distinction drives
/// the router's reaction.
#[derive(Debug)]
pub enum ForwardError {
    /// Every connection slot stayed in flight past the wait deadline.
    /// The worker itself may be perfectly healthy (e.g. saturated by
    /// long cold sweeps); the right reaction is backpressure (`503`),
    /// **not** eviction — evicting a busy worker would rehash its whole
    /// key population and throw away its warm cache.
    Busy,
    /// The transport failed: connect refused, reset, or timeout
    /// mid-exchange. The worker is presumed dead; evict and re-route.
    Transport(std::io::Error),
}

impl std::fmt::Display for ForwardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForwardError::Busy => write!(f, "connection slots busy"),
            ForwardError::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

/// One pooled connection: the write half plus its buffered reader over a
/// clone of the same socket.
struct Conn {
    stream: TcpStream,
    reader: ResponseReader<TcpStream>,
}

/// The connection pool's guarded state: idle connections plus the count
/// of every socket currently open to the worker (idle *and* in use).
#[derive(Default)]
struct PoolState {
    idle: Vec<Conn>,
    open: usize,
}

/// A worker registered with the router.
///
/// The pool bounds `open` — idle plus in-flight — at `limit`. The bound
/// is load-bearing, not an optimization: the worker dedicates a thread
/// to each connection for its keep-alive lifetime, so an unbounded pool
/// of parked keep-alive sockets would occupy every worker thread and
/// starve fresh connections (including health probes, which would then
/// evict a perfectly healthy worker). A spawner must size the worker's
/// thread pool at `limit + 2` or better (probe + slack).
pub struct Upstream {
    /// Stable index — the identity the hash ring places on its circle.
    pub index: usize,
    /// The worker's socket address.
    pub addr: SocketAddr,
    alive: AtomicBool,
    pool: Mutex<PoolState>,
    pool_freed: Condvar,
    limit: usize,
    /// Sharded requests proxied to this worker — incremented by the
    /// router's proxy path only (fan-out stats fetches and probes don't
    /// count), so it is the per-shard hit distribution `servload
    /// --router` records.
    pub routed: AtomicU64,
    /// Forward attempts that failed at the transport layer.
    pub errors: AtomicU64,
}

impl Upstream {
    /// A new worker, presumed alive until a probe or forward says not,
    /// keeping at most `limit` connections open to it.
    pub fn new(index: usize, addr: SocketAddr, limit: usize) -> Upstream {
        Upstream {
            index,
            addr,
            alive: AtomicBool::new(true),
            pool: Mutex::new(PoolState::default()),
            pool_freed: Condvar::new(),
            limit: limit.max(1),
            routed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Current liveness belief.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Updates liveness; on death the idle pool is dropped (those sockets
    /// point at a corpse).
    pub fn set_alive(&self, alive: bool) {
        self.alive.store(alive, Ordering::Release);
        if !alive {
            let mut pool = self.pool.lock().expect("pool poisoned");
            pool.open -= pool.idle.len();
            pool.idle.clear();
            drop(pool);
            self.pool_freed.notify_all();
        }
    }

    /// Takes a connection: a pooled idle one, a fresh one when under the
    /// limit, or — with every slot in flight — waits up to `wait` for a
    /// peer to finish. Returns the connection and whether it was pooled.
    fn acquire(
        &self,
        read: Duration,
        write: Duration,
        wait: Duration,
    ) -> Result<(Conn, bool), ForwardError> {
        let deadline = std::time::Instant::now() + wait;
        let mut pool = self.pool.lock().expect("pool poisoned");
        loop {
            if let Some(conn) = pool.idle.pop() {
                return Ok((conn, true));
            }
            if pool.open < self.limit {
                pool.open += 1;
                drop(pool);
                // Connect outside the lock; roll the count back on failure.
                return match self.connect(read, write) {
                    Ok(conn) => Ok((conn, false)),
                    Err(e) => {
                        self.release_slot();
                        Err(ForwardError::Transport(e))
                    }
                };
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(ForwardError::Busy);
            }
            let (guard, _) = self
                .pool_freed
                .wait_timeout(pool, deadline - now)
                .expect("pool poisoned");
            pool = guard;
        }
    }

    /// Returns a finished connection to the idle pool for reuse.
    fn park(&self, conn: Conn) {
        let mut pool = self.pool.lock().expect("pool poisoned");
        pool.idle.push(conn);
        drop(pool);
        self.pool_freed.notify_one();
    }

    /// Accounts for a connection that was dropped instead of parked.
    fn release_slot(&self) {
        let mut pool = self.pool.lock().expect("pool poisoned");
        pool.open = pool.open.saturating_sub(1);
        drop(pool);
        self.pool_freed.notify_one();
    }

    fn connect(&self, read_timeout: Duration, write_timeout: Duration) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&self.addr, read_timeout.max(write_timeout))?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        stream.set_nodelay(true)?;
        let reader = ResponseReader::new(stream.try_clone()?);
        Ok(Conn { stream, reader })
    }

    fn send_on(
        conn: &mut Conn,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: tenet-router\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n",
            body.len()
        );
        conn.stream.write_all(head.as_bytes())?;
        if !body.is_empty() {
            conn.stream.write_all(body)?;
        }
        conn.reader.next_response()
    }

    /// Proxies one request to this worker, reusing a pooled keep-alive
    /// connection when one exists. A failure on a *pooled* connection is
    /// retried once on a fresh connect (the worker may simply have closed
    /// an idle socket); a failure on a fresh connection is the worker's
    /// answer — the caller should evict and re-route on
    /// [`ForwardError::Transport`], and shed load (never evict) on
    /// [`ForwardError::Busy`].
    pub fn forward(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<(u16, Vec<u8>), ForwardError> {
        let (mut conn, was_pooled) = self.acquire(read_timeout, write_timeout, read_timeout)?;
        // Pooled sockets keep the timeouts of the call that created
        // them; re-arm for this call so a short-deadline fan-out is not
        // silently governed by an earlier long-deadline proxy call.
        let _ = conn.stream.set_read_timeout(Some(read_timeout));
        let _ = conn.stream.set_write_timeout(Some(write_timeout));
        let (conn, (status, bytes)) = match Self::send_on(&mut conn, method, path, body) {
            Ok(reply) => (conn, reply),
            Err(first_err) if was_pooled => {
                // Stale keep-alive; one fresh attempt before giving up.
                // The slot stays ours: the dead socket closes and the
                // fresh one takes its place in the accounting.
                drop(conn);
                let _ = first_err;
                let retried = self.connect(read_timeout, write_timeout).and_then(|mut c| {
                    Self::send_on(&mut c, method, path, body).map(|reply| (c, reply))
                });
                match retried {
                    Ok(pair) => pair,
                    Err(e) => {
                        self.release_slot();
                        return Err(ForwardError::Transport(e));
                    }
                }
            }
            Err(e) => {
                self.release_slot();
                return Err(ForwardError::Transport(e));
            }
        };
        self.park(conn);
        Ok((status, bytes))
    }

    /// One request on a fresh, unpooled connection — the delivery path
    /// for control messages (`/v1/shutdown` cascades) that must get
    /// through even when every pool slot is busy or the worker was
    /// evicted and its pool cleared. The worker's `limit + 2` thread
    /// headroom exists exactly for these.
    pub fn send_once(
        &self,
        method: &str,
        path: &str,
        timeout: Duration,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let mut conn = self.connect(timeout, timeout)?;
        Self::send_on(&mut conn, method, path, b"")
    }

    /// One liveness probe: `GET /v1/healthz` on a short-deadline fresh
    /// connection (pooled sockets would mask a dead worker behind a
    /// buffered response).
    pub fn probe_health(&self, timeout: Duration) -> bool {
        matches!(self.send_once("GET", "/v1/healthz", timeout), Ok((200, _)))
    }
}
