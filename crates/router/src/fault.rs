//! Deterministic fault injection for chaos testing the serving stack.
//!
//! [`FaultTransport`] wraps any [`Transport`] and injects failures on the
//! data path (`/v1/analyze`, `/v1/dse`) and liveness probes according to
//! a seeded [`FaultPlan`]: added latency, dropped connections, 5xx
//! bursts, torn (truncated) responses, and periodic flapping where the
//! worker goes entirely dark. Every decision is a pure function of the
//! plan's seed and a per-transport call counter — no wall-clock or OS
//! entropy — so a chaos run replays identically and test assertions can
//! be exact.
//!
//! Operator paths are deliberately exempt: `/v1/stats` fan-out,
//! `/v1/warm` replication writes, and control messages (shutdown
//! cascades) always pass through, mirroring real incidents where the
//! serving path degrades long before the management plane does.

use crate::transport::{ForwardError, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// splitmix64 finalizer: the same cheap, well-mixed hash the consistent
/// ring uses for vnode placement, reused here to turn `(seed, call
/// index, fault kind)` into an independent uniform draw.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A seeded, deterministic description of what to break and how often.
/// All rates are per-mille (‰) of data-path calls; `Default` injects
/// nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every injection decision; two transports with the same
    /// seed and call history fail identically.
    pub seed: u64,
    /// ‰ of calls delayed by [`latency`](FaultPlan::latency) before
    /// dispatch (a slow-but-alive shard).
    pub latency_per_mille: u32,
    /// The injected delay for latency faults.
    pub latency: Duration,
    /// ‰ of calls failing as a reset connection (worker reachable,
    /// socket torn down mid-exchange).
    pub drop_per_mille: u32,
    /// ‰ of calls answered with an injected `503` burst response.
    pub err_per_mille: u32,
    /// ‰ of calls failing as a torn response (unexpected EOF mid-body).
    pub torn_per_mille: u32,
    /// Call-index period of the flap cycle; `0` disables flapping.
    pub flap_period: u64,
    /// Calls at the start of each period during which the worker is
    /// entirely dark (data calls fail, probes report dead).
    pub flap_down: u64,
    /// When `Some(n)`, a multi-worker spawner (the CLI) applies this plan
    /// only to worker `n`; `None` applies it to every worker. The
    /// transport itself ignores the field.
    pub only_worker: Option<usize>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            latency_per_mille: 0,
            latency: Duration::from_millis(10),
            drop_per_mille: 0,
            err_per_mille: 0,
            torn_per_mille: 0,
            flap_period: 0,
            flap_down: 0,
            only_worker: None,
        }
    }
}

impl FaultPlan {
    /// Parses the compact `key=value[,key=value]...` spelling used by
    /// `--fault-plan`. Keys: `seed`, `latency_pm`, `latency_ms`,
    /// `drop_pm`, `err_pm`, `torn_pm`, `flap_period`, `flap_down`,
    /// `worker`. Example: `worker=0,seed=7,flap_period=40,flap_down=12`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry `{part}` is not key=value"))?;
            let number: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault-plan `{key}` value `{value}` is not a number"))?;
            let pm = |n: u64| -> Result<u32, String> {
                if n > 1000 {
                    return Err(format!(
                        "fault-plan `{key}` is per-mille; max 1000, got {n}"
                    ));
                }
                Ok(n as u32)
            };
            match key.trim() {
                "seed" => plan.seed = number,
                "latency_pm" => plan.latency_per_mille = pm(number)?,
                "latency_ms" => plan.latency = Duration::from_millis(number),
                "drop_pm" => plan.drop_per_mille = pm(number)?,
                "err_pm" => plan.err_per_mille = pm(number)?,
                "torn_pm" => plan.torn_per_mille = pm(number)?,
                "flap_period" => plan.flap_period = number,
                "flap_down" => plan.flap_down = number,
                "worker" => plan.only_worker = Some(number as usize),
                other => return Err(format!("unknown fault-plan key `{other}`")),
            }
        }
        if plan.flap_down > plan.flap_period {
            return Err(format!(
                "fault-plan flap_down ({}) exceeds flap_period ({})",
                plan.flap_down, plan.flap_period
            ));
        }
        Ok(plan)
    }
}

/// What the plan decided for one data-path call.
enum Injected {
    /// Proceed to the wrapped transport (possibly after injected sleep).
    Pass,
    /// Answer with an injected upstream 5xx burst response.
    Respond(u16, Arc<Vec<u8>>),
    /// Fail with an injected transport error.
    Fail(ForwardError),
}

/// A [`Transport`] decorator that injects the wrapped [`FaultPlan`].
pub struct FaultTransport {
    inner: Box<dyn Transport>,
    plan: FaultPlan,
    calls: AtomicU64,
}

impl FaultTransport {
    /// Wraps `inner` with the given plan. Wrapping is composable: a
    /// flap-only plan around a latency-only plan applies both.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan) -> FaultTransport {
        FaultTransport {
            inner,
            plan,
            calls: AtomicU64::new(0),
        }
    }

    /// Whether call index `i` falls in a flap-down window.
    fn flapped_down(&self, i: u64) -> bool {
        self.plan.flap_period > 0 && i % self.plan.flap_period < self.plan.flap_down
    }

    /// Draws the per-mille decision for fault `kind` at call index `i`.
    fn roll(&self, i: u64, kind: u64, per_mille: u32) -> bool {
        per_mille > 0
            && mix(self.plan.seed ^ i.wrapping_mul(6).wrapping_add(kind)) % 1000 < per_mille as u64
    }

    /// Runs the plan for one data-path call: advances the call counter,
    /// sleeps injected latency inline, and decides the call's fate.
    fn gate(&self) -> Injected {
        let i = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.flapped_down(i) {
            return Injected::Fail(ForwardError::Transport(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "injected flap: worker dark this window",
            )));
        }
        if self.roll(i, 0, self.plan.latency_per_mille) {
            std::thread::sleep(self.plan.latency);
        }
        if self.roll(i, 1, self.plan.drop_per_mille) {
            return Injected::Fail(ForwardError::Transport(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected connection drop",
            )));
        }
        if self.roll(i, 2, self.plan.torn_per_mille) {
            return Injected::Fail(ForwardError::Transport(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "injected torn response",
            )));
        }
        if self.roll(i, 3, self.plan.err_per_mille) {
            let body = br#"{"error":{"kind":"injected","message":"injected 5xx burst"}}"#;
            return Injected::Respond(503, Arc::new(body.to_vec()));
        }
        Injected::Pass
    }

    /// Whether faults apply to this path at all. Only the sharded data
    /// path is chaos territory; stats, warm writes, and control messages
    /// model a management plane that outlives serving-path degradation.
    fn data_path(path: &str) -> bool {
        matches!(path, "/v1/analyze" | "/v1/dse")
    }
}

impl Transport for FaultTransport {
    fn call(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        if Self::data_path(path) {
            match self.gate() {
                Injected::Pass => {}
                Injected::Respond(status, bytes) => return Ok((status, bytes)),
                Injected::Fail(e) => return Err(e),
            }
        }
        self.inner
            .call(method, path, body, read_timeout, write_timeout)
    }

    fn call_keyed(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        canon: &str,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        if Self::data_path(path) {
            match self.gate() {
                Injected::Pass => {}
                Injected::Respond(status, bytes) => return Ok((status, bytes)),
                Injected::Fail(e) => return Err(e),
            }
        }
        self.inner
            .call_keyed(method, path, body, canon, read_timeout, write_timeout)
    }

    fn call_with_deadline(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        canon: &str,
        read_timeout: Duration,
        write_timeout: Duration,
        deadline: Option<Instant>,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        if Self::data_path(path) {
            match self.gate() {
                Injected::Pass => {}
                Injected::Respond(status, bytes) => return Ok((status, bytes)),
                Injected::Fail(e) => return Err(e),
            }
        }
        self.inner.call_with_deadline(
            method,
            path,
            body,
            canon,
            read_timeout,
            write_timeout,
            deadline,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn call_traced(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        canon: &str,
        read_timeout: Duration,
        write_timeout: Duration,
        deadline: Option<Instant>,
        trace_id: Option<u64>,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        if Self::data_path(path) {
            match self.gate() {
                Injected::Pass => {}
                Injected::Respond(status, bytes) => return Ok((status, bytes)),
                Injected::Fail(e) => return Err(e),
            }
        }
        self.inner.call_traced(
            method,
            path,
            body,
            canon,
            read_timeout,
            write_timeout,
            deadline,
            trace_id,
        )
    }

    fn send_control(
        &self,
        method: &str,
        path: &str,
        timeout: Duration,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        self.inner.send_control(method, path, timeout)
    }

    /// Probes observe flapping (the prober must see the worker die and
    /// revive) and advance the call counter, so flap windows keep
    /// cycling even while the router routes around the shard.
    fn probe(&self, timeout: Duration) -> bool {
        let i = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.flapped_down(i) {
            return false;
        }
        self.inner.probe(timeout)
    }

    fn endpoint(&self) -> String {
        self.inner.endpoint()
    }

    fn kind(&self) -> &'static str {
        "fault"
    }

    fn hedgeable(&self) -> bool {
        self.inner.hedgeable()
    }

    fn on_dead(&self) {
        self.inner.on_dead();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_server::{ServerConfig, WorkerCore};

    fn wrapped(plan: FaultPlan) -> FaultTransport {
        let core = WorkerCore::new(ServerConfig {
            addr: "unused".into(),
            ..Default::default()
        });
        FaultTransport::new(Box::new(crate::LocalTransport::new(core)), plan)
    }

    #[test]
    fn plan_parses_the_compact_spelling() {
        let plan = FaultPlan::parse(
            "worker=1, seed=42, latency_pm=100, latency_ms=20, flap_period=40, flap_down=12",
        )
        .unwrap();
        assert_eq!(plan.only_worker, Some(1));
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.latency_per_mille, 100);
        assert_eq!(plan.latency, Duration::from_millis(20));
        assert_eq!(plan.flap_period, 40);
        assert_eq!(plan.flap_down, 12);
        assert!(
            FaultPlan::parse("latency_pm=2000").is_err(),
            "per-mille cap"
        );
        assert!(FaultPlan::parse("flap_period=5,flap_down=9").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("seed").is_err());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn same_seed_same_outcomes() {
        let plan = FaultPlan {
            seed: 7,
            drop_per_mille: 300,
            ..Default::default()
        };
        let run = || -> Vec<bool> {
            let t = wrapped(plan.clone());
            (0..64)
                .map(|_| {
                    t.call("POST", "/v1/analyze", b"{}", Duration::ZERO, Duration::ZERO)
                        .is_err()
                })
                .collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded plans must replay identically");
        assert!(
            a.iter().any(|&e| e),
            "a 300\u{2030} drop rate must fire in 64 calls"
        );
        assert!(!a.iter().all(|&e| e), "and must not fire every time");
    }

    #[test]
    fn flap_windows_darken_data_path_and_probes_only() {
        let plan = FaultPlan {
            flap_period: 4,
            flap_down: 2,
            ..Default::default()
        };
        let t = wrapped(plan);
        // Calls 0,1 down; 2,3 up; 4,5 down...
        assert!(t
            .call("POST", "/v1/analyze", b"{}", Duration::ZERO, Duration::ZERO)
            .is_err());
        assert!(!t.probe(Duration::ZERO), "call 1 still in the down window");
        assert!(t.probe(Duration::ZERO), "call 2 is back up");
        // Operator paths neither fault nor advance the flap clock: the
        // next data call (index 3, an up window) still succeeds after
        // stats and healthz pass-throughs.
        let (status, _) = t
            .call("GET", "/v1/stats", b"", Duration::ZERO, Duration::ZERO)
            .unwrap();
        assert_eq!(status, 200);
        assert!(t
            .call(
                "POST",
                "/v1/analyze",
                b"not json",
                Duration::ZERO,
                Duration::ZERO
            )
            .is_ok());
    }

    #[test]
    fn injected_5xx_bursts_answer_without_reaching_the_worker() {
        let plan = FaultPlan {
            seed: 3,
            err_per_mille: 1000,
            ..Default::default()
        };
        let t = wrapped(plan);
        let (status, body) = t
            .call("POST", "/v1/dse", b"{}", Duration::ZERO, Duration::ZERO)
            .unwrap();
        assert_eq!(status, 503);
        assert!(String::from_utf8_lossy(&body).contains("injected"));
    }
}
