//! The in-process cluster harness: a real router and 2–3 real workers on
//! ephemeral loopback ports inside one test process, driven over raw
//! TCP. This is the proof the sharded service rests on:
//!
//! * **shard affinity** — a repeated key is computed exactly once
//!   cluster-wide and every repeat returns bit-identical bytes;
//! * **warm hit rate** — after the warm-up round, every shard serves its
//!   keys entirely from its dedup layer (per-shard hit rate 1.0);
//! * **rebalancing** — killing a worker mid-run yields zero 5xx for
//!   retried keys, and (with replication off) only the dead worker's
//!   keys recompute (~1/N);
//! * **replication** — with `R = 2`, a worker kill serves the victim's
//!   keys *warm* from the promoted successor replica: zero 5xx and zero
//!   new misses anywhere;
//! * **hedging** — a slow primary is raced against its replica after the
//!   latency threshold; the first answer wins, the loser is discarded,
//!   and counters attribute the request exactly once;
//! * **transports** — the same proofs hold when the workers are
//!   in-process [`WorkerCore`]s behind [`LocalTransport`]-style dispatch
//!   instead of HTTP processes;
//! * **stats fan-out** — the merged `/v1/stats` document equals the sum
//!   of the per-shard parts it was built from;
//! * **framing parity** — chunked transfer encoding is 501 at the
//!   router, exactly as at the worker.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tenet_core::json::Json;
use tenet_router::ring::HashRing;
use tenet_router::{
    FaultPlan, FaultTransport, ForwardError, LocalTransport, Router, RouterConfig, SpawnedRouter,
    Transport, WorkerSpec,
};
use tenet_server::http::read_response;
use tenet_server::{
    canonical_key, canonical_request, Server, ServerConfig, SpawnedServer, WorkerCore,
};

const GEMM_PROBLEM: &str = "\
for (i = 0; i < 4; i++)
  for (j = 0; j < 4; j++)
    for (k = 0; k < 4; k++)
      S: Y[i][j] += A[i][k] * B[k][j];

{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }

arch \"4x4\" { array = [4, 4] interconnect = systolic2d bandwidth = 8 }
";

/// A deliberately heavy kernel for the deadline test: big enough that a
/// cold single-threaded DSE sweep takes far longer than the test's 25 ms
/// deadline, so the clipped request provably never paid full latency.
const DSE_SLOW_PROBLEM: &str = "\
for (i = 0; i < 12; i++)
  for (j = 0; j < 12; j++)
    for (k = 0; k < 12; k++)
      S: Y[i][j] += A[i][k] * B[k][j];

{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }

arch \"4x4\" { array = [4, 4] interconnect = systolic2d bandwidth = 8 }
";

/// One booted cluster: N workers plus the router fronting them.
struct Cluster {
    workers: Vec<Option<SpawnedServer>>,
    router: Option<SpawnedRouter>,
}

impl Cluster {
    /// Boots `n` workers and a router on ephemeral ports.
    /// `health_interval == ZERO` disables the prober, making failure
    /// detection purely traffic-driven (deterministic for the tests that
    /// count rehashes).
    fn boot(n: usize, health_interval: Duration) -> Cluster {
        Cluster::boot_with(n, health_interval, |_| {})
    }

    /// [`Cluster::boot`] with a router-config tweak (replication factor,
    /// hedge threshold). Tests that assert exact dedup counters disable
    /// hedging: a cold analyze slower than the threshold would race a
    /// replica into a duplicate compute and perturb the counts.
    fn boot_with(
        n: usize,
        health_interval: Duration,
        tweak: impl FnOnce(&mut RouterConfig),
    ) -> Cluster {
        // Worker threads must exceed the router's per-worker connection
        // bound: parked keep-alive proxy sockets each hold a worker
        // thread, and probes/stats must never queue behind them.
        let worker_threads = RouterConfig::default().upstream_connections + 2;
        let workers: Vec<Option<SpawnedServer>> = (0..n)
            .map(|_| {
                Some(
                    Server::spawn(ServerConfig {
                        addr: "127.0.0.1:0".into(),
                        threads: worker_threads,
                        read_timeout: Duration::from_secs(2),
                        write_timeout: Duration::from_secs(2),
                        ..Default::default()
                    })
                    .expect("spawn worker"),
                )
            })
            .collect();
        let mut config = RouterConfig {
            addr: "127.0.0.1:0".into(),
            workers: workers
                .iter()
                .map(|w| w.as_ref().unwrap().addr().to_string())
                .collect(),
            threads: 2,
            health_interval,
            ..Default::default()
        };
        tweak(&mut config);
        let router = Router::spawn(config).expect("spawn router");
        Cluster {
            workers,
            router: Some(router),
        }
    }

    fn addr(&self) -> SocketAddr {
        self.router.as_ref().unwrap().addr()
    }

    /// Kills worker `i` (graceful drain + join); its port stops listening.
    fn kill_worker(&mut self, i: usize) {
        self.workers[i]
            .take()
            .expect("worker already killed")
            .shutdown_and_join()
            .expect("worker drain");
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(router) = self.router.take() {
            let _ = router.shutdown_and_join();
        }
        for w in self.workers.iter_mut().filter_map(Option::take) {
            let _ = w.shutdown_and_join();
        }
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    read_response(&mut s).expect("read response")
}

/// [`post`] with extra request headers (deadline, client identity).
fn post_with_headers(
    addr: SocketAddr,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let extra: String = headers
        .iter()
        .map(|(k, v)| format!("{k}: {v}\r\n"))
        .collect();
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    read_response(&mut s).expect("read response")
}

/// [`post_with_headers`] keeping the raw response head, so tests can
/// assert on response headers (`Retry-After`) the body-only readers drop.
fn post_raw(
    addr: SocketAddr,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> (u16, String, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let extra: String = headers
        .iter()
        .map(|(k, v)| format!("{k}: {v}\r\n"))
        .collect();
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read raw response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head/body split");
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head, raw[split + 4..].to_vec())
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    s.write_all(req.as_bytes()).unwrap();
    read_response(&mut s).expect("read response")
}

/// A distinct analyze request per `window` value: same kernel, different
/// canonical key.
fn analyze_body(window: u64) -> String {
    Json::obj([
        ("problem", Json::from(GEMM_PROBLEM)),
        ("window", Json::from(window)),
    ])
    .to_string()
}

fn router_stats(addr: SocketAddr) -> Json {
    let (status, body) = get(addr, "/v1/stats");
    assert_eq!(status, 200);
    Json::parse(std::str::from_utf8(&body).unwrap()).unwrap()
}

/// Per-shard `(worker, alive, routed, dedup_hits, dedup_waits,
/// dedup_misses)` rows out of a router stats document.
fn shard_rows(stats: &Json) -> Vec<(u64, bool, u64, u64, u64, u64)> {
    stats
        .get("shards")
        .and_then(Json::as_arr)
        .expect("shards array")
        .iter()
        .map(|s| {
            let dedup = |k: &str| {
                s.get("stats")
                    .and_then(|d| d.get("dedup"))
                    .and_then(|d| d.get(k))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            (
                s.get("worker").and_then(Json::as_u64).unwrap(),
                s.get("alive").and_then(Json::as_bool).unwrap(),
                s.get("routed").and_then(Json::as_u64).unwrap(),
                dedup("hits"),
                dedup("inflight_waits"),
                dedup("misses"),
            )
        })
        .collect()
}

fn merged_u64(stats: &Json, path: &[&str]) -> u64 {
    let mut v = stats.get("merged").expect("merged doc");
    for k in path {
        v = v.get(k).unwrap_or(&Json::Null);
    }
    v.as_u64().unwrap_or(0)
}

fn router_u64(stats: &Json, path: &[&str]) -> u64 {
    let mut v = stats.get("router").expect("router doc");
    for k in path {
        v = v.get(k).unwrap_or(&Json::Null);
    }
    v.as_u64().unwrap_or(0)
}

/// Polls router stats until `done` holds (replication write-throughs are
/// asynchronous), failing the test after 10 s.
fn wait_for_stats(addr: SocketAddr, what: &str, done: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = router_stats(addr);
        if done(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn shard_affinity_bit_identical_bytes_and_warm_hit_rate() {
    // Hedging off: this test counts misses exactly, and a cold analyze
    // slower than the hedge threshold would duplicate a compute.
    let cluster = Cluster::boot_with(3, Duration::ZERO, |c| c.hedge_after = Duration::MAX);
    let addr = cluster.addr();
    let keys: Vec<String> = (1..=8).map(analyze_body).collect();

    // Warm round: every key computed once, through the router.
    let mut first: Vec<Vec<u8>> = Vec::new();
    for body in &keys {
        let (status, bytes) = post(addr, "/v1/analyze", body);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
        first.push(bytes);
    }
    let warm = router_stats(addr);
    let warm_rows = shard_rows(&warm);

    // Repeat rounds: responses must be bit-identical to the first answer.
    for _round in 0..3 {
        for (i, body) in keys.iter().enumerate() {
            let (status, bytes) = post(addr, "/v1/analyze", body);
            assert_eq!(status, 200);
            assert_eq!(
                bytes, first[i],
                "repeat of key {i} must be the shard's cached bytes"
            );
        }
    }

    let end = router_stats(addr);
    let end_rows = shard_rows(&end);

    // Affinity: each key was computed exactly once cluster-wide. A key
    // that ever moved shards would recompute there and inflate misses.
    assert_eq!(
        merged_u64(&end, &["dedup", "misses"]),
        keys.len() as u64,
        "every key must be owned by exactly one shard: {end}"
    );

    // The keys actually spread: more than one shard carried traffic.
    let carrying = end_rows.iter().filter(|r| r.2 > 0).count();
    assert!(
        carrying >= 2,
        "sharding degenerated to one worker: {end_rows:?}"
    );
    let total_routed: u64 = end_rows.iter().map(|r| r.2).sum();
    assert_eq!(total_routed, (keys.len() * 4) as u64);

    // Warm per-shard hit rate: in the repeat phase no shard missed —
    // every request after warm-up was served from its shard's dedup
    // layer (hit rate exactly 1.0 per shard).
    for (warm_row, end_row) in warm_rows.iter().zip(&end_rows) {
        assert_eq!(warm_row.0, end_row.0);
        let miss_delta = end_row.5 - warm_row.5;
        assert_eq!(
            miss_delta, 0,
            "shard {} recomputed a warm key: {end_rows:?}",
            end_row.0
        );
        let served_delta = (end_row.3 + end_row.4) - (warm_row.3 + warm_row.4);
        let routed_delta = end_row.2 - warm_row.2;
        assert_eq!(
            served_delta, routed_delta,
            "shard {} warm traffic must be all dedup hits",
            end_row.0
        );
    }
}

#[test]
fn worker_loss_rehashes_with_zero_5xx_for_retried_keys() {
    // Replication off: this test pins the *cold* failover path — the
    // victim's keys must recompute on the rehashed owner. The warm
    // failover path is pinned by
    // `worker_kill_under_replication_serves_victim_keys_warm`.
    let mut cluster = Cluster::boot_with(3, Duration::ZERO, |c| {
        c.replication = 1;
        c.hedge_after = Duration::MAX;
    });
    let addr = cluster.addr();
    let keys: Vec<String> = (1..=10).map(analyze_body).collect();

    // Warm every key and remember its bytes.
    let mut first: Vec<Vec<u8>> = Vec::new();
    for body in &keys {
        let (status, bytes) = post(addr, "/v1/analyze", body);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
        first.push(bytes);
    }
    let before = router_stats(addr);
    let rows = shard_rows(&before);
    // Kill the shard carrying the most keys — the worst case for the
    // retry path.
    let victim = rows.iter().max_by_key(|r| r.2).unwrap();
    let (victim_idx, victim_keys) = (victim.0 as usize, victim.2);
    assert!(victim_keys > 0, "victim must own at least one key");
    cluster.kill_worker(victim_idx);

    // Replay every key. Keys owned by survivors stay cached; the dead
    // shard's keys must transparently rehash — zero 5xx, and the bytes
    // are identical because the analysis is a pure function of the text.
    for (i, body) in keys.iter().enumerate() {
        let (status, bytes) = post(addr, "/v1/analyze", body);
        assert_eq!(
            status,
            200,
            "key {i} must survive the worker loss: {}",
            String::from_utf8_lossy(&bytes)
        );
        assert_eq!(
            bytes, first[i],
            "rehashed key {i} must recompute identically"
        );
    }

    let after = router_stats(addr);
    // The router observed the death: the victim is off the ring and
    // marked dead in the shard list.
    let router_doc = after.get("router").unwrap();
    assert_eq!(
        router_doc.get("alive_workers").and_then(Json::as_u64),
        Some(2)
    );
    assert!(router_doc.get("rehashes").and_then(Json::as_u64).unwrap() >= 1);
    assert!(router_doc.get("retries").and_then(Json::as_u64).unwrap() >= 1);
    let after_rows = shard_rows(&after);
    assert!(
        !after_rows[victim_idx].1,
        "victim must be reported dead: {after_rows:?}"
    );

    // Consistent hashing in action end-to-end: only the victim's keys
    // recomputed. Every key was computed exactly once *among the
    // survivors* (their warm misses plus the victim's rehashed keys; the
    // victim's own miss counters died with it), and the replay of a
    // survivor-owned key was a dedup hit, not a recompute.
    let miss_sum: u64 = after_rows.iter().map(|r| r.5).sum();
    assert_eq!(
        miss_sum,
        keys.len() as u64,
        "survivors must own each key exactly once: {after_rows:?}"
    );
    let hit_sum: u64 = after_rows.iter().map(|r| r.3 + r.4).sum();
    assert_eq!(
        hit_sum,
        keys.len() as u64 - victim_keys,
        "exactly the surviving shards' keys must replay from cache: {after_rows:?}"
    );
}

#[test]
fn merged_stats_equal_the_sum_of_parts() {
    let cluster = Cluster::boot_with(2, Duration::ZERO, |c| c.hedge_after = Duration::MAX);
    let addr = cluster.addr();
    for round in 0..3 {
        for w in 1..=6 {
            let (status, _) = post(addr, "/v1/analyze", &analyze_body(w));
            assert_eq!(status, 200, "round {round}");
        }
    }
    // Replication (R = 2 default) writes every answer through to the
    // other shard; wait for the asynchronous warm writes so the
    // "warmed" sum below is non-trivial.
    let stats = wait_for_stats(addr, "replication write-through", |s| {
        router_u64(s, &["replication", "warm_writes"]) >= 6
    });
    let shards: Vec<&Json> = stats
        .get("shards")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|s| s.get("alive").and_then(Json::as_bool) == Some(true))
        .map(|s| s.get("stats").unwrap())
        .collect();
    assert_eq!(shards.len(), 2);

    let shard_sum = |path: &[&str]| -> u64 {
        shards
            .iter()
            .map(|doc| {
                let mut v: &Json = doc;
                for k in path {
                    v = v.get(k).unwrap_or(&Json::Null);
                }
                v.as_u64().unwrap_or(0)
            })
            .sum()
    };
    for path in [
        vec!["requests", "total"],
        vec!["requests", "completed"],
        vec!["requests", "status_2xx"],
        vec!["requests", "status_4xx"],
        vec!["requests", "status_5xx"],
        vec!["dedup", "hits"],
        vec!["dedup", "inflight_waits"],
        vec!["dedup", "misses"],
        vec!["dedup", "warmed"],
        vec!["dedup", "entries"],
        vec!["isl_cache", "server", "hits"],
        vec!["isl_cache", "server", "misses"],
    ] {
        assert_eq!(
            merged_u64(&stats, &path),
            shard_sum(&path),
            "merged {path:?} must be the sum of the parts"
        );
    }

    // Histogram: every bucket is the sum of the shards' buckets, so the
    // totals agree too.
    let merged_hist_total: u64 = stats
        .get("merged")
        .and_then(|m| m.get("latency"))
        .and_then(|l| l.get("histogram"))
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|b| b.get("count").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    let shard_hist_total: u64 = shards
        .iter()
        .map(|doc| {
            doc.get("latency")
                .and_then(|l| l.get("histogram"))
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|b| b.get("count").and_then(Json::as_u64).unwrap_or(0))
                .sum::<u64>()
        })
        .sum();
    assert_eq!(merged_hist_total, shard_hist_total);
    assert_eq!(
        merged_hist_total,
        merged_u64(&stats, &["requests", "completed"]),
        "every completed request lands in exactly one latency bucket"
    );
}

#[test]
fn chunked_transfer_encoding_is_501_at_the_router_too() {
    // The worker layer pins this in `crates/server/tests/e2e.rs`; the
    // router speaks the same codec and must refuse identically, so a
    // streaming client fails the same way whichever tier it talks to.
    let cluster = Cluster::boot(2, Duration::ZERO);
    let mut s = TcpStream::connect(cluster.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        b"POST /v1/analyze HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n\
          5\r\nhello\r\n0\r\n\r\n",
    )
    .unwrap();
    let (status, body) = read_response(&mut s).unwrap();
    assert_eq!(status, 501);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(v
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap()
        .contains("transfer-encoding"));
}

#[test]
fn cascaded_shutdown_drains_workers_then_router() {
    let mut cluster = Cluster::boot(2, Duration::ZERO);
    let addr = cluster.addr();
    let worker_addrs: Vec<SocketAddr> = cluster
        .workers
        .iter()
        .map(|w| w.as_ref().unwrap().addr())
        .collect();
    // Traffic first, so the drain has in-flight state to finish.
    let (status, _) = post(addr, "/v1/analyze", &analyze_body(1));
    assert_eq!(status, 200);

    let (status, body) = post(addr, "/v1/shutdown", "");
    assert_eq!(status, 200);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    let workers = v.get("workers").and_then(Json::as_arr).unwrap();
    assert_eq!(workers.len(), 2);
    for w in workers {
        assert_eq!(
            w.get("status").and_then(Json::as_str),
            Some("draining"),
            "cascade must reach every worker: {v}"
        );
    }

    // Workers and router all wind down; joins must not hang.
    for w in cluster.workers.iter_mut().filter_map(Option::take) {
        w.shutdown_and_join().expect("worker drained");
    }
    cluster
        .router
        .take()
        .unwrap()
        .shutdown_and_join()
        .expect("router drained");
    // The listeners are gone: fresh connections are refused or go
    // unanswered on every tier.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    for target in worker_addrs.iter().chain([addr].iter()) {
        loop {
            match TcpStream::connect(target) {
                Err(_) => break,
                Ok(mut s) => {
                    s.set_read_timeout(Some(Duration::from_millis(100)))
                        .unwrap();
                    let _ = s.write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
                    if read_response(&mut s).is_err() {
                        break;
                    }
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{target} kept serving after the cascaded drain"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

#[test]
fn worker_kill_under_replication_serves_victim_keys_warm() {
    // Hedging off so the counters below are exact; replication stays at
    // its R = 2 default — the subject under test.
    let mut cluster = Cluster::boot_with(3, Duration::ZERO, |c| c.hedge_after = Duration::MAX);
    let addr = cluster.addr();
    let keys: Vec<String> = (1..=10).map(analyze_body).collect();
    let keys_n = keys.len() as u64;

    let mut first: Vec<Vec<u8>> = Vec::new();
    for body in &keys {
        let (status, bytes) = post(addr, "/v1/analyze", body);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
        first.push(bytes);
    }
    // R = 2: every answer is asynchronously written through to the key's
    // successor replica. Wait until every key lives on exactly two
    // shards before pulling the plug.
    let before = wait_for_stats(addr, "replication write-through", |s| {
        router_u64(s, &["replication", "warm_writes"]) >= keys_n
            && merged_u64(s, &["dedup", "entries"]) == 2 * keys_n
    });
    let rows = shard_rows(&before);
    let victim = rows.iter().max_by_key(|r| r.2).unwrap();
    let (victim_idx, victim_keys) = (victim.0 as usize, victim.2);
    assert!(victim_keys > 0, "victim must own at least one key");
    cluster.kill_worker(victim_idx);

    // Replay every key. This is replication's promise: zero 5xx, the
    // same bytes, and — unlike the R = 1 rehash test above — zero
    // recomputes, because the rehashed owner of each victim key is
    // exactly the successor replica already holding its warm answer.
    for (i, body) in keys.iter().enumerate() {
        let (status, bytes) = post(addr, "/v1/analyze", body);
        assert_eq!(
            status,
            200,
            "key {i} must survive the worker kill: {}",
            String::from_utf8_lossy(&bytes)
        );
        assert_eq!(bytes, first[i], "key {i} must serve identical bytes");
    }

    let after = router_stats(addr);
    let after_rows = shard_rows(&after);
    assert_eq!(
        router_u64(&after, &["requests", "status_5xx"]),
        0,
        "the kill must be invisible to clients: {after}"
    );
    assert!(
        !after_rows[victim_idx].1,
        "victim must be reported dead: {after_rows:?}"
    );
    // The warm-failover core: no survivor recomputed anything.
    for (b, a) in rows.iter().zip(&after_rows) {
        if b.0 as usize == victim_idx {
            continue;
        }
        assert_eq!(
            a.5, b.5,
            "shard {} recomputed a key its replica already held warm: {after_rows:?}",
            b.0
        );
    }
    // Every replayed key was a dedup hit somewhere: the victim's keys on
    // the promoted replica's warmed entry, the survivors' on their own
    // cache.
    let hit_delta: u64 = after_rows
        .iter()
        .zip(&rows)
        .filter(|(a, _)| a.0 as usize != victim_idx)
        .map(|(a, b)| (a.3 + a.4) - (b.3 + b.4))
        .sum();
    assert_eq!(
        hit_delta, keys_n,
        "every replayed key must be served from a warm cache: {after_rows:?}"
    );
    assert!(
        merged_u64(&after, &["dedup", "warmed"]) >= 1,
        "survivors must report warmed entries: {after}"
    );
}

#[test]
fn local_transport_cluster_failover_without_sockets() {
    // The same cluster proofs with zero worker sockets: three in-process
    // cores behind local dispatch, replication at its R = 2 default.
    let cores: Vec<Arc<WorkerCore>> = (0..3)
        .map(|_| {
            WorkerCore::new(ServerConfig {
                addr: "in-process".into(),
                ..Default::default()
            })
        })
        .collect();
    let specs: Vec<WorkerSpec> = cores
        .iter()
        .map(|c| WorkerSpec::Local(Arc::clone(c)))
        .collect();
    let config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        health_interval: Duration::ZERO,
        ..Default::default()
    };
    let router = Router::spawn_with_workers(config, specs).expect("spawn router");
    let addr = router.addr();

    let keys: Vec<String> = (1..=10).map(analyze_body).collect();
    let keys_n = keys.len() as u64;
    let mut first: Vec<Vec<u8>> = Vec::new();
    for body in &keys {
        let (status, bytes) = post(addr, "/v1/analyze", body);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
        first.push(bytes);
    }
    let before = wait_for_stats(addr, "replication write-through", |s| {
        router_u64(s, &["replication", "warm_writes"]) >= keys_n
            && merged_u64(s, &["dedup", "entries"]) == 2 * keys_n
    });
    for shard in before.get("shards").and_then(Json::as_arr).unwrap() {
        assert_eq!(shard.get("transport").and_then(Json::as_str), Some("local"));
        assert_eq!(shard.get("addr").and_then(Json::as_str), Some("local"));
    }
    let rows = shard_rows(&before);
    let victim = rows.iter().max_by_key(|r| r.2).unwrap();
    let (victim_idx, victim_keys) = (victim.0 as usize, victim.2);
    assert!(victim_keys > 0, "victim must own at least one key");
    // The in-process analogue of a kill: drain the core — its data path
    // fails exactly like a dead socket, while the cores it replicated to
    // keep its keys warm.
    cores[victim_idx].drain();

    for (i, body) in keys.iter().enumerate() {
        let (status, bytes) = post(addr, "/v1/analyze", body);
        assert_eq!(
            status,
            200,
            "key {i} must survive the drained core: {}",
            String::from_utf8_lossy(&bytes)
        );
        assert_eq!(bytes, first[i], "key {i} must serve identical bytes");
    }
    let after = router_stats(addr);
    let after_rows = shard_rows(&after);
    assert_eq!(router_u64(&after, &["requests", "status_5xx"]), 0);
    assert!(!after_rows[victim_idx].1, "victim must be reported dead");
    for (b, a) in rows.iter().zip(&after_rows) {
        if b.0 as usize == victim_idx {
            continue;
        }
        assert_eq!(
            a.5, b.5,
            "core {} recomputed a key its replica already held warm: {after_rows:?}",
            b.0
        );
    }
    // In-process dispatch is synchronous on the caller's thread: there
    // is no waiting to race, so hedging must never fire locally.
    assert_eq!(router_u64(&after, &["hedges", "fired"]), 0);
    router.shutdown_and_join().expect("router drained");
}

/// A scriptable worker for hedge-semantics tests: canned bytes after a
/// configurable delay, counting data-path and warm-path calls apart.
struct MockTransport {
    label: &'static str,
    delay: Duration,
    body: &'static [u8],
    analyze_calls: AtomicU64,
    warm_calls: AtomicU64,
}

impl MockTransport {
    fn new(label: &'static str, delay: Duration, body: &'static [u8]) -> Arc<MockTransport> {
        Arc::new(MockTransport {
            label,
            delay,
            body,
            analyze_calls: AtomicU64::new(0),
            warm_calls: AtomicU64::new(0),
        })
    }
}

/// The `Box<dyn Transport>` the router owns, sharing the counters with
/// the test.
struct SharedMock(Arc<MockTransport>);

impl Transport for SharedMock {
    fn call(
        &self,
        _method: &str,
        path: &str,
        _body: &[u8],
        _read_timeout: Duration,
        _write_timeout: Duration,
    ) -> Result<(u16, Arc<Vec<u8>>), ForwardError> {
        match path {
            "/v1/warm" => {
                self.0.warm_calls.fetch_add(1, Ordering::SeqCst);
                Ok((200, Arc::new(br#"{"status":"warmed"}"#.to_vec())))
            }
            "/v1/stats" => Ok((200, Arc::new(b"{}".to_vec()))),
            _ => {
                self.0.analyze_calls.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(self.0.delay);
                Ok((200, Arc::new(self.0.body.to_vec())))
            }
        }
    }

    fn send_control(
        &self,
        _method: &str,
        _path: &str,
        _timeout: Duration,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        Ok((200, Vec::new()))
    }

    fn probe(&self, _timeout: Duration) -> bool {
        true
    }

    fn endpoint(&self) -> String {
        self.0.label.into()
    }

    fn kind(&self) -> &'static str {
        "mock"
    }
}

#[test]
fn hedged_request_races_the_replica_and_discards_the_loser() {
    const HEDGE_AFTER: Duration = Duration::from_millis(40);
    const SLOW: Duration = Duration::from_millis(800);
    let slow = MockTransport::new("slow", SLOW, br#"{"from":"slow"}"#);
    let fast = MockTransport::new("fast", Duration::from_millis(1), br#"{"from":"fast"}"#);
    let config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        health_interval: Duration::ZERO,
        hedge_after: HEDGE_AFTER,
        ..Default::default()
    };
    let vnodes = config.vnodes;
    let specs = vec![
        WorkerSpec::Custom(Box::new(SharedMock(Arc::clone(&slow)))),
        WorkerSpec::Custom(Box::new(SharedMock(Arc::clone(&fast)))),
    ];
    let router = Router::spawn_with_workers(config, specs).expect("spawn router");
    let addr = router.addr();

    // Pick keys by who owns them, on the same ring the router builds, so
    // the test controls which shard gets hedged.
    let ring = {
        let mut r = HashRing::new(vnodes);
        r.add(0);
        r.add(1);
        r
    };
    let owned_by = |shard: usize| -> String {
        (1u64..1000)
            .map(analyze_body)
            .find(|b| {
                let key = canonical_key(&canonical_request("POST", "/v1/analyze", b.as_bytes()));
                ring.owner(key) == Some(shard)
            })
            .expect("some key must hash to the shard")
    };

    // 1. Slow primary: the hedge fires after the threshold, the replica
    //    wins, and the loser's eventual response is discarded.
    let body = owned_by(0);
    let t0 = Instant::now();
    let (status, bytes) = post(addr, "/v1/analyze", &body);
    let elapsed = t0.elapsed();
    assert_eq!(status, 200);
    assert_eq!(
        bytes,
        br#"{"from":"fast"}"#.to_vec(),
        "the replica's answer must win the race"
    );
    assert!(
        elapsed >= HEDGE_AFTER,
        "the hedge must not fire before the threshold: {elapsed:?}"
    );
    assert!(
        elapsed < SLOW,
        "the hedged answer must beat the slow primary: {elapsed:?}"
    );
    assert_eq!(slow.analyze_calls.load(Ordering::SeqCst), 1);
    assert_eq!(fast.analyze_calls.load(Ordering::SeqCst), 1);

    // Let the loser finish; its response lands in a dropped channel and
    // must change nothing.
    std::thread::sleep(SLOW);
    let stats = wait_for_stats(addr, "the replication write-through", |_| {
        slow.warm_calls.load(Ordering::SeqCst) >= 1
    });
    assert_eq!(router_u64(&stats, &["hedges", "fired"]), 1);
    assert_eq!(router_u64(&stats, &["hedges", "won"]), 1);
    // Exactly-once attribution: the request is routed to the winner
    // only — the loser's late 200 must not be double-counted.
    let rows = shard_rows(&stats);
    assert_eq!(rows[0].2, 0, "the discarded loser must not count: {rows:?}");
    assert_eq!(rows[1].2, 1, "the winner carries the request: {rows:?}");

    // 2. Fast primary: an answer under the threshold is never hedged.
    let body = owned_by(1);
    let (status, bytes) = post(addr, "/v1/analyze", &body);
    assert_eq!(status, 200);
    assert_eq!(bytes, br#"{"from":"fast"}"#.to_vec());
    assert_eq!(
        slow.analyze_calls.load(Ordering::SeqCst),
        1,
        "a primary answering under the threshold must not be hedged"
    );
    assert_eq!(fast.analyze_calls.load(Ordering::SeqCst), 2);
    let stats = router_stats(addr);
    assert_eq!(
        router_u64(&stats, &["hedges", "fired"]),
        1,
        "no new hedge may fire for a fast primary"
    );
    router.shutdown_and_join().expect("router drained");
}

#[test]
fn health_prober_evicts_and_revives() {
    let mut cluster = Cluster::boot(2, Duration::from_millis(50));
    let addr = cluster.addr();
    let victim_addr = cluster.workers[0].as_ref().unwrap().addr();

    let alive = |addr: SocketAddr| -> u64 {
        let (status, body) = get(addr, "/v1/healthz");
        assert_eq!(status, 200);
        Json::parse(std::str::from_utf8(&body).unwrap())
            .unwrap()
            .get("alive_workers")
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert_eq!(alive(addr), 2);

    // Kill worker 0 without any traffic: only the prober can notice.
    cluster.kill_worker(0);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while alive(addr) != 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "prober never evicted the dead worker"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Resurrect a worker on the same address: the prober must re-admit
    // it, restoring the original key affinity.
    let reborn = Server::spawn(ServerConfig {
        addr: victim_addr.to_string(),
        threads: RouterConfig::default().upstream_connections + 2,
        ..Default::default()
    })
    .expect("rebind the victim's port");
    cluster.workers[0] = Some(reborn);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while alive(addr) != 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "prober never revived the reborn worker"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = router_stats(addr);
    let router_doc = stats.get("router").unwrap();
    assert!(router_doc.get("rehashes").and_then(Json::as_u64).unwrap() >= 1);
    assert!(router_doc.get("revivals").and_then(Json::as_u64).unwrap() >= 1);
}

/// Three in-process cores, each behind a seeded [`FaultTransport`]:
/// worker 0 flaps (periodically entirely dark), workers 1–2 suffer
/// random latency spikes. `tweak` adjusts the router config on top of
/// the chaos defaults (fast prober, threads 2).
fn chaos_cluster(
    flap: FaultPlan,
    spikes: Option<FaultPlan>,
    tweak: impl FnOnce(&mut RouterConfig),
) -> (SpawnedRouter, Vec<Arc<WorkerCore>>) {
    let cores: Vec<Arc<WorkerCore>> = (0..3)
        .map(|_| {
            WorkerCore::new(ServerConfig {
                addr: "in-process".into(),
                ..Default::default()
            })
        })
        .collect();
    let specs: Vec<WorkerSpec> = cores
        .iter()
        .enumerate()
        .map(|(i, core)| {
            let local = Box::new(LocalTransport::new(Arc::clone(core)));
            let plan = if i == 0 {
                Some(flap.clone())
            } else {
                spikes.clone()
            };
            match plan {
                Some(plan) => WorkerSpec::Custom(Box::new(FaultTransport::new(local, plan))),
                None => WorkerSpec::Custom(local),
            }
        })
        .collect();
    let mut config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        health_interval: Duration::from_millis(20),
        ..Default::default()
    };
    tweak(&mut config);
    let router = Router::spawn_with_workers(config, specs).expect("spawn router");
    (router, cores)
}

/// The flap plan both chaos tests share: worker 0 dark for the first 10
/// of every 30 calls (probes included), i.e. a worker that dies and
/// recovers over and over for the whole run.
fn flap_plan() -> FaultPlan {
    FaultPlan {
        seed: 7,
        flap_period: 30,
        flap_down: 10,
        ..Default::default()
    }
}

#[test]
fn chaos_with_breakers_zero_5xx_and_bounded_p99() {
    // The headline chaos proof: a seeded plan with a flapping worker and
    // latency spikes, breakers + bounded retries on (max_retries raised
    // to 4 so even a revive-mid-retry re-trip fits the budget), 512
    // client requests — and the chaos must be entirely invisible: every
    // answer a bit-identical 200, p99 bounded, breakers demonstrably
    // doing the absorbing.
    let spikes = FaultPlan {
        seed: 11,
        latency_per_mille: 100,
        latency: Duration::from_millis(5),
        ..Default::default()
    };
    let (router, _cores) = chaos_cluster(flap_plan(), Some(spikes), |c| c.max_retries = 4);
    let addr = router.addr();

    let keys: Vec<String> = (1..=16).map(analyze_body).collect();
    let mut first: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
    let mut latencies: Vec<Duration> = Vec::new();
    for round in 0..32 {
        for (i, body) in keys.iter().enumerate() {
            let t0 = Instant::now();
            let (status, bytes) = post(addr, "/v1/analyze", body);
            latencies.push(t0.elapsed());
            assert_eq!(
                status,
                200,
                "round {round} key {i}: chaos leaked to the client: {}",
                String::from_utf8_lossy(&bytes)
            );
            match &first[i] {
                None => first[i] = Some(bytes),
                Some(expected) => assert_eq!(
                    &bytes, expected,
                    "round {round} key {i}: answers must stay bit-identical under chaos"
                ),
            }
        }
    }
    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100];
    assert!(
        p99 < Duration::from_secs(1),
        "p99 must stay bounded under chaos: {p99:?}"
    );

    let stats = router_stats(addr);
    assert_eq!(
        router_u64(&stats, &["requests", "status_5xx"]),
        0,
        "breakers + retries must absorb every injected fault: {stats}"
    );
    assert!(
        router_u64(&stats, &["breakers", "trips"]) >= 1,
        "the flapping worker must trip its breaker: {stats}"
    );
    assert!(
        router_u64(&stats, &["retries"]) >= 1,
        "failed dispatches must have been retried: {stats}"
    );
    assert!(
        router_u64(&stats, &["revivals"]) >= 1,
        "the prober must re-admit the flapping worker between windows: {stats}"
    );
    router.shutdown_and_join().expect("router drained");
}

#[test]
fn chaos_without_breakers_leaks_5xx() {
    // The control arm: the same flapping worker with the breaker disabled
    // (threshold u32::MAX) and the prober off. Nothing ever takes the
    // flapping shard off the ring, so every retry re-dials the same dark
    // worker until the retry budget dies — a deterministic client-visible
    // 5xx, quantifying exactly the damage the breaker absorbs above.
    let (router, _cores) = chaos_cluster(flap_plan(), None, |c| {
        c.breaker_threshold = u32::MAX;
        c.health_interval = Duration::ZERO;
    });
    let addr = router.addr();
    let vnodes = RouterConfig::default().vnodes;
    let ring = {
        let mut r = HashRing::new(vnodes);
        for w in 0..3 {
            r.add(w);
        }
        r
    };
    let owned_by = |shard: usize| -> String {
        (1u64..1000)
            .map(analyze_body)
            .find(|b| {
                let key = canonical_key(&canonical_request("POST", "/v1/analyze", b.as_bytes()));
                ring.owner(key) == Some(shard)
            })
            .expect("some key must hash to the shard")
    };

    // Call indices 0, 1, 2 all fall in the flap-down window: the initial
    // dispatch and both retries fail, and with the breaker off the ring
    // never changes under the request.
    let (status, bytes) = post(addr, "/v1/analyze", &owned_by(0));
    assert_eq!(
        status,
        503,
        "without a breaker the flap must reach the client: {}",
        String::from_utf8_lossy(&bytes)
    );
    assert!(
        String::from_utf8_lossy(&bytes).contains("retry budget exhausted"),
        "the 503 must say the retries died: {}",
        String::from_utf8_lossy(&bytes)
    );

    // Healthy shards are untouched collateral.
    let (status, _) = post(addr, "/v1/analyze", &owned_by(1));
    assert_eq!(status, 200);

    let stats = router_stats(addr);
    assert!(router_u64(&stats, &["requests", "status_5xx"]) >= 1);
    assert!(
        router_u64(&stats, &["retries"]) >= 2,
        "the full retry budget must have been spent: {stats}"
    );
    assert_eq!(
        router_u64(&stats, &["breakers", "trips"]),
        0,
        "a u32::MAX threshold must never trip: {stats}"
    );
    router.shutdown_and_join().expect("router drained");
}

#[test]
fn deadline_propagates_end_to_end_and_degraded_answers_are_not_cached() {
    // One real HTTP worker behind the router, so the deadline crosses the
    // wire: client header → router debit → X-Tenet-Deadline-Ms forward →
    // worker DSE chunking. `threads: 1` in the body keeps the sweep slow
    // and the worker's chunk size minimal.
    let cluster = Cluster::boot(1, Duration::ZERO);
    let addr = cluster.addr();
    let dse = Json::obj([
        ("problem", Json::from(DSE_SLOW_PROBLEM)),
        ("pe", Json::from(4u64)),
        ("threads", Json::from(1u64)),
        ("limit", Json::from(1u64)),
    ])
    .to_string();

    // The deadline request goes FIRST (cold): if its degraded answer
    // leaked into any cache, the full request below would return it.
    let t0 = Instant::now();
    let (status, bytes) =
        post_with_headers(addr, "/v1/dse", &dse, &[("X-Tenet-Deadline-Ms", "25")]);
    let clipped = t0.elapsed();
    let text = String::from_utf8_lossy(&bytes).to_string();
    let timed_out = status == 504 && text.contains("deadline_exceeded");
    let truncated = status == 200 && text.contains("\"truncated\":true");
    assert!(
        timed_out || truncated,
        "a 25 ms deadline must clip the sweep (504 or explicit partial), got {status}: {text}"
    );

    // Same body, no deadline: the full answer, computed from scratch.
    let t1 = Instant::now();
    let (status, bytes) = post(addr, "/v1/dse", &dse);
    let full = t1.elapsed();
    let text = String::from_utf8_lossy(&bytes).to_string();
    assert_eq!(status, 200, "{text}");
    assert!(
        !text.contains("\"truncated\""),
        "the degraded answer must never have been cached: {text}"
    );
    assert!(
        full > Duration::from_millis(25),
        "the sweep must be slower than the deadline for this test to prove anything: {full:?}"
    );
    assert!(
        clipped < full,
        "the clipped request must not have paid full latency: {clipped:?} vs {full:?}"
    );
    assert!(
        clipped < Duration::from_secs(1),
        "a 25 ms deadline must come back promptly: {clipped:?}"
    );

    // The expiry is attributed: either the worker clipped its own sweep
    // (worker deadline_exceeded / degraded counters) or the router gave
    // up waiting (router deadline_exceeded).
    let stats = router_stats(addr);
    let attributed = router_u64(&stats, &["requests", "deadline_exceeded"])
        + merged_u64(&stats, &["requests", "deadline_exceeded"])
        + merged_u64(&stats, &["requests", "degraded_responses"]);
    assert!(attributed >= 1, "the expiry must surface in stats: {stats}");
    // A deadline expiry is the request's failure, not the shard's: the
    // worker must still be on the ring.
    assert_eq!(
        stats
            .get("router")
            .and_then(|r| r.get("alive_workers"))
            .and_then(Json::as_u64),
        Some(1),
        "a deadline expiry must never evict the worker: {stats}"
    );
}

#[test]
fn hedge_timer_never_fires_past_the_deadline() {
    // Satellite (c): the hedge threshold is 40 ms but the request's
    // deadline is 20 ms — the deadline wins, the request 504s before the
    // hedge timer fires, the replica is never dialed, and the abandoned
    // primary's late answer changes nothing.
    const HEDGE_AFTER: Duration = Duration::from_millis(40);
    const SLOW: Duration = Duration::from_millis(800);
    let slow = MockTransport::new("slow", SLOW, br#"{"from":"slow"}"#);
    let fast = MockTransport::new("fast", Duration::from_millis(1), br#"{"from":"fast"}"#);
    let config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        health_interval: Duration::ZERO,
        hedge_after: HEDGE_AFTER,
        ..Default::default()
    };
    let vnodes = config.vnodes;
    let specs = vec![
        WorkerSpec::Custom(Box::new(SharedMock(Arc::clone(&slow)))),
        WorkerSpec::Custom(Box::new(SharedMock(Arc::clone(&fast)))),
    ];
    let router = Router::spawn_with_workers(config, specs).expect("spawn router");
    let addr = router.addr();
    let ring = {
        let mut r = HashRing::new(vnodes);
        r.add(0);
        r.add(1);
        r
    };
    let body = (1u64..1000)
        .map(analyze_body)
        .find(|b| {
            let key = canonical_key(&canonical_request("POST", "/v1/analyze", b.as_bytes()));
            ring.owner(key) == Some(0)
        })
        .expect("some key must hash to the slow shard");

    let t0 = Instant::now();
    let (status, bytes) =
        post_with_headers(addr, "/v1/analyze", &body, &[("X-Tenet-Deadline-Ms", "20")]);
    let elapsed = t0.elapsed();
    assert_eq!(
        status,
        504,
        "the deadline must clip the hedged wait: {}",
        String::from_utf8_lossy(&bytes)
    );
    assert!(String::from_utf8_lossy(&bytes).contains("deadline_exceeded"));
    assert!(
        elapsed < HEDGE_AFTER + Duration::from_millis(200),
        "the 504 must come near the deadline, not the hedge threshold or the slow worker: {elapsed:?}"
    );
    assert_eq!(
        fast.analyze_calls.load(Ordering::SeqCst),
        0,
        "the hedge must never fire once the deadline expired"
    );
    assert_eq!(slow.analyze_calls.load(Ordering::SeqCst), 1);

    // Let the abandoned primary finish: its late answer lands in a
    // dropped channel and must not touch a single counter.
    std::thread::sleep(SLOW);
    let stats = router_stats(addr);
    assert_eq!(router_u64(&stats, &["hedges", "fired"]), 0);
    assert_eq!(router_u64(&stats, &["requests", "deadline_exceeded"]), 1);
    let rows = shard_rows(&stats);
    assert_eq!(
        rows.iter().map(|r| r.2).sum::<u64>(),
        0,
        "an expired request is routed to nobody: {rows:?}"
    );

    // Without a deadline the same key hedges normally — the timer logic
    // is intact, only clamped.
    let (status, bytes) = post(addr, "/v1/analyze", &body);
    assert_eq!(status, 200);
    assert_eq!(bytes, br#"{"from":"fast"}"#.to_vec());
    let stats = wait_for_stats(addr, "the hedge to fire", |s| {
        router_u64(s, &["hedges", "fired"]) >= 1
    });
    assert_eq!(router_u64(&stats, &["hedges", "won"]), 1);
    router.shutdown_and_join().expect("router drained");
}

#[test]
fn admission_control_throttles_a_bursting_client() {
    let core = WorkerCore::new(ServerConfig {
        addr: "in-process".into(),
        ..Default::default()
    });
    let config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        health_interval: Duration::ZERO,
        admission_rps: 1,
        ..Default::default()
    };
    let router =
        Router::spawn_with_workers(config, vec![WorkerSpec::Local(core)]).expect("spawn router");
    let addr = router.addr();
    let body = analyze_body(1);

    // A burst well past 1 rps (burst capacity 2× = 2): the first
    // requests pass on burst tokens, the tail is shed with 429 +
    // Retry-After before it can pile onto the workers.
    let mut oks = 0;
    let mut rejects = 0;
    for _ in 0..6 {
        let (status, head, bytes) = post_raw(addr, "/v1/analyze", &body, &[]);
        match status {
            200 => oks += 1,
            429 => {
                rejects += 1;
                assert!(
                    String::from_utf8_lossy(&bytes).contains("rate_limited"),
                    "{}",
                    String::from_utf8_lossy(&bytes)
                );
                assert!(
                    head.to_ascii_lowercase().contains("retry-after:"),
                    "a 429 must carry Retry-After: {head}"
                );
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(oks >= 2, "burst capacity must admit the first requests");
    assert!(rejects >= 1, "the burst tail must be shed with 429");

    // A different client identity gets its own bucket: the throttled
    // tenant does not starve the well-behaved one.
    let (status, _) = post_with_headers(
        addr,
        "/v1/analyze",
        &body,
        &[("X-Tenet-Client", "tenant-b")],
    );
    assert_eq!(status, 200, "per-client buckets must isolate tenants");

    let stats = router_stats(addr);
    assert!(
        router_u64(&stats, &["admission", "rejects"]) >= 1,
        "rejects must be counted: {stats}"
    );
    assert_eq!(
        router_u64(&stats, &["requests", "status_5xx"]),
        0,
        "admission control sheds with 4xx, never 5xx: {stats}"
    );
    router.shutdown_and_join().expect("router drained");
}

// ---------------------------------------------------------------------------
// Observability: merged Prometheus exposition, cross-tier traces.
// ---------------------------------------------------------------------------

/// Parses a Prometheus text exposition into `series-with-labels → value`
/// (comment and `# TYPE` lines skipped).
fn parse_prom(text: &str) -> std::collections::BTreeMap<String, f64> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (series, value) = l.rsplit_once(' ').expect("prometheus sample line");
            (
                series.to_string(),
                value.parse::<f64>().expect("prometheus sample value"),
            )
        })
        .collect()
}

/// True for series that are additive across shards: counters and
/// histogram components of the worker families. Gauges (in-flight,
/// backlog, cache entries, latency means) are snapshots, not sums, and
/// `tenet_process_*` families are per-process facts the merge drops.
fn summable(series: &str) -> bool {
    let name = series.split('{').next().unwrap();
    name.starts_with("tenet_worker_")
        && ["_total", "_bucket", "_sum", "_count"]
            .iter()
            .any(|s| name.ends_with(s))
}

#[test]
fn merged_metrics_exposition_is_the_sum_of_per_shard_expositions() {
    use tenet_server::stats::prometheus_from_worker_doc;
    // Hedging off: a hedge-raced duplicate compute would perturb the
    // exact counter equality this test asserts.
    let cluster = Cluster::boot_with(2, Duration::ZERO, |c| c.hedge_after = Duration::MAX);
    let addr = cluster.addr();
    for w in 1..=6 {
        for _ in 0..2 {
            let (status, _) = post(addr, "/v1/analyze", &analyze_body(w));
            assert_eq!(status, 200);
        }
    }

    // One consistent snapshot: the same fan-out produced the per-shard
    // documents and their merge, so rendering both through the shared
    // exposition code must agree exactly — no scrape-order skew.
    let stats = wait_for_stats(addr, "replication write-through", |s| {
        router_u64(s, &["replication", "warm_writes"]) >= 6
    });
    let merged = parse_prom(&prometheus_from_worker_doc(
        stats.get("merged").expect("merged doc"),
    ));
    let shard_texts: Vec<String> = stats
        .get("shards")
        .and_then(Json::as_arr)
        .expect("shards array")
        .iter()
        .filter(|s| s.get("alive").and_then(Json::as_bool) == Some(true))
        .map(|s| prometheus_from_worker_doc(s.get("stats").expect("shard stats")))
        .collect();
    assert_eq!(shard_texts.len(), 2);

    let mut summed: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for text in &shard_texts {
        for (series, value) in parse_prom(text) {
            if summable(&series) {
                *summed.entry(series).or_insert(0.0) += value;
            }
        }
    }
    assert!(
        summed.keys().any(|s| s.contains("_bucket")),
        "histogram buckets must participate in the sum"
    );
    for (series, sum) in &summed {
        assert_eq!(
            merged.get(series),
            Some(sum),
            "merged `{series}` must equal the sum over the shard expositions"
        );
    }
    // And nothing summable appears in the merge that no shard reported.
    for series in merged.keys().filter(|s| summable(s)) {
        assert!(
            summed.contains_key(series),
            "merged-only series `{series}` came from no shard"
        );
    }

    // The live endpoint serves both tiers' families, and its histogram
    // is well-formed: cumulative buckets ending at `+Inf`, with `_count`
    // equal to the terminal bucket.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("tenet_worker_requests_total"));
    assert!(text.contains("tenet_router_requests_total"));
    assert!(
        !text.contains("tenet_process_"),
        "process-wide gauges are per-worker facts and must not be merged"
    );
    let mut prev = -1.0;
    let mut terminal = None;
    for line in text
        .lines()
        .filter(|l| l.starts_with("tenet_worker_request_latency_us_bucket"))
    {
        let (series, value) = line.rsplit_once(' ').unwrap();
        let v: f64 = value.parse().unwrap();
        assert!(v >= prev, "bucket counts must be cumulative: {line}");
        prev = v;
        terminal = Some((series.to_string(), v));
    }
    let (series, inf) = terminal.expect("histogram buckets in the exposition");
    assert!(
        series.contains("le=\"+Inf\""),
        "the last bucket must be +Inf: {series}"
    );
    let exposed = parse_prom(&text);
    assert_eq!(
        exposed.get("tenet_worker_request_latency_us_count"),
        Some(&inf),
        "`_count` must equal the +Inf bucket"
    );
}

#[test]
fn hedged_trace_attributes_the_request_to_exactly_one_winner() {
    // The hedged race from the mock test above, traced: the timeline
    // must show one hedge firing and exactly one winner, with the
    // phase spans tiling the router's handling time.
    const HEDGE_AFTER: Duration = Duration::from_millis(40);
    const SLOW: Duration = Duration::from_millis(400);
    let slow = MockTransport::new("slow", SLOW, br#"{"from":"slow"}"#);
    let fast = MockTransport::new("fast", Duration::from_millis(1), br#"{"from":"fast"}"#);
    let config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        health_interval: Duration::ZERO,
        hedge_after: HEDGE_AFTER,
        ..Default::default()
    };
    let vnodes = config.vnodes;
    let specs = vec![
        WorkerSpec::Custom(Box::new(SharedMock(Arc::clone(&slow)))),
        WorkerSpec::Custom(Box::new(SharedMock(Arc::clone(&fast)))),
    ];
    let router = Router::spawn_with_workers(config, specs).expect("spawn router");
    let addr = router.addr();
    let ring = {
        let mut r = HashRing::new(vnodes);
        r.add(0);
        r.add(1);
        r
    };
    let body = (1u64..1000)
        .map(analyze_body)
        .find(|b| {
            let key = canonical_key(&canonical_request("POST", "/v1/analyze", b.as_bytes()));
            ring.owner(key) == Some(0)
        })
        .expect("some key must hash to the slow shard");

    let (status, bytes) = post_with_headers(
        addr,
        "/v1/analyze",
        &body,
        &[("X-Tenet-Trace-Id", "cafe0001")],
    );
    assert_eq!(status, 200);
    assert_eq!(bytes, br#"{"from":"fast"}"#.to_vec());

    // Mock workers keep no trace rings (their canned bodies carry no
    // `records` array), so the fan-out returns the router's record only.
    let (status, body) = get(addr, "/v1/trace/cafe0001");
    assert_eq!(status, 200);
    let doc = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        doc.get("trace_id").and_then(Json::as_str),
        Some("00000000cafe0001")
    );
    let records = doc.get("records").and_then(Json::as_arr).expect("records");
    let rec = records
        .iter()
        .find(|r| r.get("tier").and_then(Json::as_str) == Some("router"))
        .expect("the router tier must have recorded the request");
    let spans = rec.get("spans").and_then(Json::as_arr).expect("spans");
    let named = |name: &str| -> Vec<&Json> {
        spans
            .iter()
            .filter(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .collect()
    };
    assert_eq!(named("hedge_fired").len(), 1, "one hedge fired: {rec}");
    let won = named("hedge_won");
    assert_eq!(
        won.len(),
        1,
        "the timeline must attribute the answer to exactly one winner: {rec}"
    );
    assert_eq!(
        won[0].get("detail").and_then(Json::as_str),
        Some("replica=1"),
        "the fast replica is the winner"
    );
    assert_eq!(
        named("upstream").len(),
        1,
        "one dispatch attempt covers the whole race: {rec}"
    );
    let total = rec.get("total_us").and_then(Json::as_u64).unwrap();
    let phase_sum: u64 = spans
        .iter()
        .filter(|s| s.get("phase").and_then(Json::as_bool) == Some(true))
        .filter_map(|s| s.get("dur_us").and_then(Json::as_u64))
        .sum();
    assert!(
        phase_sum <= total && total - phase_sum <= total / 10,
        "phases must sum to within 10% of the end-to-end time \
         (sum {phase_sum}µs vs total {total}µs): {rec}"
    );
    router.shutdown_and_join().expect("router drained");
}

#[test]
fn chaos_retry_trace_shows_the_breaker_trip_and_phases_sum_to_total() {
    // The acceptance drill: under a fault plan that blacks out the owning
    // worker, the traced request must surface the failed attempt, the
    // breaker trip, and the rehashed retry — with phase durations summing
    // to within 10% of the end-to-end latency. Prober off and threshold 1
    // make the flap indices and the trip deterministic.
    let (router, _cores) = chaos_cluster(flap_plan(), None, |c| {
        c.breaker_threshold = 1;
        c.health_interval = Duration::ZERO;
    });
    let addr = router.addr();
    let vnodes = RouterConfig::default().vnodes;
    let ring = {
        let mut r = HashRing::new(vnodes);
        for w in 0..3 {
            r.add(w);
        }
        r
    };
    let body = (1u64..1000)
        .map(analyze_body)
        .find(|b| {
            let key = canonical_key(&canonical_request("POST", "/v1/analyze", b.as_bytes()));
            ring.owner(key) == Some(0)
        })
        .expect("some key must hash to the flapping shard");

    // Call index 0 falls in the flap-down window: the first dispatch
    // fails, trips the single-failure breaker, and the retry lands on
    // the rehashed surviving owner.
    let (status, bytes) = post_with_headers(
        addr,
        "/v1/analyze",
        &body,
        &[("X-Tenet-Trace-Id", "deadbeef")],
    );
    assert_eq!(
        status,
        200,
        "the retry must absorb the dark worker: {}",
        String::from_utf8_lossy(&bytes)
    );

    let (status, body) = get(addr, "/v1/trace/deadbeef");
    assert_eq!(status, 200);
    let doc = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let records = doc.get("records").and_then(Json::as_arr).expect("records");
    let tiers: std::collections::BTreeSet<&str> = records
        .iter()
        .filter_map(|r| r.get("tier").and_then(Json::as_str))
        .collect();
    assert!(
        tiers.contains("router") && tiers.contains("worker"),
        "the trace must span both tiers: {doc}"
    );

    let rec = records
        .iter()
        .find(|r| r.get("tier").and_then(Json::as_str) == Some("router"))
        .unwrap();
    let spans = rec.get("spans").and_then(Json::as_arr).expect("spans");
    let named = |name: &str| -> Vec<&Json> {
        spans
            .iter()
            .filter(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .collect()
    };
    assert!(
        named("upstream").len() >= 2,
        "both the failed attempt and the retry must be on the timeline: {rec}"
    );
    let trips = named("breaker_trip");
    assert_eq!(trips.len(), 1, "the trip must be on the timeline: {rec}");
    let detail = trips[0].get("detail").and_then(Json::as_str).unwrap();
    assert!(
        detail.contains("worker=0") && detail.contains("state=open"),
        "the trip must name the shard and the breaker state: {detail}"
    );

    // The acceptance criterion proper: at every tier, phase durations
    // sum to within 10% of that tier's end-to-end time. (A 50 µs floor
    // absorbs timer granularity on sub-millisecond worker records.)
    for rec in records {
        let total = rec.get("total_us").and_then(Json::as_u64).unwrap();
        let phase_sum: u64 = rec
            .get("spans")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter(|s| s.get("phase").and_then(Json::as_bool) == Some(true))
            .filter_map(|s| s.get("dur_us").and_then(Json::as_u64))
            .sum();
        let slack = (total / 10).max(50);
        assert!(
            phase_sum <= total && total - phase_sum <= slack,
            "phases must sum to within 10% of the end-to-end time \
             (sum {phase_sum}µs vs total {total}µs): {rec}"
        );
    }
    router.shutdown_and_join().expect("router drained");
}

// ---------------------------------------------------------------------------
// Warm-state operations: ring-change shipping, malformed-input parity.
// ---------------------------------------------------------------------------

#[test]
fn ring_change_ships_warm_state_to_new_owners() {
    // Hedging off for exact counters; replication at its R = 2 default.
    let mut cluster = Cluster::boot_with(3, Duration::ZERO, |c| c.hedge_after = Duration::MAX);
    let addr = cluster.addr();
    let keys: Vec<String> = (1..=10).map(analyze_body).collect();
    let keys_n = keys.len() as u64;

    let mut first: Vec<Vec<u8>> = Vec::new();
    for body in &keys {
        let (status, bytes) = post(addr, "/v1/analyze", body);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
        first.push(bytes);
    }
    // Wait for replication: every key on exactly two of the three shards.
    let before = wait_for_stats(addr, "replication write-through", |s| {
        router_u64(s, &["replication", "warm_writes"]) >= keys_n
            && merged_u64(s, &["dedup", "entries"]) == 2 * keys_n
    });
    let rows = shard_rows(&before);
    let victim = rows.iter().max_by_key(|r| r.2).unwrap();
    let (victim_idx, victim_keys) = (victim.0 as usize, victim.2);
    assert!(victim_keys > 0, "victim must own at least one key");
    cluster.kill_worker(victim_idx);

    // The first post-kill dispatch (or stats probe) evicts the victim;
    // the eviction schedules the warm shipper, which streams the
    // survivors' copies of the moved keys to their new co-owners over
    // the same `/v1/warm` path replication uses.
    for (i, body) in keys.iter().enumerate() {
        let (status, bytes) = post(addr, "/v1/analyze", body);
        assert_eq!(
            status,
            200,
            "key {i} must survive the kill: {}",
            String::from_utf8_lossy(&bytes)
        );
        assert_eq!(bytes, first[i], "key {i} must replay bit-identical");
    }
    // Shipping restores full R = 2 coverage among the survivors: the
    // victim's copies are re-created on the keys' new second owners.
    let after = wait_for_stats(addr, "ring-change warm shipping", |s| {
        router_u64(s, &["replication", "warm_shipped"]) >= 1
            && merged_u64(s, &["dedup", "entries"]) == 2 * keys_n
    });
    assert_eq!(
        router_u64(&after, &["requests", "status_5xx"]),
        0,
        "the kill and the shipping must both be invisible to clients: {after}"
    );
    // The shipper moved cached bytes, never work: no survivor recomputed.
    let after_rows = shard_rows(&after);
    for (b, a) in rows.iter().zip(&after_rows) {
        if b.0 as usize == victim_idx {
            continue;
        }
        assert_eq!(
            a.5, b.5,
            "warm shipping must never trigger recomputes: {after_rows:?}"
        );
    }
    // And the counters surface in the Prometheus exposition too.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("tenet_router_warm_shipped_total"),
        "warm shipping must be scrapeable: {text}"
    );
}

#[test]
fn router_rejects_malformed_deadlines_and_trace_thresholds() {
    // The router speaks the same codec as the worker, so a garbled
    // deadline header fails identically at either tier: 400 with a JSON
    // parse error, never a silent "no deadline".
    let cluster = Cluster::boot(1, Duration::ZERO);
    let addr = cluster.addr();
    for bad in ["soon", "0", "-5", "1e3", ""] {
        let (status, bytes) = post_with_headers(
            addr,
            "/v1/analyze",
            &analyze_body(1),
            &[("X-Tenet-Deadline-Ms", bad)],
        );
        let text = String::from_utf8_lossy(&bytes).to_string();
        assert_eq!(status, 400, "deadline `{bad}` must be rejected: {text}");
        assert!(text.contains("\"parse\""), "{text}");
    }
    // A garbled slow-trace threshold is a usage error, not an unfiltered
    // ring served as if the filter had applied; `ms=0` stays valid.
    let (status, body) = get(addr, "/v1/trace/slow?ms=abc");
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("\"usage\""));
    let (status, _) = get(addr, "/v1/trace/slow?ms=0");
    assert_eq!(status, 200);
}
