//! Property tests for the consistent-hash ring: the invariants the
//! sharded service's cache economics rest on.
//!
//! * adding or removing one worker remaps only the keys whose owning arc
//!   changed — ≈ `1/N` of a sampled population, never a reshuffle;
//! * a key that moves, moves *to the added worker* (add) or *from the
//!   removed worker* (remove) — nobody else's keys churn;
//! * the ring never maps a key to a worker that was removed.

use proptest::prelude::*;
use tenet_router::ring::HashRing;

const VNODES: usize = 64;

/// A deterministic spread-out key population (splitmix64 increments of
/// the golden ratio, like the ring's own mixer but over a different
/// stream).
fn keys(n: usize, salt: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            let mut z = salt
                .wrapping_add(0x1234_5678_9abc_def0)
                .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

fn build(workers: usize) -> HashRing {
    let mut ring = HashRing::new(VNODES);
    for w in 0..workers {
        ring.add(w);
    }
    ring
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adding_a_worker_remaps_about_one_nth(workers in 2usize..=8, salt in 0u64..=0xffff_ffff) {
        let sample = keys(2000, salt);
        let ring = build(workers);
        let mut grown = ring.clone();
        grown.add(workers); // the new worker

        let mut moved = 0usize;
        for &k in &sample {
            let before = ring.owner(k).unwrap();
            let after = grown.owner(k).unwrap();
            if before != after {
                // A key that moves may only move onto the new worker.
                prop_assert_eq!(after, workers,
                    "key {:016x} moved {} -> {} instead of the new worker", k, before, after);
                moved += 1;
            }
        }
        // Expected share is 1/(N+1); allow generous slack for vnode
        // variance but reject anything resembling a reshuffle.
        let share = moved as f64 / sample.len() as f64;
        let expected = 1.0 / (workers as f64 + 1.0);
        prop_assert!(share <= expected * 2.5,
            "adding one of {} workers remapped {:.3} of keys (expected ~{:.3})",
            workers + 1, share, expected);
        prop_assert!(moved > 0, "a new worker must take over some keys");
    }

    #[test]
    fn removing_a_worker_remaps_only_its_keys(workers in 2usize..=8, salt in 0u64..=0xffff_ffff) {
        let sample = keys(2000, salt);
        let ring = build(workers);
        let victim = (salt % workers as u64) as usize;
        let mut shrunk = ring.clone();
        shrunk.remove(victim);

        let mut moved = 0usize;
        for &k in &sample {
            let before = ring.owner(k).unwrap();
            let after = shrunk.owner(k).unwrap();
            // The ring never maps to a dead worker.
            prop_assert!(after != victim, "key {:016x} mapped to the removed worker", k);
            if before == victim {
                moved += 1;
            } else {
                // Keys of the survivors must not churn.
                prop_assert_eq!(before, after,
                    "key {:016x} owned by surviving worker {} churned to {}", k, before, after);
            }
        }
        let share = moved as f64 / sample.len() as f64;
        let expected = 1.0 / workers as f64;
        prop_assert!(share <= expected * 2.5,
            "removing one of {} workers remapped {:.3} of keys (expected ~{:.3})",
            workers, share, expected);
    }

    #[test]
    fn add_then_remove_is_identity(workers in 1usize..=8, salt in 0u64..=0xffff_ffff) {
        let sample = keys(500, salt);
        let ring = build(workers);
        let mut round_trip = ring.clone();
        round_trip.add(workers);
        round_trip.remove(workers);
        for &k in &sample {
            prop_assert_eq!(ring.owner(k), round_trip.owner(k),
                "add+remove of a worker must restore every assignment");
        }
    }

    #[test]
    fn successive_removals_never_map_to_any_dead_worker(salt in 0u64..=0xffff_ffff) {
        let sample = keys(500, salt);
        let workers = 6usize;
        let mut ring = build(workers);
        let mut dead = Vec::new();
        // Kill workers one at a time in a salt-dependent order.
        for round in 0..workers - 1 {
            let alive: Vec<usize> = ring.members().collect();
            let victim = alive[(salt.rotate_left(round as u32) % alive.len() as u64) as usize];
            ring.remove(victim);
            dead.push(victim);
            for &k in &sample {
                let owner = ring.owner(k).unwrap();
                prop_assert!(!dead.contains(&owner),
                    "key {:016x} mapped to dead worker {} after round {}", k, owner, round);
            }
        }
        prop_assert_eq!(ring.len(), 1);
    }
}
