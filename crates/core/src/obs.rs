//! Observability substrate: trace identifiers, per-request span
//! timelines, the per-process trace ring, and Prometheus text rendering.
//!
//! Every tier of the serving stack (router, worker) shares this module:
//!
//! * A request opts into tracing by sending an `X-Tenet-Trace-Id`
//!   header; the [`TraceId`] is adopted at the edge (a garbled one
//!   degrades to a generated id) and rides every hop (proxy dispatch,
//!   hedge, replication warm write). Header-less requests skip span
//!   recording entirely — the untraced hot path pays nothing.
//! * While a request is handled, a [`TraceScope`] is active on the
//!   handling thread; any layer underneath (dedup, the ISL substrate,
//!   the DSE chunk loop) can attach [`Span`]s to the innermost active
//!   scope via [`add_span`]/[`add_event`] without threading a context
//!   through every signature. Scopes nest: a router thread dispatching
//!   into an in-process worker core holds two scopes, and each tier's
//!   spans land in its own record.
//! * Finished timelines become [`TraceRecord`]s in a fixed-size
//!   [`TraceRing`] per process ([`TraceStore`] keeps one ring of recent
//!   traces and one of recent-slowest), served by `GET /v1/trace/<id>`
//!   and `GET /v1/trace/slow`.
//! * [`PromBuf`] renders counters, gauges, and cumulative-bucket
//!   histograms in the Prometheus text exposition format for the
//!   `/metrics` endpoints.
//!
//! Spans are either **phases** — disjoint intervals whose durations sum
//! to (approximately) the record's total, the contract behind the
//! `X-Tenet-Server-Timing` response header — or informational **events**
//! (retries, breaker trips, DSE chunk progress) that annotate the
//! timeline without participating in the sum.

use crate::json::Json;
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A 64-bit request trace identifier, rendered as 16 lowercase hex
/// digits in headers and URLs. Zero is reserved ("no trace").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Parses the header/URL form: 1–16 hex digits, case-insensitive.
    /// Zero and malformed text are rejected, so a garbled client header
    /// degrades to a fresh id instead of a poisoned one.
    pub fn parse(text: &str) -> Option<TraceId> {
        if text.is_empty() || text.len() > 16 {
            return None;
        }
        u64::from_str_radix(text, 16)
            .ok()
            .filter(|&v| v != 0)
            .map(TraceId)
    }

    /// Generates a fresh process-unique id by mixing a monotone counter
    /// with the process start time (so two processes booted apart don't
    /// collide on their first requests).
    pub fn generate() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
        let seed = *SEED.get_or_init(|| {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x9e3779b97f4a7c15);
            mix64(nanos ^ (&COUNTER as *const _ as u64))
        });
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = mix64(seed.wrapping_add(n.wrapping_mul(0x9e3779b97f4a7c15)));
        TraceId(if id == 0 { 1 } else { id })
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// splitmix64's finalizer: a cheap, well-distributed 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// One interval (or instantaneous event) on a request's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What the interval was spent on (`dedup`, `compute`, `upstream`…).
    pub name: String,
    /// Microseconds from the record's start to this span's start.
    pub start_us: u64,
    /// The span's duration in microseconds (0 for events).
    pub dur_us: u64,
    /// Free-form annotation (`leader`, `hits=3 misses=1`, …); may be empty.
    pub detail: String,
    /// Phases are disjoint and sum to ≈ the record total (the
    /// `Server-Timing` contract); events are informational only.
    pub phase: bool,
}

impl Span {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("start_us", Json::from(self.start_us)),
            ("dur_us", Json::from(self.dur_us)),
            ("detail", Json::from(self.detail.as_str())),
            ("phase", Json::from(self.phase)),
        ])
    }
}

/// The finished timeline of one request at one tier.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The request's trace id.
    pub id: u64,
    /// Which tier recorded it: `"router"` or `"worker"`.
    pub tier: &'static str,
    /// `METHOD path` of the traced request.
    pub endpoint: String,
    /// The response status the tier produced.
    pub status: u16,
    /// End-to-end handling time at this tier, in microseconds.
    pub total_us: u64,
    /// The span timeline, in recording order.
    pub spans: Vec<Span>,
}

impl TraceRecord {
    /// The JSON form served by `/v1/trace/<id>`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::from(TraceId(self.id).to_string())),
            ("tier", Json::from(self.tier)),
            ("endpoint", Json::from(self.endpoint.as_str())),
            ("status", Json::from(u64::from(self.status))),
            ("total_us", Json::from(self.total_us)),
            (
                "spans",
                Json::Arr(self.spans.iter().map(Span::to_json).collect()),
            ),
        ])
    }

    /// The `Server-Timing` header value: every phase span as
    /// `name;dur=<ms>`, comma-separated. Empty if there are no phases.
    pub fn server_timing(&self) -> String {
        let mut out = String::new();
        for s in self.spans.iter().filter(|s| s.phase) {
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(&format!("{};dur={:.3}", s.name, s.dur_us as f64 / 1e3));
        }
        out
    }

    /// The sum of the phase durations, in microseconds — the quantity the
    /// cluster tests hold to within 10% of [`TraceRecord::total_us`].
    pub fn phase_sum_us(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.phase)
            .map(|s| s.dur_us)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// The active-scope stack (thread-local, mirroring the ISL cache's
// attached-handle stack): deep layers annotate the innermost scope.
// ---------------------------------------------------------------------------

struct ActiveTrace {
    start: Instant,
    spans: Vec<Span>,
}

thread_local! {
    static ACTIVE: RefCell<Vec<ActiveTrace>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard marking a trace as active on the current thread.
/// Dropping (or [`finish`](TraceScope::finish)ing) it pops the scope.
/// Deliberately `!Send`: the scope must end on the thread that began it.
pub struct TraceScope {
    start: Instant,
    finished: bool,
    _not_send: PhantomData<*const ()>,
}

/// Begins a trace scope on this thread. Spans added while it is the
/// innermost active scope accumulate into it.
pub fn begin() -> TraceScope {
    let start = Instant::now();
    ACTIVE.with(|a| {
        a.borrow_mut().push(ActiveTrace {
            start,
            spans: Vec::with_capacity(8),
        })
    });
    TraceScope {
        start,
        finished: false,
        _not_send: PhantomData,
    }
}

/// Whether any trace scope is active on this thread — the cheap gate
/// deep layers use to skip span bookkeeping entirely when untraced.
pub fn is_active() -> bool {
    ACTIVE.with(|a| !a.borrow().is_empty())
}

impl TraceScope {
    /// When this scope began.
    pub fn start(&self) -> Instant {
        self.start
    }

    /// Ends the scope, returning the collected spans.
    pub fn finish(mut self) -> Vec<Span> {
        self.finished = true;
        ACTIVE
            .with(|a| a.borrow_mut().pop())
            .map(|t| t.spans)
            .unwrap_or_default()
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.with(|a| {
                a.borrow_mut().pop();
            });
        }
    }
}

/// Adds a phase span `[start, start + dur)` to the innermost active
/// scope. A no-op when no scope is active.
pub fn add_span(name: &str, start: Instant, dur: Duration, detail: impl Into<String>) {
    push_span(name, Some(start), dur, detail.into(), true);
}

/// Adds an informational zero-duration event at "now" to the innermost
/// active scope. A no-op when no scope is active.
pub fn add_event(name: &str, detail: impl Into<String>) {
    push_span(name, None, Duration::ZERO, detail.into(), false);
}

/// Adds an informational (non-phase) interval to the innermost active
/// scope. A no-op when no scope is active.
pub fn add_info_span(name: &str, start: Instant, dur: Duration, detail: impl Into<String>) {
    push_span(name, Some(start), dur, detail.into(), false);
}

/// Edge timings measured before a worker's trace scope exists — the
/// connection-queue wait and the request-parse time — handed into the
/// handler so they can be recorded as the timeline's leading phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeTimings {
    /// Microseconds the connection waited in the accept queue before a
    /// pool thread picked it up (first request on a connection only).
    pub queue_us: u64,
    /// Microseconds spent reading and parsing the request head + body.
    pub parse_us: u64,
}

fn push_span(name: &str, start: Option<Instant>, dur: Duration, detail: String, phase: bool) {
    ACTIVE.with(|a| {
        let mut stack = a.borrow_mut();
        if let Some(t) = stack.last_mut() {
            let start_us = match start {
                Some(s) => s.saturating_duration_since(t.start).as_micros() as u64,
                None => t.start.elapsed().as_micros() as u64,
            };
            t.spans.push(Span {
                name: name.to_string(),
                start_us,
                dur_us: dur.as_micros() as u64,
                detail,
                phase,
            });
        }
    });
}

// ---------------------------------------------------------------------------
// The per-process ring of finished traces.
// ---------------------------------------------------------------------------

/// A fixed-capacity ring of finished [`TraceRecord`]s. Writers claim a
/// slot with one atomic increment and never contend on a shared lock;
/// each slot has its own mutex held only for the pointer swap, so a
/// reader scanning for an id can never stall the request path.
pub struct TraceRing {
    slots: Vec<Mutex<Option<std::sync::Arc<TraceRecord>>>>,
    head: AtomicUsize,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` records (0 disables it).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores a record, evicting the oldest when full.
    pub fn push(&self, rec: std::sync::Arc<TraceRecord>) {
        if self.slots.is_empty() {
            return;
        }
        let i = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[i].lock().unwrap() = Some(rec);
    }

    /// The most recently stored record with the given id, if it is still
    /// in the ring.
    pub fn find(&self, id: u64) -> Option<std::sync::Arc<TraceRecord>> {
        self.slots
            .iter()
            .filter_map(|s| s.lock().unwrap().clone())
            .filter(|r| r.id == id)
            .max_by_key(|r| r.total_us)
    }

    /// Every record currently in the ring, in no particular order.
    pub fn snapshot(&self) -> Vec<std::sync::Arc<TraceRecord>> {
        self.slots
            .iter()
            .filter_map(|s| s.lock().unwrap().clone())
            .collect()
    }
}

/// One process's trace storage: a ring of recent traces (every finished
/// request) plus a ring of recent-slowest ones, so a slow request stays
/// findable after the recent ring has churned past it.
pub struct TraceStore {
    recent: TraceRing,
    slow: TraceRing,
    slow_threshold_us: u64,
}

impl TraceStore {
    /// A store whose rings hold `capacity` records each; requests at or
    /// above `slow_threshold_us` are also kept in the slow ring.
    pub fn new(capacity: usize, slow_threshold_us: u64) -> TraceStore {
        TraceStore {
            recent: TraceRing::new(capacity),
            slow: TraceRing::new(capacity),
            slow_threshold_us,
        }
    }

    /// Whether tracing is enabled at all (capacity 0 disables it).
    pub fn enabled(&self) -> bool {
        self.recent.capacity() > 0
    }

    /// The slow-ring admission threshold, in microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us
    }

    /// Stores a finished record (and mirrors it into the slow ring when
    /// it crossed the threshold). Returns the shared record.
    pub fn record(&self, rec: TraceRecord) -> std::sync::Arc<TraceRecord> {
        let rec = std::sync::Arc::new(rec);
        if self.enabled() {
            self.recent.push(std::sync::Arc::clone(&rec));
            if rec.total_us >= self.slow_threshold_us {
                self.slow.push(std::sync::Arc::clone(&rec));
            }
        }
        rec
    }

    /// Looks an id up in both rings.
    pub fn find(&self, id: u64) -> Option<std::sync::Arc<TraceRecord>> {
        self.recent.find(id).or_else(|| self.slow.find(id))
    }

    /// The slow-ring records at or above `min_us` (defaulting to the
    /// store's own threshold), slowest first.
    pub fn slow(&self, min_us: Option<u64>) -> Vec<std::sync::Arc<TraceRecord>> {
        let floor = min_us.unwrap_or(self.slow_threshold_us);
        let mut out: Vec<_> = self
            .slow
            .snapshot()
            .into_iter()
            .filter(|r| r.total_us >= floor)
            .collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.total_us));
        out
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------------

/// A builder for the Prometheus text exposition format (version 0.0.4):
/// `# TYPE` lines, counter/gauge samples, and histograms with
/// *cumulative* `_bucket{le=...}` series plus `_sum`/`_count`.
#[derive(Default)]
pub struct PromBuf {
    buf: String,
}

impl PromBuf {
    /// An empty exposition.
    pub fn new() -> PromBuf {
        PromBuf::default()
    }

    /// The accumulated exposition text.
    pub fn into_string(self) -> String {
        self.buf
    }

    /// Emits one counter sample (with its `# TYPE` line).
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.typed(name, "counter");
        self.sample(name, labels, &value.to_string());
    }

    /// Emits a counter family sharing one label key: one `# TYPE` line,
    /// then a sample per `(label_value, value)` pair.
    pub fn counter_vec(&mut self, name: &str, label: &str, samples: &[(&str, u64)]) {
        self.typed(name, "counter");
        for (lv, value) in samples {
            self.sample(name, &[(label, lv)], &value.to_string());
        }
    }

    /// Emits one gauge sample (with its `# TYPE` line).
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.typed(name, "gauge");
        self.sample(name, labels, &format_value(value));
    }

    /// Emits a full histogram family from *per-bucket* counts: the
    /// exposition's buckets are cumulative, `u64::MAX` (or anything past
    /// the last finite bound) renders as `le="+Inf"`, and `_sum`/`_count`
    /// close the family. `sum` is in the same unit as the bucket bounds.
    pub fn histogram(&mut self, name: &str, bounds: &[u64], per_bucket: &[u64], sum: u64) {
        self.typed(name, "histogram");
        let mut cumulative = 0u64;
        for (i, &count) in per_bucket.iter().enumerate() {
            cumulative += count;
            let le = match bounds.get(i) {
                Some(&b) if b != u64::MAX => b.to_string(),
                _ => "+Inf".to_string(),
            };
            self.sample(
                &format!("{name}_bucket"),
                &[("le", le.as_str())],
                &cumulative.to_string(),
            );
        }
        self.sample(&format!("{name}_sum"), &[], &sum.to_string());
        self.sample(&format!("{name}_count"), &[], &cumulative.to_string());
    }

    fn typed(&mut self, name: &str, kind: &str) {
        self.buf.push_str("# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                self.buf.push_str(k);
                self.buf.push_str("=\"");
                self.buf.push_str(v);
                self.buf.push('"');
            }
            self.buf.push('}');
        }
        self.buf.push(' ');
        self.buf.push_str(value);
        self.buf.push('\n');
    }
}

/// Renders an `f64` gauge without scientific notation surprises:
/// integral values print bare, fractions keep their precision.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_roundtrip_and_reject_garbage() {
        let id = TraceId(0xdead_beef_0000_0001);
        assert_eq!(TraceId::parse(&id.to_string()), Some(id));
        assert_eq!(TraceId::parse("0"), None, "zero is reserved");
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse("112233445566778899"), None, "too long");
        // Case-insensitive on the way in, lowercase on the way out.
        assert_eq!(TraceId::parse("DEADBEEF"), Some(TraceId(0xdeadbeef)));
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b, "consecutive generated ids must differ");
        assert_ne!(a.0, 0);
    }

    #[test]
    fn scopes_nest_and_spans_land_in_the_innermost() {
        assert!(!is_active());
        let outer = begin();
        assert!(is_active());
        add_span(
            "outer-phase",
            Instant::now(),
            Duration::from_micros(100),
            "",
        );
        {
            let inner = begin();
            add_span("inner-phase", Instant::now(), Duration::from_micros(40), "");
            add_event("inner-event", "detail");
            let spans = inner.finish();
            assert_eq!(spans.len(), 2);
            assert_eq!(spans[0].name, "inner-phase");
            assert!(spans[0].phase);
            assert!(!spans[1].phase);
            assert_eq!(spans[1].detail, "detail");
        }
        // The outer scope is innermost again.
        add_event("outer-event", "");
        let spans = outer.finish();
        assert_eq!(
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["outer-phase", "outer-event"],
        );
        assert!(!is_active());
    }

    #[test]
    fn dropped_scope_pops_without_leaking() {
        {
            let _scope = begin();
            assert!(is_active());
        }
        assert!(!is_active());
    }

    #[test]
    fn ring_evicts_oldest_and_finds_by_id() {
        let ring = TraceRing::new(2);
        let rec = |id: u64| {
            std::sync::Arc::new(TraceRecord {
                id,
                tier: "worker",
                endpoint: "POST /v1/analyze".into(),
                status: 200,
                total_us: id * 10,
                spans: Vec::new(),
            })
        };
        ring.push(rec(1));
        ring.push(rec(2));
        ring.push(rec(3)); // evicts 1
        assert!(ring.find(1).is_none());
        assert_eq!(ring.find(2).unwrap().id, 2);
        assert_eq!(ring.find(3).unwrap().id, 3);
        assert_eq!(ring.snapshot().len(), 2);
        // A zero-capacity ring swallows pushes silently.
        let off = TraceRing::new(0);
        off.push(rec(9));
        assert!(off.find(9).is_none());
    }

    #[test]
    fn store_keeps_slow_traces_past_recent_churn() {
        let store = TraceStore::new(2, 1_000);
        let rec = |id: u64, total_us: u64| TraceRecord {
            id,
            tier: "router",
            endpoint: "POST /v1/dse".into(),
            status: 200,
            total_us,
            spans: Vec::new(),
        };
        store.record(rec(1, 5_000)); // slow
        store.record(rec(2, 10));
        store.record(rec(3, 10)); // churns 1 out of the recent ring
        assert_eq!(
            store.find(1).unwrap().total_us,
            5_000,
            "the slow ring must still hold the slow trace"
        );
        let slow = store.slow(None);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].id, 1);
        assert!(store.slow(Some(10_000)).is_empty());
    }

    #[test]
    fn server_timing_lists_phases_and_sums() {
        let rec = TraceRecord {
            id: 7,
            tier: "worker",
            endpoint: "POST /v1/analyze".into(),
            status: 200,
            total_us: 1_500,
            spans: vec![
                Span {
                    name: "dedup".into(),
                    start_us: 0,
                    dur_us: 500,
                    detail: String::new(),
                    phase: true,
                },
                Span {
                    name: "isl".into(),
                    start_us: 500,
                    dur_us: 900,
                    detail: "hits=3".into(),
                    phase: true,
                },
                Span {
                    name: "dse_chunk".into(),
                    start_us: 600,
                    dur_us: 0,
                    detail: "1/4".into(),
                    phase: false,
                },
            ],
        };
        assert_eq!(rec.server_timing(), "dedup;dur=0.500,isl;dur=0.900");
        assert_eq!(rec.phase_sum_us(), 1_400);
        let json = rec.to_json();
        assert_eq!(
            json.get("trace_id").and_then(Json::as_str),
            Some("0000000000000007")
        );
        assert_eq!(
            json.get("spans").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let mut p = PromBuf::new();
        p.counter("x_total", &[("class", "2xx")], 12);
        p.gauge("g", &[], 3.5);
        p.histogram("lat_us", &[50, 100, u64::MAX], &[2, 3, 1], 456);
        let text = p.into_string();
        assert!(text.contains("# TYPE x_total counter\n"));
        assert!(text.contains("x_total{class=\"2xx\"} 12\n"));
        assert!(text.contains("g 3.5\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"50\"} 2\n"));
        assert!(text.contains("lat_us_bucket{le=\"100\"} 5\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("lat_us_sum 456\n"));
        assert!(text.contains("lat_us_count 6\n"));
    }
}
