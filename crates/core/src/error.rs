//! Error type for the modeling layer.

use std::fmt;

/// Errors produced while building relations or evaluating the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The underlying integer-set machinery failed.
    Isl(tenet_isl::Error),
    /// The workload, dataflow, and architecture are inconsistent
    /// (e.g. dimension mismatches or out-of-bounds PE coordinates).
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Isl(e) => write!(f, "integer-set error: {e}"),
            Error::Invalid(m) => write!(f, "invalid model: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Isl(e) => Some(e),
            Error::Invalid(_) => None,
        }
    }
}

impl From<tenet_isl::Error> for Error {
    fn from(e: tenet_isl::Error) -> Self {
        Error::Isl(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Floor division helper shared by the window expansion.
pub(crate) fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division helper shared by the window expansion.
pub(crate) fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}
