//! Rendering of performance reports as human-readable tables, CSV, and
//! JSON — the output formats the benchmark harness prints for every
//! figure and the analysis service returns for every query.

use crate::json::Json;
use crate::metrics::PerformanceReport;
use crate::op::Role;
use std::fmt::Write as _;

/// Renders a report as an aligned text table.
pub fn to_table(report: &PerformanceReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "op: {}  dataflow: {}  MACs: {}",
        report.op,
        report.dataflow.as_deref().unwrap_or("<unnamed>"),
        report.macs
    );
    let _ = writeln!(
        s,
        "{:<8} {:<7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>11}",
        "tensor", "role", "total", "reuse", "unique", "spatial", "temporal", "factor", "class"
    );
    for (name, t) in &report.tensors {
        let v = &t.volumes;
        let _ = writeln!(
            s,
            "{:<8} {:<7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9.2} {:>11}",
            name,
            match t.role {
                Role::Input => "input",
                Role::Output => "output",
            },
            v.total,
            v.reuse,
            v.unique,
            v.spatial_reuse,
            v.temporal_reuse,
            v.reuse_factor(),
            v.reuse_class()
        );
    }
    let u = &report.utilization;
    let _ = writeln!(
        s,
        "utilization: avg {:.3} max {:.3}{} over {} stamps ({} PEs used)",
        u.average,
        u.max,
        if u.max_is_exact { "" } else { " (probed)" },
        u.time_stamps,
        u.pes_used
    );
    let l = &report.latency;
    let _ = writeln!(
        s,
        "latency: read {:.1} write {:.1} compute {:.1} -> total {:.1}",
        l.read,
        l.write,
        l.compute,
        l.total()
    );
    let b = &report.bandwidth;
    let _ = writeln!(
        s,
        "bandwidth: interconnect {:.3} scratchpad {:.3} (elements/cycle)",
        b.interconnect, b.scratchpad
    );
    let e = &report.energy;
    let _ = writeln!(
        s,
        "energy: compute {:.0} register {:.0} noc {:.0} scratchpad {:.0} dram {:.0} -> {:.0}",
        e.compute,
        e.register,
        e.noc,
        e.scratchpad,
        e.dram,
        e.total()
    );
    s
}

/// The CSV header matching [`to_csv_row`].
pub fn csv_header() -> &'static str {
    "op,dataflow,tensor,role,total,reuse,unique,spatial_reuse,temporal_reuse,\
     reuse_factor,avg_util,max_util,latency,ibw,sbw,energy"
}

/// Renders one CSV row per tensor of the report.
pub fn to_csv_rows(report: &PerformanceReport) -> Vec<String> {
    let mut out = Vec::new();
    for (name, t) in &report.tensors {
        let v = &t.volumes;
        out.push(format!(
            "{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.1},{:.4},{:.4},{:.1}",
            report.op,
            report.dataflow.as_deref().unwrap_or(""),
            name,
            match t.role {
                Role::Input => "input",
                Role::Output => "output",
            },
            v.total,
            v.reuse,
            v.unique,
            v.spatial_reuse,
            v.temporal_reuse,
            v.reuse_factor(),
            report.utilization.average,
            report.utilization.max,
            report.latency.total(),
            report.bandwidth.interconnect,
            report.bandwidth.scratchpad,
            report.energy.total(),
        ));
    }
    out
}

/// Serializes a full report as a [`Json`] object — the response body of
/// the analysis service's `/v1/analyze` and the `report` field of every
/// `/v1/dse` design point.
///
/// Volumes and footprints stay exact integers; derived ratios
/// (`reuse_factor`, utilization, latency, bandwidth, energy) are floats.
/// A `reuse_factor` of `+inf` (zero unique volume) serializes as `null`.
pub fn to_json(report: &PerformanceReport) -> Json {
    let tensors = report
        .tensors
        .iter()
        .map(|(name, t)| {
            let v = &t.volumes;
            (
                name.clone(),
                Json::obj([
                    (
                        "role",
                        Json::from(match t.role {
                            Role::Input => "input",
                            Role::Output => "output",
                        }),
                    ),
                    ("total", Json::from(v.total)),
                    ("reuse", Json::from(v.reuse)),
                    ("unique", Json::from(v.unique)),
                    ("spatial_reuse", Json::from(v.spatial_reuse)),
                    ("temporal_reuse", Json::from(v.temporal_reuse)),
                    ("reuse_factor", Json::from(v.reuse_factor())),
                    ("reuse_class", Json::from(v.reuse_class().to_string())),
                    ("footprint", Json::from(t.footprint)),
                ]),
            )
        })
        .collect();
    let u = &report.utilization;
    let l = &report.latency;
    let b = &report.bandwidth;
    let e = &report.energy;
    let per_tensor = |m: &std::collections::BTreeMap<String, f64>| {
        Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect())
    };
    Json::obj([
        ("op", Json::from(report.op.as_str())),
        (
            "dataflow",
            Json::from(report.dataflow.as_deref().map(str::to_string)),
        ),
        ("macs", Json::from(report.macs)),
        ("tensors", Json::Obj(tensors)),
        (
            "utilization",
            Json::obj([
                ("average", Json::from(u.average)),
                ("max", Json::from(u.max)),
                ("max_is_exact", Json::from(u.max_is_exact)),
                ("pes_used", Json::from(u.pes_used)),
                ("time_stamps", Json::from(u.time_stamps)),
            ]),
        ),
        (
            "latency",
            Json::obj([
                ("read", Json::from(l.read)),
                ("write", Json::from(l.write)),
                ("compute", Json::from(l.compute)),
                ("total", Json::from(l.total())),
            ]),
        ),
        (
            "bandwidth",
            Json::obj([
                ("interconnect", Json::from(b.interconnect)),
                ("scratchpad", Json::from(b.scratchpad)),
                (
                    "scratchpad_per_tensor",
                    per_tensor(&b.scratchpad_per_tensor),
                ),
                (
                    "interconnect_per_tensor",
                    per_tensor(&b.interconnect_per_tensor),
                ),
            ]),
        ),
        (
            "energy",
            Json::obj([
                ("compute", Json::from(e.compute)),
                ("register", Json::from(e.register)),
                ("noc", Json::from(e.noc)),
                ("scratchpad", Json::from(e.scratchpad)),
                ("dram", Json::from(e.dram)),
                ("total", Json::from(e.total())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::arch::{ArchSpec, Interconnect};
    use crate::dataflow::Dataflow;
    use crate::op::TensorOp;

    fn report() -> PerformanceReport {
        let gemm = TensorOp::builder("gemm")
            .dim("i", 2)
            .dim("j", 2)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = Dataflow::new(["i", "j"], ["i + j + k"]).named("fig3");
        let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
        Analysis::new(&gemm, &df, &arch).unwrap().report().unwrap()
    }

    #[test]
    fn table_contains_key_numbers() {
        let t = to_table(&report());
        assert!(t.contains("MACs: 16"));
        assert!(t.contains("tensor"));
        assert!(t.contains("Y"));
        assert!(t.contains("total 6.0"));
    }

    #[test]
    fn json_report_is_deterministic_and_reparses() {
        let r = report();
        let text = to_json(&r).to_string();
        assert_eq!(text, to_json(&r).to_string(), "encoding must be stable");
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("gemm"));
        assert_eq!(v.get("macs").and_then(Json::as_u64), Some(16));
        let y = v.get("tensors").and_then(|t| t.get("Y")).unwrap();
        assert_eq!(y.get("role").and_then(Json::as_str), Some("output"));
        assert_eq!(
            v.get("latency")
                .and_then(|l| l.get("total"))
                .and_then(Json::as_f64),
            Some(r.latency.total())
        );
    }

    #[test]
    fn csv_row_count_and_fields() {
        let r = report();
        let rows = to_csv_rows(&r);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.split(',').count(), csv_header().split(',').count());
        }
    }
}
