//! Rendering of performance reports as human-readable tables and CSV —
//! the output formats the benchmark harness prints for every figure.

use crate::metrics::PerformanceReport;
use crate::op::Role;
use std::fmt::Write as _;

/// Renders a report as an aligned text table.
pub fn to_table(report: &PerformanceReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "op: {}  dataflow: {}  MACs: {}",
        report.op,
        report.dataflow.as_deref().unwrap_or("<unnamed>"),
        report.macs
    );
    let _ = writeln!(
        s,
        "{:<8} {:<7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>11}",
        "tensor", "role", "total", "reuse", "unique", "spatial", "temporal", "factor", "class"
    );
    for (name, t) in &report.tensors {
        let v = &t.volumes;
        let _ = writeln!(
            s,
            "{:<8} {:<7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9.2} {:>11}",
            name,
            match t.role {
                Role::Input => "input",
                Role::Output => "output",
            },
            v.total,
            v.reuse,
            v.unique,
            v.spatial_reuse,
            v.temporal_reuse,
            v.reuse_factor(),
            v.reuse_class()
        );
    }
    let u = &report.utilization;
    let _ = writeln!(
        s,
        "utilization: avg {:.3} max {:.3}{} over {} stamps ({} PEs used)",
        u.average,
        u.max,
        if u.max_is_exact { "" } else { " (probed)" },
        u.time_stamps,
        u.pes_used
    );
    let l = &report.latency;
    let _ = writeln!(
        s,
        "latency: read {:.1} write {:.1} compute {:.1} -> total {:.1}",
        l.read,
        l.write,
        l.compute,
        l.total()
    );
    let b = &report.bandwidth;
    let _ = writeln!(
        s,
        "bandwidth: interconnect {:.3} scratchpad {:.3} (elements/cycle)",
        b.interconnect, b.scratchpad
    );
    let e = &report.energy;
    let _ = writeln!(
        s,
        "energy: compute {:.0} register {:.0} noc {:.0} scratchpad {:.0} dram {:.0} -> {:.0}",
        e.compute,
        e.register,
        e.noc,
        e.scratchpad,
        e.dram,
        e.total()
    );
    s
}

/// The CSV header matching [`to_csv_row`].
pub fn csv_header() -> &'static str {
    "op,dataflow,tensor,role,total,reuse,unique,spatial_reuse,temporal_reuse,\
     reuse_factor,avg_util,max_util,latency,ibw,sbw,energy"
}

/// Renders one CSV row per tensor of the report.
pub fn to_csv_rows(report: &PerformanceReport) -> Vec<String> {
    let mut out = Vec::new();
    for (name, t) in &report.tensors {
        let v = &t.volumes;
        out.push(format!(
            "{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.1},{:.4},{:.4},{:.1}",
            report.op,
            report.dataflow.as_deref().unwrap_or(""),
            name,
            match t.role {
                Role::Input => "input",
                Role::Output => "output",
            },
            v.total,
            v.reuse,
            v.unique,
            v.spatial_reuse,
            v.temporal_reuse,
            v.reuse_factor(),
            report.utilization.average,
            report.utilization.max,
            report.latency.total(),
            report.bandwidth.interconnect,
            report.bandwidth.scratchpad,
            report.energy.total(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::arch::{ArchSpec, Interconnect};
    use crate::dataflow::Dataflow;
    use crate::op::TensorOp;

    fn report() -> PerformanceReport {
        let gemm = TensorOp::builder("gemm")
            .dim("i", 2)
            .dim("j", 2)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = Dataflow::new(["i", "j"], ["i + j + k"]).named("fig3");
        let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
        Analysis::new(&gemm, &df, &arch).unwrap().report().unwrap()
    }

    #[test]
    fn table_contains_key_numbers() {
        let t = to_table(&report());
        assert!(t.contains("MACs: 16"));
        assert!(t.contains("tensor"));
        assert!(t.contains("Y"));
        assert!(t.contains("total 6.0"));
    }

    #[test]
    fn csv_row_count_and_fields() {
        let r = report();
        let rows = to_csv_rows(&r);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.split(',').count(), csv_header().split(',').count());
        }
    }
}
