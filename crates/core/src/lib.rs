//! # tenet-core
//!
//! The relation-centric notation and performance model of
//! *TENET: A Framework for Modeling Tensor Dataflow Based on
//! Relation-centric Notation* (ISCA 2021).
//!
//! A tensor computation on a spatial architecture is described by four
//! relations (Section IV):
//!
//! 1. **Dataflow** `Θ = { S[n] -> (PE[p] | T[t]) }` — where and when every
//!    loop instance executes ([`Dataflow`]).
//! 2. **Data assignment** `A_{D,F} = Θ⁻¹ . A_{S,F}` — which tensor element
//!    each spacetime-stamp touches ([`Analysis::assignment`]).
//! 3. **Interconnection** `{ PE[p] -> PE[p'] }` — how data may move between
//!    PEs ([`Interconnect`]).
//! 4. **Spacetime maps** `M_{D,D'}` — adjacency between stamps, from which
//!    data reuse is detected ([`Analysis::spatial_map`],
//!    [`Analysis::temporal_map`]).
//!
//! Every metric of Section V (volumes, latency, bandwidth, utilization,
//! energy) is an exact integer-set computation over these relations.
//!
//! ```
//! use tenet_core::{Analysis, ArchSpec, Dataflow, Interconnect, TensorOp};
//!
//! let gemm = TensorOp::builder("gemm")
//!     .dim("i", 2).dim("j", 2).dim("k", 4)
//!     .read("A", ["i", "k"])
//!     .read("B", ["k", "j"])
//!     .write("Y", ["i", "j"])
//!     .build()?;
//! let dataflow = Dataflow::new(["i", "j"], ["i + j + k"]);
//! let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
//! let report = Analysis::new(&gemm, &dataflow, &arch)?.report()?;
//! assert_eq!(report.macs, 16);
//! assert_eq!(report.latency.total(), 6.0);
//! # Ok::<(), tenet_core::Error>(())
//! ```

#![warn(missing_docs)]

mod analysis;
mod arch;
mod dataflow;
mod error;
pub mod export;
pub mod json;
mod metrics;
pub mod obs;
mod op;
mod validate;

pub use analysis::{Analysis, AnalysisOptions};
pub use arch::{presets, ArchSpec, EnergyModel, Interconnect};
pub use dataflow::Dataflow;
pub(crate) use error::{div_ceil, div_floor};
pub use error::{Error, Result};
pub use metrics::{
    Bandwidth, Energy, Latency, PerformanceReport, ReuseClass, TensorMetrics, Utilization,
    VolumeMetrics,
};
pub use op::{LoopDim, Role, TensorAccess, TensorOp, TensorOpBuilder};
pub use validate::{validate, ValidationReport};

/// The process-wide integer-set operation cache (re-exported from
/// [`tenet_isl::cache`]): statistics, reset, and enable/disable controls.
/// Exploration drivers use it to amortize relational work across
/// candidates and to report hit rates.
pub use tenet_isl::cache as isl_cache;
pub use tenet_isl::{fast_path_stats, CacheStats, CountStats, CounterHandle};
