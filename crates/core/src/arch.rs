//! Spatial-architecture specification: PE array, interconnect topology,
//! scratchpad bandwidth, and energy cost table (Section II-A, Figure 4).

use crate::{Error, Result};
use tenet_isl::Set;

/// PE interconnection topology (Definition 3 and Figure 4).
///
/// Every topology is described by the set of coordinate *offsets* a datum
/// can travel in one step, plus whether the transfer consumes a cycle
/// (systolic/mesh) or happens within the same cycle over wires (multicast).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Interconnect {
    /// Links along the innermost PE dimension only: `(i' = i, j' = j+1)`.
    Systolic1D,
    /// 2D systolic transfer: `(i'=i, j'=j+1) or (i'=i+1, j'=j)` — the TPU
    /// interconnect.
    Systolic2D,
    /// Mesh NoC: `abs(i'-i) <= 1 and abs(j'-j) <= 1` (DySER, Plasticine).
    Mesh,
    /// 1D multicast over shared wires reaching PEs within `radius` along
    /// the innermost dimension in the *same* cycle (Eyeriss, DianNao).
    Multicast {
        /// Maximum coordinate distance reachable over the shared wire.
        radius: i64,
    },
    /// Arbitrary offset set.
    Custom {
        /// Coordinate deltas reachable in one transfer.
        offsets: Vec<Vec<i64>>,
        /// Whether the transfer happens within the same cycle (wires) or
        /// takes one cycle (registered links).
        same_cycle: bool,
    },
}

impl Interconnect {
    /// The neighbor offsets for an `n`-dimensional PE array.
    pub fn offsets(&self, n: usize) -> Result<Vec<Vec<i64>>> {
        if n == 0 {
            return Err(Error::Invalid(
                "PE array needs at least one dimension".into(),
            ));
        }
        let unit = |d: usize, v: i64| -> Vec<i64> {
            let mut o = vec![0i64; n];
            o[d] = v;
            o
        };
        match self {
            Interconnect::Systolic1D => Ok(vec![unit(n - 1, 1)]),
            Interconnect::Systolic2D => {
                if n == 1 {
                    Ok(vec![unit(0, 1)])
                } else {
                    Ok(vec![unit(n - 1, 1), unit(n - 2, 1)])
                }
            }
            Interconnect::Mesh => {
                // All nonzero offset vectors with each component in
                // {-1, 0, 1}.
                let mut out = Vec::new();
                let total = 3usize.pow(n as u32);
                for code in 0..total {
                    let mut o = Vec::with_capacity(n);
                    let mut c = code;
                    for _ in 0..n {
                        o.push((c % 3) as i64 - 1);
                        c /= 3;
                    }
                    if o.iter().any(|&v| v != 0) {
                        out.push(o);
                    }
                }
                Ok(out)
            }
            Interconnect::Multicast { radius } => {
                if *radius <= 0 {
                    return Err(Error::Invalid("multicast radius must be positive".into()));
                }
                // Multicast transfers are directional (from the wire's
                // entry PE towards higher coordinates). A symmetric offset
                // set with a zero-cycle delta would make availability
                // circular: every PE could claim the datum from a
                // neighbor, and no access would ever count as the fetch
                // from the scratchpad.
                let mut out = Vec::new();
                for d in 1..=*radius {
                    out.push(unit(n - 1, d));
                }
                Ok(out)
            }
            Interconnect::Custom { offsets, .. } => {
                for o in offsets {
                    if o.len() != n {
                        return Err(Error::Invalid(format!(
                            "custom offset has {} components, PE array has {n}",
                            o.len()
                        )));
                    }
                }
                Ok(offsets.clone())
            }
        }
    }

    /// Cycles a single inter-PE transfer takes (0 for same-cycle wires).
    pub fn time_delta(&self) -> i64 {
        match self {
            Interconnect::Multicast { .. } => 0,
            Interconnect::Custom { same_cycle, .. } => i64::from(!*same_cycle),
            _ => 1,
        }
    }

    /// Short display name used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Interconnect::Systolic1D => "1D-sys",
            Interconnect::Systolic2D => "2D-sys",
            Interconnect::Mesh => "mesh",
            Interconnect::Multicast { .. } => "multicast",
            Interconnect::Custom { .. } => "custom",
        }
    }
}

/// Relative energy per access, normalized to one MAC operation.
///
/// Defaults follow the Eyeriss energy hierarchy (register file ≈ MAC,
/// inter-PE hop ≈ 2×, scratchpad ≈ 6×, DRAM ≈ 200×).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// One multiply-accumulate.
    pub mac: f64,
    /// One PE register-file access.
    pub register: f64,
    /// One inter-PE NoC hop.
    pub noc_hop: f64,
    /// One scratchpad (global buffer) access.
    pub scratchpad: f64,
    /// One off-chip DRAM access.
    pub dram: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            mac: 1.0,
            register: 1.0,
            noc_hop: 2.0,
            scratchpad: 6.0,
            dram: 200.0,
        }
    }
}

/// A spatial architecture: PE array shape, interconnect, scratchpad
/// bandwidth (elements per cycle), buffer capacity, and energy table.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchSpec {
    /// Human-readable name.
    pub name: String,
    /// PE array extents, e.g. `[8, 8]` for an 8×8 array.
    pub pe_dims: Vec<i64>,
    /// Inter-PE interconnect topology.
    pub interconnect: Interconnect,
    /// Scratchpad bandwidth in tensor elements per cycle.
    pub bandwidth: f64,
    /// Scratchpad capacity in tensor elements.
    pub scratchpad_capacity: u64,
    /// Energy cost table.
    pub energy: EnergyModel,
}

impl ArchSpec {
    /// Creates an architecture with default buffer size and energy table.
    pub fn new<I: IntoIterator<Item = i64>>(
        name: &str,
        pe_dims: I,
        interconnect: Interconnect,
        bandwidth: f64,
    ) -> ArchSpec {
        ArchSpec {
            name: name.to_string(),
            pe_dims: pe_dims.into_iter().collect(),
            interconnect,
            bandwidth,
            scratchpad_capacity: 1 << 20,
            energy: EnergyModel::default(),
        }
    }

    /// Total number of PEs.
    pub fn pe_count(&self) -> u128 {
        self.pe_dims.iter().map(|&d| d.max(0) as u128).product()
    }

    /// The PE array as an integer set `{ PE[p0, ...] : 0 <= p_i < dim_i }`.
    pub fn pe_set(&self) -> Result<Set> {
        let names: Vec<String> = (0..self.pe_dims.len()).map(|i| format!("p{i}")).collect();
        let cons: Vec<String> = self
            .pe_dims
            .iter()
            .zip(names.iter())
            .map(|(d, n)| format!("0 <= {n} < {d}"))
            .collect();
        let text = format!("{{ PE[{}] : {} }}", names.join(", "), cons.join(" and "));
        Ok(Set::parse(&text)?)
    }
}

/// The common spatial-architecture repository mentioned in Figure 2.
pub mod presets {
    use super::*;

    /// A TPU-like systolic array.
    pub fn tpu_like(rows: i64, cols: i64, bandwidth: f64) -> ArchSpec {
        ArchSpec::new(
            "tpu-like",
            [rows, cols],
            Interconnect::Systolic2D,
            bandwidth,
        )
    }

    /// An Eyeriss-like array (12×14 in the paper's Fig. 11/12 experiments)
    /// with a mesh NoC.
    pub fn eyeriss_like(bandwidth: f64) -> ArchSpec {
        ArchSpec::new("eyeriss-like", [12, 14], Interconnect::Mesh, bandwidth)
    }

    /// An Eyeriss-like array with its actual NoC: same-cycle multicast
    /// buses along each row (filter / input delivery) and each column
    /// (partial-sum sharing). Offsets are directional so availability is
    /// well-founded within a cycle.
    pub fn eyeriss_noc(rows: i64, cols: i64, bandwidth: f64) -> ArchSpec {
        let mut offsets = Vec::new();
        for d in 1..cols {
            offsets.push(vec![0, d]);
        }
        for d in 1..rows {
            offsets.push(vec![d, 0]);
        }
        ArchSpec::new(
            "eyeriss-noc",
            [rows, cols],
            Interconnect::Custom {
                offsets,
                same_cycle: true,
            },
            bandwidth,
        )
    }

    /// A ShiDianNao-like 8×8 output-stationary array.
    pub fn shidiannao_like(bandwidth: f64) -> ArchSpec {
        ArchSpec::new("shidiannao-like", [8, 8], Interconnect::Mesh, bandwidth)
    }

    /// A MAERI-like 1D multiplier array fed by a distribution tree:
    /// multipliers are the PEs, connected via same-cycle multicast links.
    pub fn maeri_like(n_mult: i64, bandwidth: f64) -> ArchSpec {
        ArchSpec::new(
            "maeri-like",
            [n_mult],
            Interconnect::Multicast { radius: 3 },
            bandwidth,
        )
    }

    /// A generic mesh-connected square array (used for the MAESTRO
    /// comparison, Section VI-A).
    pub fn mesh(rows: i64, cols: i64, bandwidth: f64) -> ArchSpec {
        ArchSpec::new("mesh", [rows, cols], Interconnect::Mesh, bandwidth)
    }

    /// A generic 2D-systolic square array.
    pub fn systolic(rows: i64, cols: i64, bandwidth: f64) -> ArchSpec {
        ArchSpec::new(
            "systolic",
            [rows, cols],
            Interconnect::Systolic2D,
            bandwidth,
        )
    }

    /// A named preset constructor.
    type PresetEntry = (&'static str, fn() -> ArchSpec);

    /// Name → constructor table, the single source for [`names`] and
    /// [`by_name`] (so the advertised list can never drift from what
    /// resolves).
    const TABLE: &[PresetEntry] = &[
        ("tpu8x8", || tpu_like(8, 8, 64.0)),
        ("tpu16x16", || tpu_like(16, 16, 128.0)),
        ("eyeriss", || eyeriss_like(16.0)),
        ("shidiannao", || shidiannao_like(16.0)),
        ("maeri64", || maeri_like(64, 16.0)),
        ("mesh8x8", || mesh(8, 8, 16.0)),
    ];

    /// The preset names accepted by [`by_name`], in display order.
    pub fn names() -> Vec<&'static str> {
        TABLE.iter().map(|(n, _)| *n).collect()
    }

    /// Resolves a named preset — the shared vocabulary of the CLI's
    /// `--preset` option and the analysis service's `"preset"` request
    /// field. Returns `None` for unknown names (callers render their own
    /// error with [`names`]).
    pub fn by_name(name: &str) -> Option<ArchSpec> {
        TABLE.iter().find(|(n, _)| *n == name).map(|(_, f)| f())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_advertised_preset_resolves() {
        let names = presets::names();
        assert!(!names.is_empty());
        for name in names {
            let arch = presets::by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(arch.bandwidth > 0.0, "{name}");
        }
        assert!(presets::by_name("not-a-preset").is_none());
    }

    #[test]
    fn systolic2d_offsets() {
        let o = Interconnect::Systolic2D.offsets(2).unwrap();
        assert_eq!(o.len(), 2);
        assert!(o.contains(&vec![0, 1]));
        assert!(o.contains(&vec![1, 0]));
    }

    #[test]
    fn mesh_offsets_2d() {
        let o = Interconnect::Mesh.offsets(2).unwrap();
        assert_eq!(o.len(), 8);
        assert!(o.contains(&vec![-1, -1]));
        assert!(!o.contains(&vec![0, 0]));
    }

    #[test]
    fn multicast_offsets_and_delta() {
        let ic = Interconnect::Multicast { radius: 3 };
        let o = ic.offsets(1).unwrap();
        // Directional: towards higher coordinates only.
        assert_eq!(o, vec![vec![1], vec![2], vec![3]]);
        assert_eq!(ic.time_delta(), 0);
        assert_eq!(Interconnect::Systolic2D.time_delta(), 1);
    }

    #[test]
    fn pe_set_cardinality() {
        let arch = presets::tpu_like(8, 8, 16.0);
        assert_eq!(arch.pe_count(), 64);
        assert_eq!(arch.pe_set().unwrap().card().unwrap(), 64);
    }

    #[test]
    fn custom_offsets_validated() {
        let ic = Interconnect::Custom {
            offsets: vec![vec![1]],
            same_cycle: false,
        };
        assert!(ic.offsets(2).is_err());
        assert_eq!(ic.time_delta(), 1);
    }
}
