//! A small, dependency-free JSON value model with a strict parser and a
//! deterministic writer.
//!
//! The repo builds offline (no serde), yet three layers need to speak
//! JSON: the analysis service (`tenet-server`) decodes request bodies and
//! encodes responses, the benchmark harness emits the committed
//! `BENCH_*.json` artifacts, and [`crate::export::to_json`] serializes
//! [`crate::PerformanceReport`]s. This module is that shared substrate.
//!
//! Two properties matter for the service's request-deduplication layer
//! and are guaranteed here:
//!
//! * **Deterministic output** — objects preserve insertion order and
//!   numbers format reproducibly, so encoding the same value twice yields
//!   byte-identical text.
//! * **Canonicalization** — [`Json::to_canonical_string`] serializes with
//!   recursively sorted object keys and no whitespace, so two requests
//!   that differ only in key order or formatting map to the same cache
//!   key.
//!
//! Integers are kept exact: values that fit `i128` stay integral end to
//! end (the volume metrics are `u128`), only genuine fractions go through
//! `f64`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number, exact up to `i128`.
    Int(i128),
    /// A non-integral (or out-of-`i128`-range) number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value under `key`, if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if `self` is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with recursively sorted object keys and no whitespace.
    ///
    /// Two texts that parse to the same logical value canonicalize to the
    /// same string — and, just as important for cache-key use, two values
    /// a consumer may treat *differently* never collide: unlike
    /// [`Display`](fmt::Display), the canonical form keeps `Num(1.0)`
    /// distinct from `Int(1)` (`1.0` vs `1`) and non-finite floats
    /// distinct from `null` (`!inf`/`!-inf`/`!nan` markers — the output
    /// is a key, not necessarily valid JSON).
    pub fn to_canonical_string(&self) -> String {
        fn write_canonical(v: &Json, out: &mut String) {
            match v {
                Json::Num(n) => {
                    use fmt::Write as _;
                    if !n.is_finite() {
                        out.push_str(if n.is_nan() {
                            "!nan"
                        } else if *n > 0.0 {
                            "!inf"
                        } else {
                            "!-inf"
                        });
                    } else if n.fract() == 0.0 {
                        // Keep a float spelling so Num(1.0) ≠ Int(1).
                        let _ = write!(out, "{n:.1}");
                    } else {
                        let _ = write!(out, "{n}");
                    }
                }
                Json::Obj(pairs) => {
                    let mut sorted: Vec<&(String, Json)> = pairs.iter().collect();
                    sorted.sort_by(|a, b| a.0.cmp(&b.0));
                    out.push('{');
                    for (i, (k, v)) in sorted.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_string(k, out);
                        out.push(':');
                        write_canonical(v, out);
                    }
                    out.push('}');
                }
                Json::Arr(items) => {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_canonical(v, out);
                    }
                    out.push(']');
                }
                leaf => {
                    use fmt::Write as _;
                    let _ = write!(out, "{leaf}");
                }
            }
        }
        let mut out = String::new();
        write_canonical(self, &mut out);
        out
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing content rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after JSON value"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i as i128)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i128)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i128)
    }
}

impl From<u128> for Json {
    fn from(i: u128) -> Json {
        match i128::try_from(i) {
            Ok(v) => Json::Int(v),
            Err(_) => Json::Num(i as f64),
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact serialization; object keys keep insertion order. `Display`
    /// of the same value is deterministic, so encoded responses are
    /// byte-stable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Int(i) => write!(f, "{i}"),
            // Non-finite floats have no JSON spelling; `null` is the
            // conventional lossy stand-in (reuse factors can be +inf).
            Json::Num(n) if !n.is_finite() => f.write_str("null"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_string(s, &mut buf);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_string(k, &mut buf);
                    f.write_str(&buf)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure with a byte offset into the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: deeper documents are rejected, bounding recursion
/// for untrusted request bodies.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi as u32)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input slice is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digit_start = self.pos;
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[digit_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digit"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        Json::parse(text).unwrap().to_string()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("3.5"), "3.5");
        assert_eq!(
            roundtrip("\"hi\\n\\\"there\\\"\""),
            "\"hi\\n\\\"there\\\"\""
        );
    }

    #[test]
    fn big_integers_stay_exact() {
        let big = u128::MAX / 3;
        let v = Json::from(big);
        assert_eq!(v.to_string(), big.to_string());
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, Json::Int(big as i128));
    }

    #[test]
    fn nested_structure_parses() {
        let v = Json::parse(r#"{"a": [1, 2.5, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""Aé 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé 😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "+1",
            "tru",
            "\"\x01\"",
            "[1] extra",
            "nul",
            "--1",
            "1e",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn canonical_form_ignores_key_order_and_whitespace() {
        let a = Json::parse(r#"{ "b": [1, 2], "a": {"y": 1, "x": 2} }"#).unwrap();
        let b = Json::parse(r#"{"a":{"x":2,"y":1},"b":[1,2]}"#).unwrap();
        assert_eq!(a.to_canonical_string(), b.to_canonical_string());
        assert_eq!(a.to_canonical_string(), r#"{"a":{"x":2,"y":1},"b":[1,2]}"#);
        // Display preserves insertion order instead.
        assert_eq!(a.to_string(), r#"{"b":[1,2],"a":{"y":1,"x":2}}"#);
    }

    #[test]
    fn canonical_form_keeps_distinct_values_distinct() {
        // A consumer (e.g. the server's integer-field decoding) treats
        // Int(1) and Num(1.0) differently, so their cache keys must
        // differ too — same for null vs a float that overflowed to inf.
        let int_v = Json::parse(r#"{"window":1}"#).unwrap();
        let num_v = Json::parse(r#"{"window":1.0}"#).unwrap();
        assert_ne!(int_v.to_canonical_string(), num_v.to_canonical_string());
        let null_v = Json::parse(r#"{"x":null}"#).unwrap();
        let inf_v = Json::parse(r#"{"x":1e999}"#).unwrap();
        assert_ne!(null_v.to_canonical_string(), inf_v.to_canonical_string());
        assert_ne!(
            Json::Num(f64::NAN).to_canonical_string(),
            Json::Null.to_canonical_string()
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn display_is_deterministic() {
        let v = Json::obj([
            ("z", Json::from(1.25)),
            ("a", Json::from(vec![Json::Null, Json::from(true)])),
        ]);
        assert_eq!(v.to_string(), v.to_string());
        assert_eq!(v.to_string(), r#"{"z":1.25,"a":[null,true]}"#);
    }
}
