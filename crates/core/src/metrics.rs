//! Metric records produced by the performance model (Section V).

use crate::op::Role;
use std::collections::BTreeMap;

/// The volume metrics of Table II plus the spatial/temporal split of
/// Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeMetrics {
    /// Total tensor-data accesses across all spacetime-stamps.
    pub total: u128,
    /// Accesses satisfiable from an adjacent spacetime-stamp.
    pub reuse: u128,
    /// `total - reuse`: minimum scratchpad traffic.
    pub unique: u128,
    /// Reuse across interconnected, distinct PEs.
    pub spatial_reuse: u128,
    /// Reuse within the same PE across consecutive time-stamps.
    pub temporal_reuse: u128,
}

impl VolumeMetrics {
    /// `ReuseFactor = TotalVolume / UniqueVolume` (Table II).
    pub fn reuse_factor(&self) -> f64 {
        if self.unique == 0 {
            f64::INFINITY
        } else {
            self.total as f64 / self.unique as f64
        }
    }

    /// Classifies how the tensor is reused under this dataflow — the
    /// vocabulary of Section VI-C ("tensor Y is kept stationary ...
    /// A and B flow through the PE array").
    pub fn reuse_class(&self) -> ReuseClass {
        match (self.temporal_reuse > 0, self.spatial_reuse > 0) {
            (false, false) => ReuseClass::NoReuse,
            (true, false) => ReuseClass::Stationary,
            (false, true) => ReuseClass::Flowing,
            (true, true) => ReuseClass::Mixed,
        }
    }
}

/// How a tensor is reused by a dataflow (Section VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseClass {
    /// No adjacent spacetime-stamp ever re-touches an element: every
    /// access is a scratchpad fetch.
    NoReuse,
    /// Purely temporal reuse — the element stays in one PE's registers
    /// across time-stamps (an output-stationary accumulator).
    Stationary,
    /// Purely spatial reuse — the element travels between PEs over the
    /// interconnect (systolic or multicast flow).
    Flowing,
    /// Both temporal and spatial reuse occur.
    Mixed,
}

impl std::fmt::Display for ReuseClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReuseClass::NoReuse => "no-reuse",
            ReuseClass::Stationary => "stationary",
            ReuseClass::Flowing => "flowing",
            ReuseClass::Mixed => "mixed",
        };
        f.pad(s)
    }
}

/// Metrics attached to one tensor of the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorMetrics {
    /// Input or output.
    pub role: Role,
    /// Volume metrics of this tensor.
    pub volumes: VolumeMetrics,
    /// Number of distinct elements touched (off-chip footprint).
    pub footprint: u128,
}

/// PE utilization (Section VI-C / Equation 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Average fraction of the PE array active per time-stamp.
    pub average: f64,
    /// Maximum fraction active in any (probed) time-stamp.
    pub max: f64,
    /// Whether `max` came from an exhaustive sweep (exact) or probing.
    pub max_is_exact: bool,
    /// Number of distinct PEs ever used.
    pub pes_used: u128,
    /// Number of distinct time-stamps.
    pub time_stamps: u128,
}

/// Latency decomposition (Equations 7–8); the pipeline-overlapped total is
/// the maximum of the three components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Latency {
    /// `UniqueVolume(inputs) / bandwidth`.
    pub read: f64,
    /// `UniqueVolume(outputs) / bandwidth`.
    pub write: f64,
    /// `sum(D_S) / (Util_PE × PE_size)` — equals the time-stamp count.
    pub compute: f64,
}

impl Latency {
    /// Overall latency under double buffering: `max(read, write, compute)`.
    pub fn total(&self) -> f64 {
        self.read.max(self.write).max(self.compute)
    }
}

/// Bandwidth requirements (Equations 9–10), in elements per cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Bandwidth {
    /// Interconnect bandwidth `SpatialReuseVolume / Delay_compute`.
    pub interconnect: f64,
    /// Scratchpad bandwidth `UniqueVolume / Delay_compute`.
    pub scratchpad: f64,
    /// Scratchpad bandwidth broken down per tensor.
    pub scratchpad_per_tensor: BTreeMap<String, f64>,
    /// Interconnect bandwidth broken down per tensor.
    pub interconnect_per_tensor: BTreeMap<String, f64>,
}

/// Energy estimate based on the [`crate::EnergyModel`] cost table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Energy {
    /// MAC energy.
    pub compute: f64,
    /// PE register-file energy (every access touches a register).
    pub register: f64,
    /// Inter-PE transfer energy.
    pub noc: f64,
    /// Scratchpad access energy.
    pub scratchpad: f64,
    /// Off-chip energy (one DRAM access per footprint element).
    pub dram: f64,
}

impl Energy {
    /// Total normalized energy.
    pub fn total(&self) -> f64 {
        self.compute + self.register + self.noc + self.scratchpad + self.dram
    }
}

/// Everything the model computes for one (op, dataflow, architecture)
/// triple.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceReport {
    /// Operation name.
    pub op: String,
    /// Dataflow display name, if any.
    pub dataflow: Option<String>,
    /// Number of MAC operations (`sum(D_S)`).
    pub macs: u128,
    /// Per-tensor metrics.
    pub tensors: BTreeMap<String, TensorMetrics>,
    /// PE utilization.
    pub utilization: Utilization,
    /// Latency decomposition.
    pub latency: Latency,
    /// Bandwidth requirements.
    pub bandwidth: Bandwidth,
    /// Energy estimate.
    pub energy: Energy,
}

impl PerformanceReport {
    /// Sum of `UniqueVolume` over tensors with the given role.
    pub fn unique_volume(&self, role: Role) -> u128 {
        self.tensors
            .values()
            .filter(|t| t.role == role)
            .map(|t| t.volumes.unique)
            .sum()
    }

    /// Sum of `TotalVolume` over all tensors.
    pub fn total_volume(&self) -> u128 {
        self.tensors.values().map(|t| t.volumes.total).sum()
    }

    /// Overall latency in cycles.
    pub fn latency_cycles(&self) -> f64 {
        self.latency.total()
    }
}
