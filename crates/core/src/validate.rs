//! Dataflow validation: the legality conditions a (workload, dataflow,
//! architecture) triple must satisfy before the performance model is
//! meaningful.

use crate::arch::ArchSpec;
use crate::dataflow::Dataflow;
use crate::op::{Role, TensorOp};
use crate::Result;

/// The outcome of validating one dataflow.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// No two loop instances share a spacetime-stamp (one MAC per PE per
    /// cycle, Section II-A).
    pub injective: bool,
    /// Every space-stamp lies inside the PE array.
    pub in_bounds: bool,
    /// Fraction of the PE array the dataflow ever uses.
    pub pe_coverage: f64,
    /// Input + output working footprint in elements (everything the
    /// scratchpad must hold over the whole run if nothing is re-fetched
    /// from DRAM).
    pub footprint: u128,
    /// Whether the footprint fits the architecture's scratchpad.
    pub fits_scratchpad: bool,
}

impl ValidationReport {
    /// Whether the dataflow can legally execute on the architecture.
    pub fn is_valid(&self) -> bool {
        self.injective && self.in_bounds
    }
}

/// Validates a dataflow against a workload and an architecture.
///
/// ```
/// use tenet_core::{validate, ArchSpec, Dataflow, Interconnect, TensorOp};
/// let gemm = TensorOp::builder("gemm")
///     .dim("i", 2).dim("j", 2).dim("k", 4)
///     .read("A", ["i", "k"]).read("B", ["k", "j"]).write("Y", ["i", "j"])
///     .build()?;
/// let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
/// let good = Dataflow::new(["i", "j"], ["i + j + k"]);
/// assert!(validate(&gemm, &good, &arch)?.is_valid());
/// // Dropping k makes two instances collide on the same stamp.
/// let bad = Dataflow::new(["i", "j"], ["i + j"]);
/// assert!(!validate(&gemm, &bad, &arch)?.is_valid());
/// # Ok::<(), tenet_core::Error>(())
/// ```
pub fn validate(op: &TensorOp, df: &Dataflow, arch: &ArchSpec) -> Result<ValidationReport> {
    let injective = df.is_injective(op)?;
    let used = df.used_pes(op)?;
    let pe_box = arch.pe_set()?;
    let in_bounds = df.n_space() == arch.pe_dims.len() && used.is_subset(&pe_box)?;
    let used_count = used.card()? as f64;
    let pe_coverage = if arch.pe_count() == 0 {
        0.0
    } else {
        used_count / arch.pe_count() as f64
    };
    let mut footprint: u128 = 0;
    for t in op
        .tensors(Role::Input)
        .into_iter()
        .chain(op.tensors(Role::Output))
    {
        footprint += op.footprint(t)?.card()?;
    }
    Ok(ValidationReport {
        injective,
        in_bounds,
        pe_coverage,
        footprint,
        fits_scratchpad: footprint <= arch.scratchpad_capacity as u128,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Interconnect;

    fn gemm() -> TensorOp {
        TensorOp::builder("gemm")
            .dim("i", 4)
            .dim("j", 4)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap()
    }

    #[test]
    fn valid_dataflow_passes() {
        let op = gemm();
        let arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 4.0);
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        let r = validate(&op, &df, &arch).unwrap();
        assert!(r.is_valid());
        assert_eq!(r.pe_coverage, 1.0);
        assert_eq!(r.footprint, 3 * 16);
        assert!(r.fits_scratchpad);
    }

    #[test]
    fn collision_detected() {
        let op = gemm();
        let arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 4.0);
        let df = Dataflow::new(["i", "j"], ["k mod 2"]);
        let r = validate(&op, &df, &arch).unwrap();
        assert!(!r.injective);
    }

    #[test]
    fn out_of_bounds_detected() {
        let op = gemm();
        let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        let r = validate(&op, &df, &arch).unwrap();
        assert!(!r.in_bounds);
        assert!(!r.is_valid());
    }

    #[test]
    fn partial_coverage_measured() {
        let op = gemm();
        let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 4.0);
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        let r = validate(&op, &df, &arch).unwrap();
        assert!(r.is_valid());
        assert_eq!(r.pe_coverage, 16.0 / 64.0);
    }

    #[test]
    fn scratchpad_capacity_checked() {
        let op = gemm();
        let mut arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 4.0);
        arch.scratchpad_capacity = 10;
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        let r = validate(&op, &df, &arch).unwrap();
        assert!(!r.fits_scratchpad);
    }
}
