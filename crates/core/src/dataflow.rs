//! The dataflow relation Θ (Definition 1): an affine (or quasi-affine)
//! assignment of every loop instance to a space-stamp (PE coordinates) and
//! a time-stamp (execution sequence).

use crate::op::TensorOp;
use crate::{Error, Result};
use tenet_isl::{Map, Set};

/// A dataflow `Θ_{S,D} = { S[n] -> (PE[p] | T[t]) }` expressed as one
/// quasi-affine expression per space and time dimension.
///
/// Expressions use the loop iterator names of the target [`TensorOp`] and
/// may contain `+`, `-`, integer multiplication, `x mod c` / `x % c`, and
/// `floor(x / c)` / `fl(x / c)` — exactly the notation of Table III.
///
/// ```
/// use tenet_core::Dataflow;
/// // The paper's Figure 3 systolic GEMM dataflow.
/// let df = Dataflow::new(["i", "j"], ["i + j + k"]);
/// assert_eq!(df.n_space(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataflow {
    name: Option<String>,
    space: Vec<String>,
    time: Vec<String>,
}

impl Dataflow {
    /// Creates a dataflow from space-stamp and time-stamp expressions.
    pub fn new<S, T, IS, IT>(space: IS, time: IT) -> Dataflow
    where
        S: Into<String>,
        T: Into<String>,
        IS: IntoIterator<Item = S>,
        IT: IntoIterator<Item = T>,
    {
        Dataflow {
            name: None,
            space: space.into_iter().map(Into::into).collect(),
            time: time.into_iter().map(Into::into).collect(),
        }
    }

    /// Attaches a display name (e.g. `(IJ-P | J,IJK-T)` from Table III).
    pub fn named(mut self, name: &str) -> Dataflow {
        self.name = Some(name.to_string());
        self
    }

    /// The display name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Number of space (PE) dimensions.
    pub fn n_space(&self) -> usize {
        self.space.len()
    }

    /// Number of time dimensions.
    pub fn n_time(&self) -> usize {
        self.time.len()
    }

    /// The space-stamp expressions.
    pub fn space_exprs(&self) -> &[String] {
        &self.space
    }

    /// The time-stamp expressions.
    pub fn time_exprs(&self) -> &[String] {
        &self.time
    }

    /// Builds Θ as a single map `S -> ST` whose range concatenates the
    /// space dims followed by the time dims, restricted to the iteration
    /// domain of `op`.
    pub fn theta(&self, op: &TensorOp) -> Result<Map> {
        if self.space.is_empty() || self.time.is_empty() {
            return Err(Error::Invalid(
                "a dataflow needs at least one space and one time dimension".into(),
            ));
        }
        let mut exprs = self.space.clone();
        exprs.extend(self.time.iter().cloned());
        let text = format!(
            "{{ S[{}] -> ST[{}] : {} }}",
            op.iter_list(),
            exprs.join(", "),
            op.domain_constraints()
        );
        Ok(Map::parse(&text)?)
    }

    /// The space-only relation `{ S[n] -> PE[p] }`.
    pub fn space_map(&self, op: &TensorOp) -> Result<Map> {
        let text = format!(
            "{{ S[{}] -> PE[{}] : {} }}",
            op.iter_list(),
            self.space.join(", "),
            op.domain_constraints()
        );
        Ok(Map::parse(&text)?)
    }

    /// The time-only relation `{ S[n] -> T[t] }`.
    pub fn time_map(&self, op: &TensorOp) -> Result<Map> {
        let text = format!(
            "{{ S[{}] -> T[{}] : {} }}",
            op.iter_list(),
            self.time.join(", "),
            op.domain_constraints()
        );
        Ok(Map::parse(&text)?)
    }

    /// The set of space-stamps actually used by `op` under this dataflow.
    pub fn used_pes(&self, op: &TensorOp) -> Result<Set> {
        Ok(self.space_map(op)?.range()?)
    }

    /// The set of time-stamps actually used.
    pub fn time_stamps(&self, op: &TensorOp) -> Result<Set> {
        Ok(self.time_map(op)?.range()?)
    }

    /// Checks that Θ is injective on the iteration domain: no two loop
    /// instances may occupy the same (PE | T) spacetime-stamp, because a
    /// PE performs one MAC per cycle (Section II-A).
    pub fn is_injective(&self, op: &TensorOp) -> Result<bool> {
        let theta = self.theta(op)?;
        // conflicts = Θ . Θ⁻¹ relates instances sharing a spacetime-stamp;
        // injectivity <=> conflicts ⊆ identity.
        let conflicts = theta.apply_range(&theta.reverse())?;
        let id = Map::identity(
            conflicts.space().input.clone(),
            conflicts.space().output.clone(),
        )?;
        Ok(conflicts.is_subset(&id)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm224() -> TensorOp {
        TensorOp::builder("gemm")
            .dim("i", 2)
            .dim("j", 2)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap()
    }

    #[test]
    fn figure3_theta() {
        // Θ = { S[i,j,k] -> (PE[i,j] | T[i+j+k]) }
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        let theta = df.theta(&gemm224()).unwrap();
        assert_eq!(theta.card().unwrap(), 16);
        // S[0,0,1], S[1,0,0], S[0,1,0] all execute at time-stamp 1.
        assert!(theta.contains_point(&[0, 0, 1, 0, 0, 1]).unwrap());
        assert!(theta.contains_point(&[1, 0, 0, 1, 0, 1]).unwrap());
        assert!(theta.contains_point(&[0, 1, 0, 0, 1, 1]).unwrap());
    }

    #[test]
    fn figure3_time_stamps() {
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        let t = df.time_stamps(&gemm224()).unwrap();
        // i+j+k ranges over [0, 5]: six stamps.
        assert_eq!(t.card().unwrap(), 6);
    }

    #[test]
    fn figure3_used_pes() {
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        assert_eq!(df.used_pes(&gemm224()).unwrap().card().unwrap(), 4);
    }

    #[test]
    fn injectivity() {
        let ok = Dataflow::new(["i", "j"], ["i + j + k"]);
        assert!(ok.is_injective(&gemm224()).unwrap());
        // Dropping k from the time-stamp creates conflicts.
        let bad = Dataflow::new(["i", "j"], ["i + j"]);
        assert!(!bad.is_injective(&gemm224()).unwrap());
    }

    #[test]
    fn quasi_affine_dataflow() {
        // The Section IV-A example: PE[i mod 8, j mod 8],
        // T[i/8, j/8, i mod 8 + j mod 8 + k].
        let op = TensorOp::builder("gemm")
            .dim("i", 16)
            .dim("j", 16)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = Dataflow::new(
            ["i mod 8", "j mod 8"],
            ["floor(i/8)", "floor(j/8)", "i mod 8 + j mod 8 + k"],
        );
        assert!(df.is_injective(&op).unwrap());
        assert_eq!(df.used_pes(&op).unwrap().card().unwrap(), 64);
    }
}
