//! Tensor operations: perfectly nested loops with a single statement and
//! affine tensor accesses (Section II-B of the paper).

use crate::{Error, Result};
use tenet_isl::{Map, Set};

/// Whether a tensor access reads an input or writes the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The tensor is read by the statement.
    Input,
    /// The tensor is produced (accumulated) by the statement.
    Output,
}

/// One loop dimension with inclusive-exclusive integer bounds `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDim {
    /// Iterator name as used in access expressions.
    pub name: String,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
}

impl LoopDim {
    /// Number of iterations of this loop.
    pub fn extent(&self) -> i64 {
        (self.hi - self.lo).max(0)
    }
}

/// One tensor access: tensor name, role, and one affine index expression
/// per tensor dimension (e.g. `["c", "ox + rx", "oy + ry"]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorAccess {
    /// Tensor name (`A`, `B`, `Y`, ...).
    pub tensor: String,
    /// Input or output.
    pub role: Role,
    /// Affine index expressions over the loop iterators.
    pub exprs: Vec<String>,
}

/// A tensor operation: a perfectly nested loop with one statement
/// (Section II-B). Example — the paper's Figure 3 GEMM:
///
/// ```
/// use tenet_core::TensorOp;
/// let gemm = TensorOp::builder("gemm")
///     .dim("i", 2)
///     .dim("j", 2)
///     .dim("k", 4)
///     .read("A", ["i", "k"])
///     .read("B", ["k", "j"])
///     .write("Y", ["i", "j"])
///     .build()?;
/// assert_eq!(gemm.instances()?, 16);
/// # Ok::<(), tenet_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorOp {
    name: String,
    dims: Vec<LoopDim>,
    accesses: Vec<TensorAccess>,
}

/// Builder for [`TensorOp`] (see [`TensorOp::builder`]).
#[derive(Debug, Clone)]
pub struct TensorOpBuilder {
    name: String,
    dims: Vec<LoopDim>,
    accesses: Vec<TensorAccess>,
}

impl TensorOpBuilder {
    /// Adds a loop `0 <= name < extent`.
    pub fn dim(mut self, name: &str, extent: i64) -> Self {
        self.dims.push(LoopDim {
            name: name.to_string(),
            lo: 0,
            hi: extent,
        });
        self
    }

    /// Adds a loop `lo <= name < hi`.
    pub fn dim_range(mut self, name: &str, lo: i64, hi: i64) -> Self {
        self.dims.push(LoopDim {
            name: name.to_string(),
            lo,
            hi,
        });
        self
    }

    /// Adds an input tensor access.
    pub fn read<S: Into<String>, I: IntoIterator<Item = S>>(
        mut self,
        tensor: &str,
        exprs: I,
    ) -> Self {
        self.accesses.push(TensorAccess {
            tensor: tensor.to_string(),
            role: Role::Input,
            exprs: exprs.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Adds an output tensor access.
    pub fn write<S: Into<String>, I: IntoIterator<Item = S>>(
        mut self,
        tensor: &str,
        exprs: I,
    ) -> Self {
        self.accesses.push(TensorAccess {
            tensor: tensor.to_string(),
            role: Role::Output,
            exprs: exprs.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Validates and builds the operation.
    ///
    /// # Errors
    ///
    /// Fails when the loop nest is empty, dimension names collide, a loop
    /// has an empty range, or an access expression is not affine in the
    /// iterators.
    pub fn build(self) -> Result<TensorOp> {
        let op = TensorOp {
            name: self.name,
            dims: self.dims,
            accesses: self.accesses,
        };
        if op.dims.is_empty() {
            return Err(Error::Invalid("a tensor op needs at least one loop".into()));
        }
        for (i, d) in op.dims.iter().enumerate() {
            if op.dims[..i].iter().any(|e| e.name == d.name) {
                return Err(Error::Invalid(format!("duplicate loop name `{}`", d.name)));
            }
            if d.hi <= d.lo {
                return Err(Error::Invalid(format!(
                    "loop `{}` has empty range [{}, {})",
                    d.name, d.lo, d.hi
                )));
            }
        }
        // Validate every access by building its map once.
        op.domain()?;
        for a in &op.accesses {
            op.access_map_for(a)?;
        }
        Ok(op)
    }
}

impl TensorOp {
    /// Starts building a tensor operation.
    pub fn builder(name: &str) -> TensorOpBuilder {
        TensorOpBuilder {
            name: name.to_string(),
            dims: Vec::new(),
            accesses: Vec::new(),
        }
    }

    /// The operation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loop dimensions, outermost first.
    pub fn dims(&self) -> &[LoopDim] {
        &self.dims
    }

    /// All tensor accesses of the statement.
    pub fn accesses(&self) -> &[TensorAccess] {
        &self.accesses
    }

    /// The distinct tensor names with the given role.
    pub fn tensors(&self, role: Role) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in &self.accesses {
            if a.role == role && !out.contains(&a.tensor.as_str()) {
                out.push(&a.tensor);
            }
        }
        out
    }

    /// The textual constraint list for the iteration domain.
    pub(crate) fn domain_constraints(&self) -> String {
        self.dims
            .iter()
            .map(|d| format!("{} <= {} < {}", d.lo, d.name, d.hi))
            .collect::<Vec<_>>()
            .join(" and ")
    }

    /// Comma-separated iterator names.
    pub(crate) fn iter_list(&self) -> String {
        self.dims
            .iter()
            .map(|d| d.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The iteration domain `D_S` as an integer set.
    pub fn domain(&self) -> Result<Set> {
        let text = format!(
            "{{ S[{}] : {} }}",
            self.iter_list(),
            self.domain_constraints()
        );
        Ok(Set::parse(&text)?)
    }

    /// Number of loop instances `sum(D_S)` (equals the number of MACs).
    pub fn instances(&self) -> Result<u128> {
        Ok(self.dims.iter().map(|d| d.extent() as u128).product())
    }

    /// The access function `A_{S,F}` of one access as a map `S -> F`.
    pub(crate) fn access_map_for(&self, a: &TensorAccess) -> Result<Map> {
        let text = format!(
            "{{ S[{}] -> {}[{}] : {} }}",
            self.iter_list(),
            a.tensor,
            a.exprs.join(", "),
            self.domain_constraints()
        );
        Ok(Map::parse(&text)?)
    }

    /// The combined access function of tensor `name`: the union over all
    /// of the statement's accesses to that tensor (Equation 1).
    pub fn access_map(&self, name: &str) -> Result<Map> {
        let mut acc: Option<Map> = None;
        for a in &self.accesses {
            if a.tensor != name {
                continue;
            }
            let m = self.access_map_for(a)?;
            acc = Some(match acc {
                None => m,
                Some(prev) => prev.union(&m)?,
            });
        }
        acc.ok_or_else(|| Error::Invalid(format!("unknown tensor `{name}`")))
    }

    /// The role of tensor `name` (an output access wins if both exist).
    pub fn role_of(&self, name: &str) -> Option<Role> {
        let mut role = None;
        for a in &self.accesses {
            if a.tensor == name {
                if a.role == Role::Output {
                    return Some(Role::Output);
                }
                role = Some(a.role);
            }
        }
        role
    }

    /// The data footprint of tensor `name`: the set of distinct elements
    /// touched by the whole computation.
    pub fn footprint(&self, name: &str) -> Result<Set> {
        Ok(self.access_map(name)?.range()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv1d() -> TensorOp {
        // The Figure 1 kernel: Y[i] += A[i+j] * B[j], 0<=i<4, 0<=j<3.
        TensorOp::builder("conv1d")
            .dim("i", 4)
            .dim("j", 3)
            .read("A", ["i + j"])
            .read("B", ["j"])
            .write("Y", ["i"])
            .build()
            .unwrap()
    }

    #[test]
    fn domain_cardinality() {
        let op = conv1d();
        assert_eq!(op.instances().unwrap(), 12);
        assert_eq!(op.domain().unwrap().card().unwrap(), 12);
    }

    #[test]
    fn access_map_matches_paper() {
        // A_{S,Y} = { S[i,j] -> Y[i] } (Section II-B).
        let op = conv1d();
        let m = op.access_map("Y").unwrap();
        assert!(m.contains_point(&[2, 1, 2]).unwrap());
        assert!(!m.contains_point(&[2, 1, 3]).unwrap());
    }

    #[test]
    fn footprint_sizes() {
        let op = conv1d();
        assert_eq!(op.footprint("A").unwrap().card().unwrap(), 6); // i+j in [0,5]
        assert_eq!(op.footprint("B").unwrap().card().unwrap(), 3);
        assert_eq!(op.footprint("Y").unwrap().card().unwrap(), 4);
    }

    #[test]
    fn roles() {
        let op = conv1d();
        assert_eq!(op.role_of("A"), Some(Role::Input));
        assert_eq!(op.role_of("Y"), Some(Role::Output));
        assert_eq!(op.role_of("Z"), None);
        assert_eq!(op.tensors(Role::Input), vec!["A", "B"]);
    }

    #[test]
    fn duplicate_dim_rejected() {
        let r = TensorOp::builder("bad").dim("i", 4).dim("i", 2).build();
        assert!(r.is_err());
    }

    #[test]
    fn stencil_union_access() {
        let op = TensorOp::builder("jacobi")
            .dim_range("i", 1, 7)
            .dim_range("j", 1, 7)
            .read("A", ["i", "j"])
            .read("A", ["i - 1", "j"])
            .read("A", ["i + 1", "j"])
            .read("A", ["i", "j - 1"])
            .read("A", ["i", "j + 1"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        // Footprint of A is the 8x8 grid minus the four corners, which no
        // cross-shaped stencil access can reach.
        assert_eq!(op.footprint("A").unwrap().card().unwrap(), 60);
    }
}
