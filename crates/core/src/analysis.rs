//! The TENET performance model (Section V): every metric is an exact
//! integer-set computation over the four relations of the notation.

use crate::arch::ArchSpec;
use crate::dataflow::Dataflow;
use crate::metrics::*;
use crate::op::{Role, TensorOp};
use crate::{Error, Result};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use tenet_isl::Map;

/// Options controlling the (rare) non-analytic corners of the model.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Sweep every time-stamp exactly for the max-utilization metric when
    /// the stamp count does not exceed this limit; probe otherwise.
    pub max_util_sweep_limit: u128,
    /// Width guard for the bucketed max-utilization path: when the
    /// activity relation holds at most this many spacetime points, the
    /// exact sweep is a *single* `points()` enumeration bucketed by
    /// time-stamp instead of a per-stamp `fix` + `card` loop. Above the
    /// guard the per-stamp loop runs (it never materializes the points).
    pub max_util_bucket_points: u128,
    /// Verify that the dataflow keeps every space-stamp inside the PE
    /// array (cheap, recommended).
    pub check_bounds: bool,
    /// The reuse time interval of Section IV-D: data can be reused from a
    /// stamp up to `reuse_window` cycles in the past (register-file
    /// residency). `1` is the paper's default for registered links; larger
    /// windows model PEs that hold data across an inner loop (e.g. the
    /// Eyeriss row-stationary analysis of Section VI-E).
    pub reuse_window: u32,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            max_util_sweep_limit: 1024,
            max_util_bucket_points: 1 << 18,
            check_bounds: true,
            reuse_window: 1,
        }
    }
}

/// Analyzes one (operation, dataflow, architecture) triple.
///
/// ```
/// use tenet_core::{Analysis, ArchSpec, Dataflow, Interconnect, TensorOp};
/// // Figure 3: GEMM 2x2x4 on a 2x2 systolic array.
/// let gemm = TensorOp::builder("gemm")
///     .dim("i", 2).dim("j", 2).dim("k", 4)
///     .read("A", ["i", "k"]).read("B", ["k", "j"]).write("Y", ["i", "j"])
///     .build()?;
/// let df = Dataflow::new(["i", "j"], ["i + j + k"]);
/// let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
/// let analysis = Analysis::new(&gemm, &df, &arch)?;
/// let vols = analysis.volumes("A")?;
/// assert_eq!(vols.total, 16);
/// # Ok::<(), tenet_core::Error>(())
/// ```
pub struct Analysis<'a> {
    op: &'a TensorOp,
    df: &'a Dataflow,
    arch: &'a ArchSpec,
    options: AnalysisOptions,
    theta: Map,
    /// The max-utilization sweep is the one non-relational computation of
    /// the model (a loop over time-stamps); its scalar summary is latched
    /// here. Every *relational* intermediate (assignment, availability,
    /// volume counts) is memoized in the process-wide
    /// [`tenet_isl::cache`] context instead, so it is shared across all
    /// `Analysis` instances — in a DSE sweep, candidates that agree on an
    /// access map or an intermediate relation reuse each other's work.
    util: OnceLock<Utilization>,
    /// Per-tensor volume metrics latch. `latency`, `bandwidth`, `energy`,
    /// and `report` each walk every tensor's volumes; without the latch a
    /// full report pays that relational pipeline four times over — the
    /// process-wide memo absorbs the repeats only when the cache is
    /// enabled, and a cold shard (or a cache-off run) would recompute.
    vols: Mutex<BTreeMap<String, VolumeMetrics>>,
    /// Latched spacetime maps: both are pure functions of the dataflow +
    /// architecture and are needed once per tensor per volumes call.
    smap: OnceLock<Map>,
    tmap: OnceLock<Map>,
}

impl<'a> Analysis<'a> {
    /// Builds the relations and validates basic consistency.
    ///
    /// # Errors
    ///
    /// Fails when the dataflow's space dimensionality does not match the
    /// PE array, or (with bounds checking on) when some loop instance is
    /// mapped outside the array.
    pub fn new(op: &'a TensorOp, df: &'a Dataflow, arch: &'a ArchSpec) -> Result<Analysis<'a>> {
        Analysis::with_options(op, df, arch, AnalysisOptions::default())
    }

    /// Like [`Analysis::new`] with explicit options.
    pub fn with_options(
        op: &'a TensorOp,
        df: &'a Dataflow,
        arch: &'a ArchSpec,
        options: AnalysisOptions,
    ) -> Result<Analysis<'a>> {
        if df.n_space() != arch.pe_dims.len() {
            return Err(Error::Invalid(format!(
                "dataflow has {} space dims but the PE array has {}",
                df.n_space(),
                arch.pe_dims.len()
            )));
        }
        let theta = df.theta(op)?;
        let analysis = Analysis {
            op,
            df,
            arch,
            options,
            theta,
            util: OnceLock::new(),
            vols: Mutex::new(BTreeMap::new()),
            smap: OnceLock::new(),
            tmap: OnceLock::new(),
        };
        if analysis.options.check_bounds {
            let used = analysis.df.used_pes(analysis.op)?;
            let pe_box = analysis.arch.pe_set()?;
            if !used.is_subset(&pe_box)? {
                return Err(Error::Invalid(format!(
                    "dataflow `{}` maps instances outside the {:?} PE array",
                    analysis.df.name().unwrap_or("<unnamed>"),
                    analysis.arch.pe_dims
                )));
            }
        }
        Ok(analysis)
    }

    /// The dataflow relation Θ (`S -> ST`).
    pub fn theta(&self) -> &Map {
        &self.theta
    }

    /// The data assignment relation `A_{D,F} = Θ⁻¹ . A_{S,F}` for one
    /// tensor (Definition 2).
    pub fn assignment(&self, tensor: &str) -> Result<Map> {
        let asf = self.op.access_map(tensor)?;
        // Both steps hit the shared isl memo on recomputation.
        Ok(self.theta.reverse().apply_range(&asf)?)
    }

    /// Text of the spacetime-stamp map for the given offsets and time
    /// delta (Definition 4), with an exact-increment time constraint.
    fn spacetime_map_text(&self, offsets: &[Vec<i64>], dt: i64) -> String {
        let ns = self.df.n_space();
        let nt = self.df.n_time();
        let in_dims: Vec<String> = (0..ns)
            .map(|i| format!("p{i}"))
            .chain((0..nt).map(|i| format!("t{i}")))
            .collect();
        let mut disjuncts = Vec::new();
        for off in offsets {
            let mut out_exprs: Vec<String> = Vec::new();
            for (i, o) in off.iter().enumerate() {
                match *o {
                    0 => out_exprs.push(format!("p{i}")),
                    v if v > 0 => out_exprs.push(format!("p{i} + {v}")),
                    v => out_exprs.push(format!("p{i} - {}", -v)),
                }
            }
            for i in 0..nt {
                if i + 1 == nt && dt != 0 {
                    out_exprs.push(format!("t{i} + {dt}"));
                } else {
                    out_exprs.push(format!("t{i}"));
                }
            }
            disjuncts.push(format!(
                "ST[{}] -> ST[{}]",
                in_dims.join(", "),
                out_exprs.join(", ")
            ));
        }
        format!("{{ {} }}", disjuncts.join("; "))
    }

    /// Text of a *windowed* spacetime-stamp map: time distance measured as
    /// the difference of the stamps' mixed-radix ordinals (the cycle
    /// number in a rectangular schedule), constrained to
    /// `lo <= ord(t') - ord(t) <= hi`.
    ///
    /// The window is expanded into the explicit set of constant delta
    /// vectors whose ordinal lies in the range: every disjunct is then a
    /// pure translation (`t' = t + Δ`), which keeps downstream projections
    /// on the cheap unit-coefficient path. (A single ordinal inequality
    /// with mixed-radix weights is equivalent but forces the projector
    /// into range splits.)
    fn windowed_map_text(
        &self,
        offsets: &[Vec<i64>],
        lo: i64,
        hi: i64,
        extents: &[i64],
    ) -> Result<String> {
        let ns = self.df.n_space();
        let nt = self.df.n_time();
        let in_dims: Vec<String> = (0..ns)
            .map(|i| format!("p{i}"))
            .chain((0..nt).map(|i| format!("t{i}")))
            .collect();
        let deltas = window_deltas(extents, lo, hi, 2000)?;
        let shift = |base: &str, i: usize, v: i64| -> String {
            match v {
                0 => format!("{base}{i}"),
                v if v > 0 => format!("{base}{i} + {v}"),
                v => format!("{base}{i} - {}", -v),
            }
        };
        let mut disjuncts = Vec::new();
        for off in offsets {
            for delta in &deltas {
                let mut out_exprs: Vec<String> = Vec::new();
                for (i, o) in off.iter().enumerate() {
                    out_exprs.push(shift("p", i, *o));
                }
                for (i, d) in delta.iter().enumerate() {
                    out_exprs.push(shift("t", i, *d));
                }
                disjuncts.push(format!(
                    "ST[{}] -> ST[{}]",
                    in_dims.join(", "),
                    out_exprs.join(", ")
                ));
            }
        }
        Ok(format!("{{ {} }}", disjuncts.join("; ")))
    }

    /// The extents of the time-stamp dimensions (for ordinal windows).
    fn time_extents(&self) -> Result<Vec<i64>> {
        let stamps = self.df.time_stamps(self.op)?;
        let mut out = Vec::with_capacity(self.df.n_time());
        for d in 0..self.df.n_time() {
            let (lo, hi) = stamps.dim_bounds(d)?;
            out.push(hi - lo + 1);
        }
        Ok(out)
    }

    /// The spatial spacetime map `M_spatial`: interconnected, distinct PEs
    /// at exactly the interconnect's transfer delay (the fixed "time
    /// interval" of Section V-A — 1 cycle for registered links, 0 for
    /// multicast wires). Multi-dimensional time-stamps advance in
    /// mixed-radix order, so "one cycle later" includes inner-dimension
    /// rollover (expressed as explicit stamp deltas).
    pub fn spatial_map(&self) -> Result<Map> {
        if let Some(m) = self.smap.get() {
            return Ok(m.clone());
        }
        let offsets = self.arch.interconnect.offsets(self.df.n_space())?;
        let dt = self.arch.interconnect.time_delta();
        let m = if dt == 0 || self.df.n_time() == 1 {
            Map::parse(&self.spacetime_map_text(&offsets, dt))?
        } else {
            let extents = self.time_extents()?;
            Map::parse(&self.windowed_map_text(&offsets, dt, dt, &extents)?)?
        };
        Ok(self.smap.get_or_init(|| m).clone())
    }

    /// The temporal spacetime map `M_temporal`: same PE, a previous
    /// time-stamp within the reuse window (Section IV-D's time interval).
    pub fn temporal_map(&self) -> Result<Map> {
        if let Some(m) = self.tmap.get() {
            return Ok(m.clone());
        }
        let zero = vec![vec![0i64; self.df.n_space()]];
        let w = self.options.reuse_window.max(1) as i64;
        let m = if self.df.n_time() == 1 && w == 1 {
            // Single time dim, unit window: a plain offset map.
            Map::parse(&self.spacetime_map_text(&zero, 1))?
        } else {
            let extents = self.time_extents()?;
            Map::parse(&self.windowed_map_text(&zero, 1, w, &extents)?)?
        };
        Ok(self.tmap.get_or_init(|| m).clone())
    }

    fn avail(&self, tensor: &str, spatial: bool) -> Result<Map> {
        let adf = self.assignment(tensor)?;
        let m = if spatial {
            self.spatial_map()?
        } else {
            self.temporal_map()?
        };
        // M⁻¹ . A_{D,F}: the data visible at a stamp via its predecessors.
        Ok(m.reverse().apply_range(&adf)?)
    }

    /// Volume metrics for one tensor (Table II and Figure 5).
    ///
    /// `reuse = temporal + spatial` by construction: temporal reuse is
    /// counted first (same-PE), and spatial reuse counts the remaining
    /// accesses satisfiable only from an interconnected neighbor.
    pub fn volumes(&self, tensor: &str) -> Result<VolumeMetrics> {
        if let Some(v) = self.vols.lock().expect("volumes latch").get(tensor) {
            return Ok(*v);
        }
        let adf = self.assignment(tensor)?;
        let total = adf.card()?;
        let avail_t = self.avail(tensor, false)?;
        let avail_s = self.avail(tensor, true)?;
        let temporal_set = adf.intersect(&avail_t)?;
        let temporal = temporal_set.card()?;
        let reuse_set = adf.intersect(&avail_s.union(&avail_t)?)?;
        let reuse = reuse_set.card()?;
        let v = VolumeMetrics {
            total,
            reuse,
            unique: total - reuse,
            temporal_reuse: temporal,
            spatial_reuse: reuse - temporal,
        };
        Ok(*self
            .vols
            .lock()
            .expect("volumes latch")
            .entry(tensor.to_string())
            .or_insert(v))
    }

    /// The reuse vectors of a tensor: the set of spacetime deltas
    /// `(Δpe, Δt)` between pairs of stamps that access the same element.
    ///
    /// This is the relation-centric analogue of dependence distances: a
    /// vector `(0, ..., 0 | Δt)` means pure temporal reuse `Δt` cycles
    /// apart; `(Δpe | 0)` means same-cycle multicast sharing; the
    /// Figure 3 systolic GEMM shows `(0,1|1)` and `(1,0|1)` for the
    /// flowing tensors. Useful for choosing an interconnect that can
    /// actually carry a dataflow's reuse.
    pub fn reuse_vectors(&self, tensor: &str) -> Result<tenet_isl::Set> {
        let adf = self.assignment(tensor)?;
        // st -> st' sharing an element, restricted to distinct stamps by
        // dropping the zero vector afterwards.
        let share = adf.apply_range(&adf.reverse())?;
        let deltas = share.deltas()?;
        let zero_text = format!(
            "{{ [{}] }}",
            (0..self.df.n_space() + self.df.n_time())
                .map(|_| "0".to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let zero = tenet_isl::Set::parse(&zero_text)?;
        Ok(deltas.subtract(&zero)?)
    }

    /// PE utilization (average exactly; max exactly when the stamp count
    /// is within the sweep limit, otherwise probed).
    pub fn utilization(&self) -> Result<Utilization> {
        if let Some(u) = self.util.get() {
            return Ok(*u);
        }
        let ns = self.df.n_space();
        let nt = self.df.n_time();
        let act = self.theta.range()?;
        let stamps = act.project_out(0, ns)?;
        let n_stamps = stamps.card()?;
        let pes_used = act.project_out(ns, nt)?.card()?;
        let pe_count = self.arch.pe_count();
        let instances = self.op.instances()?;
        let average = if n_stamps == 0 || pe_count == 0 {
            0.0
        } else {
            instances as f64 / (pe_count as f64 * n_stamps as f64)
        };
        let (max, exact) = if n_stamps <= self.options.max_util_sweep_limit {
            let max_active = match self.max_active_bucketed(&act, ns)? {
                Some(m) => m,
                None => self.max_active_swept(&act, &stamps, ns)?,
            };
            (max_active as f64 / pe_count as f64, true)
        } else {
            // Probe a handful of stamps: per-dimension low/mid/high.
            let mut probes: Vec<Vec<i64>> = vec![Vec::new()];
            for d in 0..nt {
                let (lo, hi) = stamps.dim_bounds(d)?;
                let mid = lo + (hi - lo) / 2;
                let mut next = Vec::new();
                for p in &probes {
                    for v in [lo, mid, hi] {
                        let mut q = p.clone();
                        q.push(v);
                        next.push(q);
                    }
                }
                next.dedup();
                probes = next;
                if probes.len() > 81 {
                    probes.truncate(81);
                }
            }
            let mut max_active = 0u128;
            for stamp in &probes {
                let mut slice = act.clone();
                for (i, &v) in stamp.iter().enumerate() {
                    slice = slice.fix(ns + i, v);
                }
                max_active = max_active.max(slice.card()?);
            }
            (max_active as f64 / pe_count as f64, false)
        };
        let u = Utilization {
            average,
            max,
            max_is_exact: exact,
            pes_used,
            time_stamps: n_stamps,
        };
        Ok(*self.util.get_or_init(|| u))
    }

    /// Bucketed exact max-active count: one `points()` enumeration of the
    /// activity relation, bucketed by time-stamp suffix (memoized inside
    /// the isl layer). Returns `None` when the relation is wider than the
    /// enumeration guard — the caller then runs the per-stamp loop.
    fn max_active_bucketed(&self, act: &tenet_isl::Set, ns: usize) -> Result<Option<u128>> {
        let total = act.card()?;
        if total > self.options.max_util_bucket_points {
            return Ok(None);
        }
        Ok(Some(act.max_suffix_slice_card(ns, total as usize + 1)?))
    }

    /// The pre-bucketing reference sweep: fix each time-stamp and count
    /// the active PEs separately. Exact; kept as the fallback above the
    /// bucket guard and as the differential reference for the bucketed
    /// path (`tests/util_equiv.rs` asserts they agree on every preset).
    fn max_active_swept(
        &self,
        act: &tenet_isl::Set,
        stamps: &tenet_isl::Set,
        ns: usize,
    ) -> Result<u128> {
        let mut max_active = 0u128;
        for stamp in stamps.points(self.options.max_util_sweep_limit as usize + 1)? {
            let mut slice = act.clone();
            for (i, &v) in stamp.iter().enumerate() {
                slice = slice.fix(ns + i, v);
            }
            max_active = max_active.max(slice.card()?);
        }
        Ok(max_active)
    }

    /// Test-only access to the two exact max-active computations, so the
    /// bucketed path can be differentially checked against the reference
    /// sweep from outside the crate. Returns `(bucketed, swept)`.
    #[doc(hidden)]
    pub fn max_active_both_paths(&self) -> Result<(Option<u128>, u128)> {
        let ns = self.df.n_space();
        let act = self.theta.range()?;
        let stamps = act.project_out(0, ns)?;
        let bucketed = self.max_active_bucketed(&act, ns)?;
        let swept = self.max_active_swept(&act, &stamps, ns)?;
        Ok((bucketed, swept))
    }

    fn tensor_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for a in self.op.accesses() {
            if !names.contains(&a.tensor) {
                names.push(a.tensor.clone());
            }
        }
        names
    }

    /// Latency decomposition (Equations 7–8).
    pub fn latency(&self) -> Result<Latency> {
        let util = self.utilization()?;
        let mut unique_in = 0u128;
        let mut unique_out = 0u128;
        for t in self.tensor_names() {
            let v = self.volumes(&t)?;
            match self.op.role_of(&t) {
                Some(Role::Output) => unique_out += v.unique,
                _ => unique_in += v.unique,
            }
        }
        Ok(Latency {
            read: unique_in as f64 / self.arch.bandwidth,
            write: unique_out as f64 / self.arch.bandwidth,
            compute: util.time_stamps as f64,
        })
    }

    /// Bandwidth requirements (Equations 9–10).
    pub fn bandwidth(&self) -> Result<Bandwidth> {
        let util = self.utilization()?;
        let compute = util.time_stamps as f64;
        let mut sbw = BTreeMap::new();
        let mut ibw = BTreeMap::new();
        let mut sbw_total = 0.0;
        let mut ibw_total = 0.0;
        for t in self.tensor_names() {
            let v = self.volumes(&t)?;
            let s = v.unique as f64 / compute;
            let i = v.spatial_reuse as f64 / compute;
            sbw_total += s;
            ibw_total += i;
            sbw.insert(t.clone(), s);
            ibw.insert(t, i);
        }
        Ok(Bandwidth {
            interconnect: ibw_total,
            scratchpad: sbw_total,
            scratchpad_per_tensor: sbw,
            interconnect_per_tensor: ibw,
        })
    }

    /// Energy estimate from the architecture's cost table.
    pub fn energy(&self) -> Result<Energy> {
        let e = &self.arch.energy;
        let macs = self.op.instances()? as f64;
        let mut register = 0.0;
        let mut noc = 0.0;
        let mut scratchpad = 0.0;
        let mut dram = 0.0;
        for t in self.tensor_names() {
            let v = self.volumes(&t)?;
            register += v.total as f64 * e.register;
            noc += v.spatial_reuse as f64 * e.noc_hop;
            scratchpad += v.unique as f64 * e.scratchpad;
            dram += self.op.footprint(&t)?.card()? as f64 * e.dram;
        }
        Ok(Energy {
            compute: macs * e.mac,
            register,
            noc,
            scratchpad,
            dram,
        })
    }

    /// The schedule's makespan: the lexicographically first and last
    /// time-stamps of the execution. For the Figure 3 systolic dataflow
    /// this is `([0], [5])` — the wavefront enters at cycle 0 and drains
    /// at cycle 5.
    ///
    /// # Errors
    ///
    /// Propagates integer-set failures (e.g. unbounded stamps).
    pub fn makespan(&self) -> Result<(Vec<i64>, Vec<i64>)> {
        let stamps = self.df.time_stamps(self.op)?;
        let first = stamps
            .lexmin()?
            .ok_or_else(|| Error::Invalid("empty schedule has no makespan".into()))?;
        let last = stamps
            .lexmax()?
            .ok_or_else(|| Error::Invalid("empty schedule has no makespan".into()))?;
        Ok((first, last))
    }

    /// The complete report.
    pub fn report(&self) -> Result<PerformanceReport> {
        let mut tensors = BTreeMap::new();
        for t in self.tensor_names() {
            let volumes = self.volumes(&t)?;
            let role = self.op.role_of(&t).unwrap_or(Role::Input);
            let footprint = self.op.footprint(&t)?.card()?;
            tensors.insert(
                t.clone(),
                TensorMetrics {
                    role,
                    volumes,
                    footprint,
                },
            );
        }
        Ok(PerformanceReport {
            op: self.op.name().to_string(),
            dataflow: self.df.name().map(String::from),
            macs: self.op.instances()?,
            tensors,
            utilization: self.utilization()?,
            latency: self.latency()?,
            bandwidth: self.bandwidth()?,
            energy: self.energy()?,
        })
    }
}

/// Enumerates the constant time-stamp delta vectors whose mixed-radix
/// ordinal difference lies in `[lo, hi]`, given the per-dimension extents.
///
/// Each component of a returned vector is bounded by the dimension's
/// extent, so the vectors are exactly the stamp translations realizable in
/// a rectangular schedule.
fn window_deltas(extents: &[i64], lo: i64, hi: i64, cap: usize) -> Result<Vec<Vec<i64>>> {
    let nt = extents.len();
    let mut weights = vec![1i64; nt];
    for d in (0..nt.saturating_sub(1)).rev() {
        weights[d] = weights[d + 1]
            .checked_mul(extents[d + 1].max(1))
            .ok_or_else(|| Error::Invalid("time-stamp extents overflow".into()))?;
    }
    let mut out = Vec::new();
    let mut cur = vec![0i64; nt];
    #[allow(clippy::too_many_arguments)] // recursive helper threading its whole state
    fn rec(
        d: usize,
        lo: i64,
        hi: i64,
        extents: &[i64],
        weights: &[i64],
        cur: &mut Vec<i64>,
        out: &mut Vec<Vec<i64>>,
        cap: usize,
    ) -> Result<()> {
        if out.len() > cap {
            return Err(Error::Invalid(format!(
                "reuse window expands to more than {cap} stamp deltas"
            )));
        }
        if d == extents.len() {
            if lo <= 0 && 0 <= hi {
                out.push(cur.clone());
            }
            return Ok(());
        }
        let w = weights[d];
        // Maximum ordinal magnitude representable by the inner dims.
        let inner_max = w - 1;
        let dmin = crate::div_ceil(lo - inner_max, w).max(-(extents[d] - 1));
        let dmax = crate::div_floor(hi + inner_max, w).min(extents[d] - 1);
        for delta in dmin..=dmax {
            cur[d] = delta;
            let sub_lo = (lo - delta * w).max(-inner_max);
            let sub_hi = (hi - delta * w).min(inner_max);
            if sub_lo <= sub_hi || d + 1 == extents.len() {
                rec(
                    d + 1,
                    lo - delta * w,
                    hi - delta * w,
                    extents,
                    weights,
                    cur,
                    out,
                    cap,
                )?;
            }
        }
        cur[d] = 0;
        Ok(())
    }
    rec(0, lo, hi, extents, &weights, &mut cur, &mut out, cap)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Interconnect;

    #[test]
    fn window_deltas_single_dim() {
        let d = window_deltas(&[10], 1, 3, 100).unwrap();
        assert_eq!(d, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn window_deltas_with_rollover() {
        // Two dims with extents [4, 3]: ordinal = 3*t0 + t1.
        // Window [1, 1]: (0,+1) and the rollover (+1,-2).
        let d = window_deltas(&[4, 3], 1, 1, 100).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.contains(&vec![0, 1]));
        assert!(d.contains(&vec![1, -2]));
    }

    #[test]
    fn window_deltas_ordinals_in_range() {
        let extents = [5, 4, 3];
        let weights = [12i64, 3, 1];
        for (lo, hi) in [(1, 1), (1, 7), (0, 0), (2, 5)] {
            let ds = window_deltas(&extents, lo, hi, 10_000).unwrap();
            for d in &ds {
                let ord: i64 = d.iter().zip(weights.iter()).map(|(a, w)| a * w).sum();
                assert!(ord >= lo && ord <= hi, "delta {d:?} has ordinal {ord}");
            }
            // Exhaustive cross-check against brute force.
            let mut expect = 0;
            for a in -4i64..=4 {
                for b in -3i64..=3 {
                    for c in -2i64..=2 {
                        let ord = 12 * a + 3 * b + c;
                        if ord >= lo && ord <= hi {
                            expect += 1;
                        }
                    }
                }
            }
            assert_eq!(ds.len(), expect, "window [{lo}, {hi}]");
        }
    }

    fn figure3() -> (TensorOp, Dataflow, ArchSpec) {
        let gemm = TensorOp::builder("gemm")
            .dim("i", 2)
            .dim("j", 2)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
        (gemm, df, arch)
    }

    /// The paper's worked example (Section V-A): over the full execution
    /// the TotalVolume of every tensor equals the instance count (16); the
    /// truncated time-stamps 0..3 shown in the text give 12 / 5 / 7.
    #[test]
    fn figure3_total_volume() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        assert_eq!(a.volumes("A").unwrap().total, 16);
        assert_eq!(a.volumes("B").unwrap().total, 16);
        assert_eq!(a.volumes("Y").unwrap().total, 16);
    }

    /// Tensor A flows horizontally: every access after the first load per
    /// element is spatial reuse from the left neighbor.
    #[test]
    fn figure3_tensor_a_reuse() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        let v = a.volumes("A").unwrap();
        // A has 8 distinct elements; each is used by 2 PEs (j = 0, 1):
        // unique = 8, reuse = 8, all spatial.
        assert_eq!(v.unique, 8);
        assert_eq!(v.reuse, 8);
        assert_eq!(v.spatial_reuse, 8);
        assert_eq!(v.temporal_reuse, 0);
    }

    /// Tensor Y is stationary: all reuse is temporal.
    #[test]
    fn figure3_tensor_y_stationary() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        let v = a.volumes("Y").unwrap();
        assert_eq!(v.unique, 4); // 4 output elements
        assert_eq!(v.temporal_reuse, 12);
        assert_eq!(v.spatial_reuse, 0);
        assert_eq!(v.reuse_factor(), 4.0);
    }

    /// The truncated window of the paper: time-stamps 0..3 for A give
    /// TotalVolume 12, ReuseVolume 5, UniqueVolume 7.
    #[test]
    fn figure3_truncated_window_matches_paper_text() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        let adf = a.assignment("A").unwrap();
        // Keep stamps with t <= 3: dims of ST are [p0, p1, t].
        let window = Map::parse("{ ST[p0, p1, t] -> ST[p0, p1, t] : 0 <= t <= 3 }").unwrap();
        let adf_w = window.apply_range(&adf).unwrap();
        assert_eq!(adf_w.card().unwrap(), 12);
        let avail = a
            .spatial_map()
            .unwrap()
            .reverse()
            .apply_range(&a.assignment("A").unwrap())
            .unwrap();
        let reuse_w = adf_w.intersect(&avail).unwrap().card().unwrap();
        assert_eq!(reuse_w, 5);
        assert_eq!(adf_w.card().unwrap() - reuse_w, 7);
    }

    #[test]
    fn figure3_reuse_classes_match_section6c() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        use crate::metrics::ReuseClass;
        // "tensor Y is kept stationary ... A and B flow through the array."
        assert_eq!(
            a.volumes("Y").unwrap().reuse_class(),
            ReuseClass::Stationary
        );
        assert_eq!(a.volumes("A").unwrap().reuse_class(), ReuseClass::Flowing);
        assert_eq!(a.volumes("B").unwrap().reuse_class(), ReuseClass::Flowing);
    }

    #[test]
    fn figure3_makespan_is_zero_to_five() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        assert_eq!(a.makespan().unwrap(), (vec![0], vec![5]));
    }

    #[test]
    fn tiled_makespan_is_multidimensional() {
        let op = TensorOp::builder("gemm")
            .dim("i", 16)
            .dim("j", 16)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = Dataflow::new(
            ["i % 8", "j % 8"],
            ["floor(i / 8)", "floor(j / 8)", "i % 8 + j % 8 + k"],
        );
        let arch = ArchSpec::new("8x8", [8, 8], crate::Interconnect::Systolic2D, 16.0);
        let a = Analysis::new(&op, &df, &arch).unwrap();
        // Quotients run 0..2 each; the skewed dim peaks at 7 + 7 + 3.
        assert_eq!(a.makespan().unwrap(), (vec![0, 0, 0], vec![1, 1, 17]));
    }

    #[test]
    fn figure3_utilization_and_latency() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        let u = a.utilization().unwrap();
        assert_eq!(u.time_stamps, 6);
        assert_eq!(u.pes_used, 4);
        assert!((u.average - 16.0 / 24.0).abs() < 1e-9);
        assert!(u.max_is_exact);
        assert!((u.max - 1.0).abs() < 1e-9); // stamps 2 and 3 use all 4 PEs
        let l = a.latency().unwrap();
        assert_eq!(l.compute, 6.0);
        // unique inputs = 8 + 8, bw = 4 -> read = 4 cycles.
        assert_eq!(l.read, 4.0);
        assert_eq!(l.write, 1.0);
        assert_eq!(l.total(), 6.0);
    }

    #[test]
    fn volume_identities() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        for t in ["A", "B", "Y"] {
            let v = a.volumes(t).unwrap();
            assert_eq!(v.reuse + v.unique, v.total, "tensor {t}");
            assert_eq!(v.spatial_reuse + v.temporal_reuse, v.reuse, "tensor {t}");
        }
    }

    #[test]
    fn out_of_bounds_dataflow_rejected() {
        let (op, df, _) = figure3();
        let small = ArchSpec::new("1x1", [1, 1], Interconnect::Systolic2D, 4.0);
        assert!(Analysis::new(&op, &df, &small).is_err());
    }

    #[test]
    fn space_dim_mismatch_rejected() {
        let (op, _, arch) = figure3();
        let df1 = Dataflow::new(["i"], ["j", "k"]);
        assert!(Analysis::new(&op, &df1, &arch).is_err());
    }

    /// Reuse vectors of the Figure 3 dataflow: Y is stationary (pure
    /// temporal delta), A flows horizontally, B vertically.
    #[test]
    fn figure3_reuse_vectors() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        // Y[i,j] lives at PE (i,j) across stamps: deltas (0,0|d), d != 0.
        let vy = a.reuse_vectors("Y").unwrap();
        assert!(vy.contains_point(&[0, 0, 1]).unwrap());
        assert!(!vy.contains_point(&[0, 1, 1]).unwrap());
        // A[i,k] is shared along j at time distance j' - j: (0,1|1) holds.
        let va = a.reuse_vectors("A").unwrap();
        assert!(va.contains_point(&[0, 1, 1]).unwrap());
        assert!(!va.contains_point(&[1, 0, 1]).unwrap());
        // B[k,j] flows along i: (1,0|1).
        let vb = a.reuse_vectors("B").unwrap();
        assert!(vb.contains_point(&[1, 0, 1]).unwrap());
        assert!(!vb.contains_point(&[0, 1, 1]).unwrap());
    }

    /// The reuse window (Section IV-D's time interval) exposes reuse that
    /// a 1-cycle window misses: in GEMM (K-P | I,J-T), tensor B[k,j] is
    /// re-accessed every J cycles (once per i), so it only shows temporal
    /// reuse once the window reaches J.
    #[test]
    fn reuse_window_reveals_strided_reuse() {
        let op = TensorOp::builder("gemm")
            .dim("i", 3)
            .dim("j", 4)
            .dim("k", 8)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = Dataflow::new(["k mod 8"], ["floor(k/8)", "i", "j"]);
        let arch = ArchSpec::new("1d", [8], Interconnect::Systolic1D, 8.0);
        let narrow = Analysis::new(&op, &df, &arch).unwrap();
        assert_eq!(narrow.volumes("B").unwrap().temporal_reuse, 0);
        let opts = AnalysisOptions {
            reuse_window: 4, // = extent of j
            ..Default::default()
        };
        let wide = Analysis::with_options(&op, &df, &arch, opts).unwrap();
        let v = wide.volumes("B").unwrap();
        // Each B[k,j] is accessed I=3 times per PE, J cycles apart: with a
        // window of J the 2 later accesses per element reuse the first.
        assert_eq!(v.temporal_reuse, 2 * 4 * 8);
        // A[i,k] is accessed J consecutive cycles: full chain either way.
        assert_eq!(
            narrow.volumes("A").unwrap().temporal_reuse,
            wide.volumes("A").unwrap().temporal_reuse
        );
    }

    /// Energy decomposes according to the cost table and the volumes.
    #[test]
    fn energy_matches_cost_table() {
        let (op, df, arch) = figure3();
        let a = Analysis::new(&op, &df, &arch).unwrap();
        let e = a.energy().unwrap();
        // 16 MACs at cost 1.
        assert_eq!(e.compute, 16.0);
        // Register: every access (3 tensors x 16).
        assert_eq!(e.register, 48.0);
        // NoC: spatial reuse of A and B (8 + 8) at cost 2.
        assert_eq!(e.noc, 32.0);
        // Scratchpad: unique volumes (8 + 8 + 4) at cost 6.
        assert_eq!(e.scratchpad, 120.0);
        // DRAM: footprints (8 + 8 + 4) at cost 200.
        assert_eq!(e.dram, 4000.0);
        assert_eq!(e.total(), 16.0 + 48.0 + 32.0 + 120.0 + 4000.0);
    }

    /// Multicast reuse happens in the same cycle (time interval 0).
    #[test]
    fn multicast_same_cycle_reuse() {
        // 1D conv on a 1D multicast array: Y[i] += A[i+j]*B[j],
        // dataflow (i-P | j-T): B[j] broadcast to all PEs each cycle.
        let op = TensorOp::builder("conv1d")
            .dim("i", 4)
            .dim("j", 3)
            .read("A", ["i + j"])
            .read("B", ["j"])
            .write("Y", ["i"])
            .build()
            .unwrap();
        let df = Dataflow::new(["i"], ["j"]);
        let arch = ArchSpec::new("mc", [4], Interconnect::Multicast { radius: 3 }, 4.0);
        let a = Analysis::new(&op, &df, &arch).unwrap();
        let vb = a.volumes("B").unwrap();
        // B[j] is used by 4 PEs in the same cycle: 3 of the 4 accesses per
        // stamp are wire reuse -> unique = 3 (one per j).
        assert_eq!(vb.total, 12);
        assert_eq!(vb.unique, 3);
        assert_eq!(vb.spatial_reuse, 9);
    }
}
