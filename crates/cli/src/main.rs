//! `tenet` — the command-line driver of the TENET reproduction.
//!
//! Run `tenet help` for usage. Subcommand logic lives in
//! [`commands`] so it can be unit-tested; this file only handles process
//! I/O and exit codes.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(raw) {
        Ok(stdout) => {
            print!("{stdout}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.message.trim_end());
            ExitCode::from(e.code.clamp(0, 255) as u8)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::commands::run;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(argv(&["help"])).unwrap();
        assert!(out.contains("tenet analyze"));
        assert!(out.contains("PRESETS"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run(argv(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("unknown command"));
    }

    #[test]
    fn missing_file_is_input_error() {
        let err = run(argv(&["analyze", "/nonexistent/x.tenet"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn demo_gemm_is_itself_parseable() {
        let out = run(argv(&["demo", "gemm"])).unwrap();
        let p = tenet_frontend::parse_problem(&out).unwrap();
        assert_eq!(p.kernel.name(), "gemm");
        assert_eq!(p.dataflows.len(), 1);
        assert!(p.arch.is_some());
    }

    #[test]
    fn demo_every_kernel_round_trips_through_analyze() {
        for k in ["gemm", "conv2d", "mttkrp", "mmc", "jacobi2d"] {
            let text = run(argv(&["demo", k])).unwrap();
            let dir = std::env::temp_dir().join(format!("tenet-demo-{k}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(format!("{k}.tenet"));
            std::fs::write(&path, &text).unwrap();
            let out = run(argv(&["analyze", path.to_str().unwrap()])).unwrap();
            assert!(
                out.contains("dataflow #0"),
                "demo {k} failed analyze:\n{out}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn demo_unknown_kernel_is_usage_error() {
        let err = run(argv(&["demo", "fft"])).unwrap_err();
        assert_eq!(err.code, 1);
    }
}
