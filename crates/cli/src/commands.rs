//! Subcommand implementations. Each command returns the text to print so
//! the logic is unit-testable without spawning processes.

use crate::args::Args;
use std::fmt::Write as _;
use tenet_core::{export, presets, Analysis, AnalysisOptions, ArchSpec, Dataflow};
use tenet_frontend::{
    arch_to_spec, dataflow_to_notation, kernel_to_c, parse_arch, parse_problem, problem_to_text,
    Problem,
};

/// Top-level command error: a message for stderr plus the exit code.
#[derive(Debug)]
pub struct CmdError {
    /// Message printed to stderr.
    pub message: String,
    /// Process exit code (1 = usage, 2 = input error, 3 = analysis error).
    pub code: i32,
}

impl CmdError {
    fn usage(message: impl Into<String>) -> CmdError {
        CmdError {
            message: message.into(),
            code: 1,
        }
    }

    fn input(message: impl Into<String>) -> CmdError {
        CmdError {
            message: message.into(),
            code: 2,
        }
    }

    fn analysis(message: impl Into<String>) -> CmdError {
        CmdError {
            message: message.into(),
            code: 3,
        }
    }
}

type CmdResult = Result<String, CmdError>;

/// The `--help` text.
pub const USAGE: &str = "\
tenet — relation-centric tensor dataflow modeling (ISCA 2021 reproduction)

USAGE:
  tenet analyze  <problem.tenet> [--arch FILE | --preset NAME] [--dataflow N]
                 [--format table|csv] [--window W]
  tenet validate <problem.tenet> [--arch FILE | --preset NAME]
  tenet explore  <problem.tenet> [--arch FILE | --preset NAME] [--pe P]
                 [--top K] [--objective latency|sbw|energy] [--pareto]
  tenet simulate <problem.tenet> [--arch FILE | --preset NAME] [--dataflow N]
  tenet hardware <problem.tenet> [--pe-budget N] [--top K]
  tenet trace    <problem.tenet> [--dataflow N]
  tenet fmt      <problem.tenet>
  tenet demo     <gemm|conv2d|mttkrp|mmc|jacobi2d>
  tenet serve    [--addr HOST:PORT] [--threads N]
                 [--trace-buffer N] [--slow-ms MS]
                 [--snapshot-file PATH] [--snapshot-interval-s N]
  tenet route    [--addr HOST:PORT] [--workers N] [--transport local|http]
                 [--worker-addr HOST:PORT]... [--replication R]
                 [--hedge-ms MS] [--threads N] [--admission-rps N]
                 [--trace-buffer N] [--slow-ms MS]
                 [--fault-plan key=value[,...]]...

A problem file holds a C-like kernel, zero or more dataflows in
relation-centric notation, and optionally an `arch { ... }` block:

  for (i = 0; i < 2; i++)
    for (j = 0; j < 2; j++)
      for (k = 0; k < 4; k++)
        S: Y[i][j] += A[i][k] * B[k][j];

  { S[i,j,k] -> (PE[i,j] | T[i + j + k]) }

  arch \"2x2\" { array = [2, 2] interconnect = systolic2d bandwidth = 4 }

PRESETS: tpu8x8, tpu16x16, eyeriss, shidiannao, maeri64, mesh8x8
";

fn read_file(path: &str) -> Result<String, CmdError> {
    std::fs::read_to_string(path).map_err(|e| CmdError::input(format!("cannot read `{path}`: {e}")))
}

fn load_problem(args: &Args) -> Result<Problem, CmdError> {
    let path = args
        .positional(1)
        .ok_or_else(|| CmdError::usage("missing <problem.tenet> argument"))?;
    let source = read_file(path)?;
    let mut problem = parse_problem(&source)
        .map_err(|e| CmdError::input(format!("{path}: parse error\n{}", e.render(&source))))?;

    if let Some(arch_path) = args.option("arch") {
        let arch_src = read_file(arch_path)?;
        let arch = parse_arch(&arch_src).map_err(|e| {
            CmdError::input(format!("{arch_path}: parse error\n{}", e.render(&arch_src)))
        })?;
        problem.arch = Some(arch);
    } else if let Some(preset) = args.option("preset") {
        problem.arch = Some(preset_arch(preset)?);
    }
    Ok(problem)
}

fn preset_arch(name: &str) -> Result<ArchSpec, CmdError> {
    presets::by_name(name).ok_or_else(|| {
        CmdError::usage(format!(
            "unknown preset `{name}` (try {})",
            presets::names().join(", ")
        ))
    })
}

fn require_arch(problem: &Problem) -> Result<&ArchSpec, CmdError> {
    problem.arch.as_ref().ok_or_else(|| {
        CmdError::usage(
            "no architecture: add an `arch { ... }` block to the problem file, or pass \
             --arch FILE or --preset NAME",
        )
    })
}

fn select_dataflows<'p>(
    problem: &'p Problem,
    args: &Args,
) -> Result<Vec<(usize, &'p Dataflow)>, CmdError> {
    if problem.dataflows.is_empty() {
        return Err(CmdError::usage(
            "the problem file declares no dataflow; add one, e.g. \
             `{ S[...] -> (PE[...] | T[...]) }`",
        ));
    }
    match args
        .option_as::<usize>("dataflow")
        .map_err(CmdError::usage)?
    {
        Some(n) => {
            let df = problem.dataflows.get(n).ok_or_else(|| {
                CmdError::usage(format!(
                    "--dataflow {n} out of range (file has {})",
                    problem.dataflows.len()
                ))
            })?;
            Ok(vec![(n, df)])
        }
        None => Ok(problem.dataflows.iter().enumerate().collect()),
    }
}

fn analysis_options(args: &Args) -> Result<AnalysisOptions, CmdError> {
    let mut opts = AnalysisOptions::default();
    if let Some(w) = args.option_as::<u32>("window").map_err(CmdError::usage)? {
        opts.reuse_window = w;
    }
    Ok(opts)
}

/// `tenet analyze`.
pub fn analyze(args: &Args) -> CmdResult {
    args.reject_unknown_flags(&[]).map_err(CmdError::usage)?;
    let problem = load_problem(args)?;
    let arch = require_arch(&problem)?;
    let opts = analysis_options(args)?;
    let format = args.option("format").unwrap_or("table");

    let mut out = String::new();
    if format == "csv" {
        out.push_str(export::csv_header());
        out.push('\n');
    }
    for (idx, df) in select_dataflows(&problem, args)? {
        let analysis = Analysis::with_options(&problem.kernel, df, arch, opts.clone())
            .map_err(|e| CmdError::analysis(format!("dataflow #{idx}: {e}")))?;
        let report = analysis
            .report()
            .map_err(|e| CmdError::analysis(format!("dataflow #{idx}: {e}")))?;
        match format {
            "table" => {
                let _ = writeln!(out, "== dataflow #{idx} ==");
                out.push_str(&export::to_table(&report));
                out.push('\n');
            }
            "csv" => {
                for row in export::to_csv_rows(&report) {
                    out.push_str(&row);
                    out.push('\n');
                }
            }
            other => {
                return Err(CmdError::usage(format!(
                    "unknown --format `{other}` (expected table or csv)"
                )))
            }
        }
    }
    Ok(out)
}

/// `tenet validate`.
pub fn validate(args: &Args) -> CmdResult {
    args.reject_unknown_flags(&[]).map_err(CmdError::usage)?;
    let problem = load_problem(args)?;
    let arch = require_arch(&problem)?;
    let mut out = String::new();
    let mut any_invalid = false;
    for (idx, df) in problem.dataflows.iter().enumerate() {
        let report = tenet_core::validate(&problem.kernel, df, arch)
            .map_err(|e| CmdError::analysis(format!("dataflow #{idx}: {e}")))?;
        let verdict = if report.is_valid() { "ok" } else { "INVALID" };
        any_invalid |= !report.is_valid();
        let name = df.name().unwrap_or("<unnamed>");
        let _ = writeln!(out, "dataflow #{idx} {name}: {verdict}");
        if !report.injective {
            let _ = writeln!(
                out,
                "  - not injective: two loop instances share a spacetime-stamp"
            );
        }
        if !report.in_bounds {
            let _ = writeln!(
                out,
                "  - out of bounds: a space-stamp falls outside the PE array"
            );
        }
        let _ = writeln!(
            out,
            "  - PE coverage {:.1}%, working footprint {} elements ({})",
            report.pe_coverage * 100.0,
            report.footprint,
            if report.fits_scratchpad {
                "fits scratchpad"
            } else {
                "EXCEEDS scratchpad"
            }
        );
    }
    if problem.dataflows.is_empty() {
        out.push_str("problem file has no dataflows; nothing to validate\n");
    }
    if any_invalid {
        return Err(CmdError {
            message: out,
            code: 4,
        });
    }
    Ok(out)
}

/// `tenet explore`.
pub fn explore(args: &Args) -> CmdResult {
    args.reject_unknown_flags(&["pareto"])
        .map_err(CmdError::usage)?;
    let problem = load_problem(args)?;
    let arch = require_arch(&problem)?;
    let pe = match args.option_as::<i64>("pe").map_err(CmdError::usage)? {
        Some(p) if p > 0 => p,
        Some(p) => return Err(CmdError::usage(format!("--pe must be positive, got {p}"))),
        None => *arch.pe_dims.first().unwrap_or(&8),
    };
    let top = args
        .option_as::<usize>("top")
        .map_err(CmdError::usage)?
        .unwrap_or(10);
    let objective = args.option("objective").unwrap_or("latency");

    let pe1d = arch.pe_count().min(i64::MAX as u128) as i64;
    let candidates = tenet_dse::enumerate_all(&problem.kernel, pe, pe1d)
        .map_err(|e| CmdError::analysis(e.to_string()))?;
    let mut points = tenet_dse::explore(&problem.kernel, arch, &candidates)
        .map_err(|e| CmdError::analysis(e.to_string()))?;
    match objective {
        "latency" => {}
        "sbw" => points.sort_by(|a, b| a.sbw().total_cmp(&b.sbw())),
        "energy" => {
            points.sort_by(|a, b| a.report.energy.total().total_cmp(&b.report.energy.total()))
        }
        other => {
            return Err(CmdError::usage(format!(
                "unknown --objective `{other}` (expected latency, sbw, energy)"
            )))
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "explored {} candidate dataflows ({} valid) on {}",
        candidates.len(),
        points.len(),
        arch.name
    );
    let _ = writeln!(
        out,
        "{:<44} {:>12} {:>10} {:>10}",
        "dataflow", "latency", "SBW", "energy"
    );
    for p in points.iter().take(top) {
        let name = p
            .dataflow
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| dataflow_signature(&p.dataflow));
        let _ = writeln!(
            out,
            "{:<44} {:>12.0} {:>10.2} {:>10.0}",
            name,
            p.latency(),
            p.sbw(),
            p.report.energy.total()
        );
    }
    if args.flag("pareto") {
        let frontier = tenet_dse::pareto(&points);
        let _ = writeln!(out, "\nPareto frontier (latency vs scratchpad bandwidth):");
        for p in frontier {
            let name = p
                .dataflow
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| dataflow_signature(&p.dataflow));
            let _ = writeln!(out, "{:<44} {:>12.0} {:>10.2}", name, p.latency(), p.sbw());
        }
    }
    Ok(out)
}

fn dataflow_signature(df: &Dataflow) -> String {
    format!(
        "(PE[{}] | T[{}])",
        df.space_exprs().join(","),
        df.time_exprs().join(",")
    )
}

/// `tenet simulate`: runs the cycle-level simulator next to the
/// analytical model and prints both.
pub fn simulate(args: &Args) -> CmdResult {
    args.reject_unknown_flags(&[]).map_err(CmdError::usage)?;
    let problem = load_problem(args)?;
    let arch = require_arch(&problem)?;
    let mut out = String::new();
    for (idx, df) in select_dataflows(&problem, args)? {
        let report = Analysis::new(&problem.kernel, df, arch)
            .and_then(|a| a.report())
            .map_err(|e| CmdError::analysis(format!("dataflow #{idx}: {e}")))?;
        let sim = tenet_sim::simulate(&problem.kernel, df, arch, &tenet_sim::SimOptions::default())
            .map_err(|e| CmdError::analysis(format!("dataflow #{idx}: {e}")))?;
        let _ = writeln!(out, "== dataflow #{idx} ==");
        let _ = writeln!(out, "{:<26} {:>14} {:>14}", "metric", "model", "simulator");
        let _ = writeln!(
            out,
            "{:<26} {:>14.0} {:>14}",
            "latency (cycles)",
            report.latency.total(),
            sim.latency()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>14.3} {:>14.3}",
            "avg PE utilization",
            report.utilization.average,
            sim.avg_utilization()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>14} {:>14}",
            "scratchpad traffic",
            report.unique_volume(tenet_core::Role::Input)
                + report.unique_volume(tenet_core::Role::Output),
            sim.scratchpad_total()
        );
        out.push('\n');
    }
    Ok(out)
}

/// `tenet hardware`: co-explores PE array shapes, interconnects, and
/// bandwidths for the problem's kernel (Figure 2's hardware DSE branch).
pub fn hardware(args: &Args) -> CmdResult {
    args.reject_unknown_flags(&[]).map_err(CmdError::usage)?;
    let problem = load_problem(args)?;
    let budget = args
        .option_as::<i64>("pe-budget")
        .map_err(CmdError::usage)?
        .unwrap_or(64);
    if budget <= 0 {
        return Err(CmdError::usage("--pe-budget must be positive"));
    }
    let top = args
        .option_as::<usize>("top")
        .map_err(CmdError::usage)?
        .unwrap_or(10);
    let space = tenet_dse::hardware::HardwareSpace {
        pe_budget: budget,
        ..Default::default()
    };
    let points = tenet_dse::hardware::co_explore(&problem.kernel, &space)
        .map_err(|e| CmdError::analysis(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "hardware DSE for `{}` under a {budget}-PE budget ({} architectures with a valid mapping)",
        problem.kernel.name(),
        points.len()
    );
    let _ = writeln!(
        out,
        "{:<18} {:>6} {:>10} {:>8} {:>10} {:>10}",
        "architecture", "bw", "latency", "util", "SBW", "energy"
    );
    for p in points.iter().take(top) {
        let r = &p.best.report;
        let _ = writeln!(
            out,
            "{:<18} {:>6.0} {:>10.0} {:>8.2} {:>10.2} {:>10.0}",
            p.arch.name,
            p.arch.bandwidth,
            r.latency.total(),
            r.utilization.average,
            r.bandwidth.scratchpad,
            r.energy.total(),
        );
    }
    Ok(out)
}

/// `tenet trace`: prints the Figure 3-style per-time-stamp execution
/// table (small workloads only).
pub fn trace(args: &Args) -> CmdResult {
    args.reject_unknown_flags(&[]).map_err(CmdError::usage)?;
    let problem = load_problem(args)?;
    let arch = require_arch(&problem)?;
    let mut out = String::new();
    for (idx, df) in select_dataflows(&problem, args)? {
        let t = tenet_sim::trace(&problem.kernel, df, arch, 4096)
            .map_err(|e| CmdError::analysis(format!("dataflow #{idx}: {e}")))?;
        let _ = writeln!(out, "== dataflow #{idx} ==");
        out.push_str(&t.render());
    }
    Ok(out)
}

/// `tenet fmt`: canonical re-printing of a problem file.
pub fn fmt(args: &Args) -> CmdResult {
    args.reject_unknown_flags(&[]).map_err(CmdError::usage)?;
    let problem = load_problem(args)?;
    Ok(problem_to_text(&problem))
}

/// `tenet demo`: prints a ready-to-run problem file for a named kernel.
pub fn demo(args: &Args) -> CmdResult {
    use tenet_workloads::kernels;
    let which = args
        .positional(1)
        .ok_or_else(|| CmdError::usage("missing kernel name (try `tenet demo gemm`)"))?;
    let map_err = |e: tenet_core::Error| CmdError::analysis(e.to_string());
    let (op, df, arch) = match which {
        "gemm" => (
            kernels::gemm(16, 16, 16).map_err(map_err)?,
            Dataflow::new(
                ["i % 8", "j % 8"],
                ["floor(i / 8)", "floor(j / 8)", "i % 8 + j % 8 + k"],
            )
            .named("(IJ-P | J,IJK-T)"),
            presets::tpu_like(8, 8, 64.0),
        ),
        "conv2d" => (
            kernels::conv2d(16, 16, 14, 14, 3, 3).map_err(map_err)?,
            Dataflow::new(
                ["k % 8", "c % 8"],
                ["floor(k / 8)", "floor(c / 8)", "oy", "k % 8 + c % 8 + ox"],
            )
            .named("(KC-P | OY,KCOX-T)"),
            presets::tpu_like(8, 8, 64.0),
        ),
        "mttkrp" => (
            kernels::mttkrp(16, 16, 8, 8).map_err(map_err)?,
            Dataflow::new(
                ["i % 8", "j % 8"],
                ["k", "floor(i / 8)", "floor(j / 8)", "i % 8 + j % 8 + l"],
            )
            .named("(IJ-P | J,IJL-T)"),
            presets::tpu_like(8, 8, 64.0),
        ),
        "mmc" => (
            kernels::mmc(16, 16, 8, 8).map_err(map_err)?,
            Dataflow::new(
                ["i % 8", "j % 8"],
                ["k", "floor(i / 8)", "floor(j / 8)", "i % 8 + j % 8 + l"],
            )
            .named("(IJ-P | J,IJL-T)"),
            presets::tpu_like(8, 8, 64.0),
        ),
        "jacobi2d" => (
            kernels::jacobi2d(18).map_err(map_err)?,
            Dataflow::new(["i % 8", "j % 8"], ["floor(i / 8)", "floor(j / 8)"])
                .named("(IJ-P | I,J-T)"),
            presets::mesh(8, 8, 16.0),
        ),
        other => {
            return Err(CmdError::usage(format!(
                "unknown demo kernel `{other}` (try gemm, conv2d, mttkrp, mmc, jacobi2d)"
            )))
        }
    };
    let iters: Vec<String> = op.dims().iter().map(|d| d.name.clone()).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# `tenet demo {which}` — save as {which}.tenet and run:"
    );
    let _ = writeln!(out, "#   tenet analyze {which}.tenet");
    out.push('\n');
    out.push_str(&kernel_to_c(&op));
    out.push('\n');
    if let Some(name) = df.name() {
        let _ = writeln!(out, "# {name}");
    }
    out.push_str(&dataflow_to_notation(&df, &iters));
    out.push_str("\n\n");
    out.push_str(&arch_to_spec(&arch));
    Ok(out)
}

/// Parses the shared observability knobs: `--trace-buffer N` (trace
/// ring capacity, 0 disables tracing) and `--slow-ms MS` (threshold
/// for the slow-request ring).
fn trace_options(args: &Args) -> Result<(Option<usize>, Option<u64>), CmdError> {
    let buffer = match args
        .option_as::<usize>("trace-buffer")
        .map_err(CmdError::usage)?
    {
        Some(n) if n <= 65536 => Some(n),
        Some(n) => {
            return Err(CmdError::usage(format!(
                "--trace-buffer must be at most 65536, got {n}"
            )))
        }
        None => None,
    };
    let slow = args.option_as::<u64>("slow-ms").map_err(CmdError::usage)?;
    Ok((buffer, slow))
}

/// `tenet serve`: runs the HTTP/JSON analysis service until a graceful
/// shutdown (`POST /v1/shutdown`) drains it.
pub fn serve(args: &Args) -> CmdResult {
    args.reject_unknown_flags(&[]).map_err(CmdError::usage)?;
    let mut config = tenet_server::ServerConfig::default();
    if let Some(addr) = args.option("addr") {
        config.addr = addr.to_string();
    }
    match args
        .option_as::<usize>("threads")
        .map_err(CmdError::usage)?
    {
        Some(t) if t >= 1 => config.threads = t.min(256),
        Some(_) => return Err(CmdError::usage("--threads must be at least 1")),
        None => {}
    }
    let (buffer, slow) = trace_options(args)?;
    if let Some(n) = buffer {
        config.trace_buffer = n;
    }
    if let Some(ms) = slow {
        config.slow_ms = ms;
    }
    if let Some(path) = args.option("snapshot-file") {
        config.snapshot_file = Some(std::path::PathBuf::from(path));
    }
    match args
        .option_as::<u64>("snapshot-interval-s")
        .map_err(CmdError::usage)?
    {
        Some(s) if s >= 1 => {
            if config.snapshot_file.is_none() {
                return Err(CmdError::usage(
                    "--snapshot-interval-s needs --snapshot-file PATH",
                ));
            }
            config.snapshot_interval = Some(std::time::Duration::from_secs(s));
        }
        Some(_) => return Err(CmdError::usage("--snapshot-interval-s must be at least 1")),
        None => {}
    }
    let server = tenet_server::Server::bind(config)
        .map_err(|e| CmdError::input(format!("cannot bind: {e}")))?;
    // Announce the address before blocking so scripts (and the CI smoke
    // test) can discover an ephemeral port.
    println!("tenet-server listening on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server
        .run()
        .map_err(|e| CmdError::analysis(format!("server error: {e}")))?;
    Ok("server drained and stopped\n".to_string())
}

/// `tenet route`: fronts N analysis workers with the consistent-hash
/// sharding router, running until a cascaded drain (`POST
/// /v1/shutdown`). The default topology is all in-process: each worker
/// is a [`tenet_server::WorkerCore`] dispatched to directly, with no
/// worker sockets at all; `--transport http` spawns the workers as
/// loopback HTTP processes-in-threads instead, and `--worker-addr`
/// attaches already-running external workers over HTTP either way.
pub fn route(args: &Args) -> CmdResult {
    args.reject_unknown_flags(&[]).map_err(CmdError::usage)?;
    let external: Vec<String> = args.option_all("worker-addr").map(str::to_string).collect();
    let workers = match args
        .option_as::<usize>("workers")
        .map_err(CmdError::usage)?
    {
        Some(n) if (1..=16).contains(&n) || (n == 0 && !external.is_empty()) => n,
        Some(n) => {
            return Err(CmdError::usage(format!(
                "--workers must be in [1, 16] (0 only with --worker-addr), got {n}"
            )))
        }
        None => 2,
    };
    let transport = args.option("transport").unwrap_or("local");
    if !matches!(transport, "local" | "http") {
        return Err(CmdError::usage(format!(
            "--transport must be `local` or `http`, got `{transport}`"
        )));
    }
    let mut config = tenet_router::RouterConfig::default();
    if let Some(addr) = args.option("addr") {
        config.addr = addr.to_string();
    }
    match args
        .option_as::<usize>("threads")
        .map_err(CmdError::usage)?
    {
        Some(t) if t >= 1 => config.threads = t.min(256),
        Some(_) => return Err(CmdError::usage("--threads must be at least 1")),
        None => {}
    }
    match args
        .option_as::<usize>("replication")
        .map_err(CmdError::usage)?
    {
        Some(r) if (1..=8).contains(&r) => config.replication = r,
        Some(r) => {
            return Err(CmdError::usage(format!(
                "--replication must be in [1, 8], got {r}"
            )))
        }
        None => {}
    }
    match args.option_as::<u64>("hedge-ms").map_err(CmdError::usage)? {
        Some(0) => config.hedge_after = std::time::Duration::MAX, // 0 = off
        Some(ms) => config.hedge_after = std::time::Duration::from_millis(ms),
        None => {}
    }
    if let Some(rps) = args
        .option_as::<u64>("admission-rps")
        .map_err(CmdError::usage)?
    {
        config.admission_rps = rps; // 0 = off (the default)
    }
    let (buffer, slow) = trace_options(args)?;
    if let Some(n) = buffer {
        config.trace_buffer = n;
    }
    if let Some(ms) = slow {
        config.slow_ms = ms;
    }
    // Chaos drills: each --fault-plan wraps the in-process workers it
    // targets (`worker=N` scoping; no `worker=` applies to all) in a
    // seeded fault-injection transport. Plans wrap the spawned local
    // cores, so they need the default local transport; external
    // `--worker-addr` workers are never wrapped.
    let fault_plans: Vec<tenet_router::FaultPlan> = args
        .option_all("fault-plan")
        .map(tenet_router::FaultPlan::parse)
        .collect::<Result<_, _>>()
        .map_err(CmdError::usage)?;
    if !fault_plans.is_empty() && transport != "local" {
        return Err(CmdError::usage(
            "--fault-plan wraps in-process worker transports; it needs --transport local",
        ));
    }
    config.workers = external.clone();

    let mut specs = Vec::new();
    let mut spawned: Vec<tenet_server::SpawnedServer> = Vec::new();
    if transport == "local" {
        for i in 0..workers {
            let core = tenet_server::WorkerCore::new(tenet_server::ServerConfig {
                addr: "in-process".into(),
                ..Default::default()
            });
            let mut t: Box<dyn tenet_router::Transport> =
                Box::new(tenet_router::LocalTransport::new(core));
            for plan in &fault_plans {
                if plan.only_worker.is_none_or(|w| w == i) {
                    t = Box::new(tenet_router::FaultTransport::new(t, plan.clone()));
                }
            }
            specs.push(tenet_router::WorkerSpec::Custom(t));
        }
    } else {
        for _ in 0..workers {
            let worker = tenet_server::Server::spawn(tenet_server::ServerConfig {
                addr: "127.0.0.1:0".into(),
                // The worker parks a thread per keep-alive connection, so
                // it needs headroom over the router's connection-pool
                // bound: probes and stats fan-outs must never queue
                // behind parked proxy sockets.
                threads: config.upstream_connections + 2,
                ..Default::default()
            })
            .map_err(|e| CmdError::input(format!("cannot spawn worker: {e}")))?;
            config.workers.push(worker.addr().to_string());
            spawned.push(worker);
        }
    }
    let router = tenet_router::Router::bind_with_workers(config, specs).map_err(|e| {
        // A failed router bind must not strand the worker threads.
        for w in spawned.drain(..) {
            let _ = w.shutdown_and_join();
        }
        CmdError::input(format!("cannot bind router: {e}"))
    })?;
    // Announce the address before blocking so scripts (and the CI smoke
    // test) can discover an ephemeral port.
    let mut names: Vec<String> = if transport == "local" {
        (0..workers).map(|i| format!("local#{i}")).collect()
    } else {
        spawned.iter().map(|w| w.addr().to_string()).collect()
    };
    names.extend(external.iter().cloned());
    println!(
        "tenet-router listening on http://{} ({} workers: {})",
        router.local_addr(),
        names.len(),
        names.join(", ")
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let outcome = router.run();
    // The drain normally cascades through the shutdown endpoint; make
    // teardown unconditional so workers never outlive the router.
    for w in spawned {
        let _ = w.shutdown_and_join();
    }
    outcome.map_err(|e| CmdError::analysis(format!("router error: {e}")))?;
    Ok("router and workers drained and stopped\n".to_string())
}

/// Dispatches a subcommand; returns the stdout text.
pub fn run(raw: Vec<String>) -> CmdResult {
    let Some(cmd) = raw.first().cloned() else {
        return Err(CmdError::usage(USAGE));
    };
    let args = Args::parse(raw).map_err(CmdError::usage)?;
    match cmd.as_str() {
        "analyze" => analyze(&args),
        "validate" => validate(&args),
        "explore" => explore(&args),
        "simulate" => simulate(&args),
        "hardware" => hardware(&args),
        "trace" => trace(&args),
        "fmt" => fmt(&args),
        "demo" => demo(&args),
        "serve" => serve(&args),
        "route" => route(&args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CmdError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}
