//! A tiny dependency-free argument parser: positional arguments plus
//! `--flag` and `--key value` options.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, Vec<String>>,
    flags: Vec<String>,
}

/// Option keys that take a value; everything else starting with `--` is a
/// boolean flag.
const VALUED: &[&str] = &[
    "arch",
    "preset",
    "dataflow",
    "top",
    "pe",
    "pe-budget",
    "objective",
    "window",
    "format",
    "addr",
    "threads",
    "workers",
    "worker-addr",
    "transport",
    "replication",
    "hedge-ms",
    "fault-plan",
    "admission-rps",
    "trace-buffer",
    "slow-ms",
    "snapshot-file",
    "snapshot-interval-s",
];

/// Valued keys that may be given more than once, accumulating values.
const REPEATABLE: &[&str] = &["worker-addr", "fault-plan"];

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if VALUED.contains(&key) {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("option --{key} needs a value"))?;
                    let values = args.options.entry(key.to_string()).or_default();
                    if !values.is_empty() && !REPEATABLE.contains(&key) {
                        return Err(format!("option --{key} given twice"));
                    }
                    values.push(v);
                } else {
                    args.flags.push(key.to_string());
                }
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// The value of `--key`, if given (the first value for a repeatable
    /// key).
    pub fn option(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    /// Every value given for a repeatable `--key`, in order.
    pub fn option_all(&self, key: &str) -> impl Iterator<Item = &str> {
        self.options
            .get(key)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// The value of `--key` parsed as `T`.
    pub fn option_as<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.option(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
        }
    }

    /// True if `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Returns an error naming any flag not in `known`.
    pub fn reject_unknown_flags(&self, known: &[&str]) -> Result<(), String> {
        for f in &self.flags {
            if !known.contains(&f.as_str()) {
                return Err(format!("unknown flag --{f}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn splits_positional_options_flags() {
        let a = parse(&["file.tenet", "--top", "5", "--csv"]);
        assert_eq!(a.positional(0), Some("file.tenet"));
        assert_eq!(a.option("top"), Some("5"));
        assert!(a.flag("csv"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn option_as_parses_numbers() {
        let a = parse(&["--pe", "8"]);
        assert_eq!(a.option_as::<i64>("pe").unwrap(), Some(8));
        assert_eq!(a.option_as::<i64>("top").unwrap(), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(["--top".to_string()]).unwrap_err();
        assert!(err.contains("needs a value"));
    }

    #[test]
    fn duplicate_option_is_an_error() {
        let err =
            Args::parse(["--top".to_string(), "1".into(), "--top".into(), "2".into()]).unwrap_err();
        assert!(err.contains("twice"));
    }

    #[test]
    fn repeatable_option_accumulates_in_order() {
        let a = parse(&[
            "--worker-addr",
            "127.0.0.1:9001",
            "--worker-addr",
            "127.0.0.1:9002",
        ]);
        assert_eq!(
            a.option_all("worker-addr").collect::<Vec<_>>(),
            vec!["127.0.0.1:9001", "127.0.0.1:9002"]
        );
        assert_eq!(a.option("worker-addr"), Some("127.0.0.1:9001"));
        assert_eq!(a.option_all("addr").count(), 0);
    }

    #[test]
    fn unknown_flag_rejected() {
        let a = parse(&["--bogus"]);
        assert!(a.reject_unknown_flags(&["csv"]).is_err());
        assert!(a.reject_unknown_flags(&["bogus"]).is_ok());
    }

    #[test]
    fn bad_numeric_value_is_an_error() {
        let a = parse(&["--pe", "eight"]);
        assert!(a.option_as::<i64>("pe").is_err());
    }
}
