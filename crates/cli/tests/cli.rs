//! End-to-end tests that spawn the real `tenet` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tenet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tenet"))
        .args(args)
        .output()
        .expect("spawn tenet binary")
}

fn write_problem(name: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tenet-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path
}

const FIGURE3: &str = r#"
for (i = 0; i < 2; i++)
  for (j = 0; j < 2; j++)
    for (k = 0; k < 4; k++)
      S: Y[i][j] += A[i][k] * B[k][j];

{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }

arch "2x2" { array = [2, 2] interconnect = systolic2d bandwidth = 4 }
"#;

#[test]
fn analyze_figure3_prints_report() {
    let path = write_problem("fig3.tenet", FIGURE3);
    let out = tenet(&["analyze", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("dataflow #0"));
    assert!(stdout.to_lowercase().contains("latency"));
}

#[test]
fn analyze_csv_format() {
    let path = write_problem("fig3csv.tenet", FIGURE3);
    let out = tenet(&["analyze", path.to_str().unwrap(), "--format", "csv"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut lines = stdout.lines();
    let header = lines.next().unwrap();
    assert!(header.contains(','), "csv header: {header}");
    assert!(lines.next().is_some(), "csv has at least one data row");
}

#[test]
fn validate_reports_ok() {
    let path = write_problem("fig3v.tenet", FIGURE3);
    let out = tenet(&["validate", path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("ok"));
}

#[test]
fn validate_flags_non_injective_dataflow() {
    let bad = r#"
for (i = 0; i < 2; i++)
  for (j = 0; j < 2; j++)
    for (k = 0; k < 4; k++)
      S: Y[i][j] += A[i][k] * B[k][j];

{ S[i,j,k] -> (PE[i,j] | T[i + j]) }

arch "2x2" { array = [2, 2] interconnect = systolic2d bandwidth = 4 }
"#;
    let path = write_problem("bad.tenet", bad);
    let out = tenet(&["validate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("not injective"));
}

#[test]
fn parse_error_renders_caret() {
    let path = write_problem("syntax.tenet", "for (i = 0 i < 4; i++) S: Y[i] += A[i];");
    let out = tenet(&["analyze", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains('^'), "caret rendering:\n{stderr}");
    assert!(stderr.contains("expected"));
}

#[test]
fn simulate_agrees_with_model_on_figure3() {
    let path = write_problem("fig3sim.tenet", FIGURE3);
    let out = tenet(&["simulate", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("model"));
    assert!(stdout.contains("simulator"));
}

#[test]
fn explore_lists_candidates() {
    let path = write_problem("fig3x.tenet", FIGURE3);
    let out = tenet(&["explore", path.to_str().unwrap(), "--pe", "2", "--top", "3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("explored"));
}

#[test]
fn fmt_is_idempotent() {
    let path = write_problem("fig3fmt.tenet", FIGURE3);
    let once = tenet(&["fmt", path.to_str().unwrap()]);
    assert!(once.status.success());
    let text1 = String::from_utf8(once.stdout).unwrap();
    let path2 = write_problem("fig3fmt2.tenet", &text1);
    let twice = tenet(&["fmt", path2.to_str().unwrap()]);
    let text2 = String::from_utf8(twice.stdout).unwrap();
    assert_eq!(text1, text2);
}

#[test]
fn preset_overrides_missing_arch() {
    let no_arch = r#"
for (i = 0; i < 16; i++)
  for (j = 0; j < 16; j++)
    for (k = 0; k < 16; k++)
      S: Y[i][j] += A[i][k] * B[k][j];

{S[i,j,k] -> PE[i%8, j%8]}
{S[i,j,k] -> T[fl(i/8), fl(j/8), i%8 + j%8 + k]}
"#;
    let path = write_problem("noarch.tenet", no_arch);
    // Without a preset: usage error.
    let out = tenet(&["analyze", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    // With a preset: success.
    let out = tenet(&["analyze", path.to_str().unwrap(), "--preset", "tpu8x8"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn hardware_dse_lists_architectures() {
    let small = r#"
for (i = 0; i < 8; i++)
  for (j = 0; j < 8; j++)
    for (k = 0; k < 8; k++)
      S: Y[i][j] += A[i][k] * B[k][j];
"#;
    let path = write_problem("hw.tenet", small);
    let out = tenet(&[
        "hardware",
        path.to_str().unwrap(),
        "--pe-budget",
        "16",
        "--top",
        "5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("hardware DSE"));
    assert!(stdout.contains("architecture"));
}

#[test]
fn hardware_rejects_nonpositive_budget() {
    let path = write_problem("hwbad.tenet", "for (i = 0; i < 2; i++) S: Y[i] += A[i];");
    let out = tenet(&["hardware", path.to_str().unwrap(), "--pe-budget", "0"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn trace_prints_figure3_table() {
    let path = write_problem("fig3tr.tenet", FIGURE3);
    let out = tenet(&["trace", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("T[1]"));
    // The text parser lists the written tensor first.
    assert!(
        stdout.contains("PE[0,0]  Y[0][0] A[0][1] B[1][0]"),
        "{stdout}"
    );
}

#[test]
fn serve_rejects_bad_options() {
    let out = tenet(&["serve", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(1));
    let out = tenet(&["serve", "--addr", "definitely:not:an:addr"]);
    assert_eq!(out.status.code(), Some(2));
    // The snapshot knobs: a non-numeric or zero interval is a usage
    // error, and an interval without a file to write makes no sense.
    let out = tenet(&["serve", "--snapshot-interval-s", "soon"]);
    assert_eq!(out.status.code(), Some(1));
    let out = tenet(&[
        "serve",
        "--snapshot-file",
        "x.snap",
        "--snapshot-interval-s",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let out = tenet(&["serve", "--snapshot-interval-s", "5"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--snapshot-file"));
}

#[test]
fn route_rejects_bad_options() {
    // --workers 0 is only meaningful with external --worker-addr workers.
    let out = tenet(&["route", "--workers", "0"]);
    assert_eq!(out.status.code(), Some(1));
    let out = tenet(&["route", "--workers", "99"]);
    assert_eq!(out.status.code(), Some(1));
    let out = tenet(&["route", "--transport", "carrier-pigeon"]);
    assert_eq!(out.status.code(), Some(1));
    let out = tenet(&["route", "--replication", "0"]);
    assert_eq!(out.status.code(), Some(1));
    let out = tenet(&["route", "--replication", "9"]);
    assert_eq!(out.status.code(), Some(1));
    let out = tenet(&["route", "--hedge-ms", "soon"]);
    assert_eq!(out.status.code(), Some(1));
    let out = tenet(&["route", "--addr", "definitely:not:an:addr"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn route_round_trips_and_cascades_drain() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tenet"))
        .args(["route", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tenet route");
    // First stdout line announces the router's bound (ephemeral) address.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    assert!(line.contains("2 workers"), "announcement: {line}");
    let addr = line
        .split_whitespace()
        .find_map(|w| w.strip_prefix("http://"))
        .expect("address in announcement")
        .to_string();

    let request = |verb: &str, path: &str, body: &str| -> (u16, String) {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        s.write_all(
            format!(
                "{verb} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw).into_owned();
        let status = text
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        (status, text)
    };

    let (status, body) = request("GET", "/v1/healthz", "");
    assert_eq!(status, 200, "healthz: {body}");
    assert!(body.contains("\"alive_workers\":2"), "{body}");

    // The default topology is fully in-process: every shard reports the
    // local transport — there are no worker sockets at all.
    let (status, body) = request("GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"transport\":\"local\""), "{body}");
    assert!(!body.contains("\"transport\":\"http\""), "{body}");

    // A sharded request round-trips through a worker.
    let problem = "for (i = 0; i < 2; i++)\n  for (j = 0; j < 2; j++)\n    for (k = 0; k < 4; k++)\n      S: Y[i][j] += A[i][k] * B[k][j];\n\n{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }\n\narch \"2x2\" { array = [2, 2] interconnect = systolic2d bandwidth = 4 }\n";
    let analyze = format!("{{\"problem\": {}}}", tenet_core::json::Json::from(problem));
    let (status, body) = request("POST", "/v1/analyze", &analyze);
    assert_eq!(status, 200, "analyze via router: {body}");
    assert!(body.contains("\"reports\""), "{body}");

    // The cascaded drain stops workers and router; the process exits 0.
    let (status, body) = request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    let exit = child.wait().expect("router exit");
    assert!(exit.success(), "route must exit cleanly after the cascade");
}

#[test]
fn route_attaches_external_workers() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    // An already-running worker process...
    let mut worker = std::process::Command::new(env!("CARGO_BIN_EXE_tenet"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "8"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tenet serve");
    let mut wout = BufReader::new(worker.stdout.take().unwrap());
    let mut line = String::new();
    wout.read_line(&mut line).unwrap();
    let worker_addr = line
        .split_whitespace()
        .find_map(|w| w.strip_prefix("http://"))
        .expect("worker address in announcement")
        .to_string();

    // ...attached over HTTP to a router that owns no workers itself.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tenet"))
        .args([
            "route",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "0",
            "--worker-addr",
            &worker_addr,
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tenet route");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    assert!(line.contains("1 workers"), "announcement: {line}");
    assert!(line.contains(&worker_addr), "announcement: {line}");
    let addr = line
        .split_whitespace()
        .find_map(|w| w.strip_prefix("http://"))
        .expect("address in announcement")
        .to_string();

    let request = |verb: &str, path: &str, body: &str| -> (u16, String) {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        s.write_all(
            format!(
                "{verb} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw).into_owned();
        let status = text
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        (status, text)
    };

    let (status, body) = request("GET", "/v1/healthz", "");
    assert_eq!(status, 200, "healthz: {body}");
    assert!(body.contains("\"alive_workers\":1"), "{body}");
    let (status, body) = request("GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"transport\":\"http\""), "{body}");
    assert!(body.contains(&worker_addr), "{body}");

    // A sharded request round-trips through the external worker.
    let problem = "for (i = 0; i < 2; i++)\n  for (j = 0; j < 2; j++)\n    for (k = 0; k < 4; k++)\n      S: Y[i][j] += A[i][k] * B[k][j];\n\n{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }\n\narch \"2x2\" { array = [2, 2] interconnect = systolic2d bandwidth = 4 }\n";
    let analyze = format!("{{\"problem\": {}}}", tenet_core::json::Json::from(problem));
    let (status, body) = request("POST", "/v1/analyze", &analyze);
    assert_eq!(status, 200, "analyze via external worker: {body}");
    assert!(body.contains("\"reports\""), "{body}");

    // The cascade drains the external worker process too: both exit 0.
    let (status, body) = request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    let exit = child.wait().expect("router exit");
    assert!(exit.success(), "route must exit cleanly after the cascade");
    let exit = worker.wait().expect("worker exit");
    assert!(
        exit.success(),
        "the cascade must drain the attached external worker"
    );
}

#[test]
fn serve_round_trips_and_drains() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tenet"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tenet serve");
    // First stdout line announces the bound (ephemeral) address.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .expect("address in announcement")
        .to_string();

    let request = |verb: &str, path: &str| -> (u16, String) {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        s.write_all(
            format!("{verb} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw).into_owned();
        let status = text
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        (status, text)
    };

    let (status, body) = request("GET", "/v1/healthz");
    assert_eq!(status, 200, "healthz: {body}");
    assert!(body.contains("\"ok\""));

    let (status, _) = request("POST", "/v1/shutdown");
    assert_eq!(status, 200);

    let exit = child.wait().expect("server exit");
    assert!(exit.success(), "serve must exit cleanly after drain");
}
