//! `gist`: constraint simplification relative to a known context.
//!
//! `a.gist(ctx)` returns a relation `g` with (a subset of) `a`'s
//! constraints such that `g ∩ ctx == a ∩ ctx`. It is the ISL idiom for
//! "simplify `a` assuming `ctx` holds" — e.g. dropping iteration-domain
//! bounds from a data-assignment relation that is only ever evaluated
//! inside the domain.
//!
//! The implementation is the standard greedy one: a constraint `c` of a
//! disjunct `b` can be dropped when `(b \ c) ∩ ctx ∩ ¬c` is empty, which
//! keeps the invariant `b' ∩ ctx == b ∩ ctx` at every step. Disjuncts
//! that do not intersect the context at all are removed entirely.

use crate::basic::BasicMap;
use crate::map::Map;
use crate::set::Set;
use crate::Result;

impl Map {
    /// Simplifies this relation under the assumption that `context`
    /// holds: the result `g` satisfies `g ∩ context == self ∩ context`
    /// and carries no constraint already implied by the context (w.r.t.
    /// greedy elimination in reverse constraint order).
    ///
    /// ```
    /// use tenet_isl::Map;
    /// let access = Map::parse("{ S[i,j] -> A[i + j] : 0 <= i < 4 and 0 <= j < 3 }")?;
    /// let domain = Map::parse("{ S[i,j] -> A[a] : 0 <= i < 4 and 0 <= j < 3 }")?;
    /// let g = access.gist(&domain)?;
    /// // The domain bounds disappear; the access equality stays.
    /// assert_eq!(g.basics()[0].constraint_count(), 1);
    /// assert!(g.intersect(&domain)?.is_equal(&access.intersect(&domain)?)?);
    /// # Ok::<(), tenet_isl::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates space mismatches and emptiness-test failures.
    pub fn gist(&self, context: &Map) -> Result<Map> {
        let mut out_basics: Vec<BasicMap> = Vec::new();
        for b in self.basics() {
            // Disjuncts disjoint from the context contribute nothing.
            if Map::from_basic(b.clone()).intersect(context)?.is_empty()? {
                continue;
            }
            out_basics.push(gist_basic(b, context)?);
        }
        if out_basics.is_empty() {
            return Ok(Map::empty(self.space().clone()));
        }
        let mut it = out_basics.into_iter();
        let mut acc = Map::from_basic(it.next().expect("non-empty"));
        for b in it {
            acc = acc.union(&Map::from_basic(b))?;
        }
        Ok(acc)
    }
}

impl Set {
    /// Set version of [`Map::gist`].
    ///
    /// # Errors
    ///
    /// Propagates space mismatches and emptiness-test failures.
    pub fn gist(&self, context: &Set) -> Result<Set> {
        Set::try_from_map(self.as_map().gist(context.as_map())?)
    }
}

fn gist_basic(b: &BasicMap, context: &Map) -> Result<BasicMap> {
    let mut kept = b.clone();

    // Inequalities: `row >= 0` is redundant when (rest ∧ ctx ∧ row <= -1)
    // is empty.
    for idx in (0..kept.ineqs.len()).rev() {
        let mut without = kept.clone();
        let row = without.ineqs.remove(idx);
        let mut neg: crate::basic::Row = row.iter().map(|&v| -v).collect();
        let k = neg.len() - 1;
        neg[k] -= 1;
        let mut probe = without.clone();
        probe.add_ineq(neg);
        if Map::from_basic(probe).intersect(context)?.is_empty()? {
            kept = without;
        }
    }

    // Equalities: `row == 0` is redundant when both strict sides are
    // empty under the context.
    for idx in (0..kept.eqs.len()).rev() {
        let mut without = kept.clone();
        let row = without.eqs.remove(idx);
        let k = row.len() - 1;

        let mut ge1 = row.clone();
        ge1[k] -= 1; // row >= 1
        let mut le1: crate::basic::Row = row.iter().map(|&v| -v).collect();
        le1[k] -= 1; // row <= -1

        let mut probe_hi = without.clone();
        probe_hi.add_ineq(ge1);
        let mut probe_lo = without.clone();
        probe_lo.add_ineq(le1);

        if Map::from_basic(probe_hi).intersect(context)?.is_empty()?
            && Map::from_basic(probe_lo).intersect(context)?.is_empty()?
        {
            kept = without;
        }
    }

    kept.drop_unused_divs();
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraint_count(m: &Map) -> usize {
        m.basics().iter().map(BasicMap::constraint_count).sum()
    }

    #[test]
    fn gist_drops_context_implied_bounds() {
        let a = Set::parse("{ A[i] : 0 <= i < 8 and i >= 2 }").unwrap();
        let ctx = Set::parse("{ A[i] : 0 <= i < 8 }").unwrap();
        let g = a.gist(&ctx).unwrap();
        // Only `i >= 2` can remain.
        assert_eq!(constraint_count(g.as_map()), 1);
        assert!(g
            .intersect(&ctx)
            .unwrap()
            .is_equal(&a.intersect(&ctx).unwrap())
            .unwrap());
    }

    #[test]
    fn gist_of_universe_context_keeps_needed_constraints() {
        let a = Set::parse("{ A[i] : 3 <= i < 5 }").unwrap();
        let ctx = Set::parse("{ A[i] : 0 = 0 }").unwrap();
        let g = a.gist(&ctx).unwrap();
        assert!(g.is_equal(&a).unwrap());
    }

    #[test]
    fn gist_removes_disjoint_disjuncts() {
        let a = Set::parse("{ A[i] : 0 <= i < 4 }")
            .unwrap()
            .union(&Set::parse("{ A[i] : 100 <= i < 104 }").unwrap())
            .unwrap();
        let ctx = Set::parse("{ A[i] : 0 <= i < 10 }").unwrap();
        let g = a.gist(&ctx).unwrap();
        assert_eq!(g.as_map().basics().len(), 1);
        assert!(g
            .intersect(&ctx)
            .unwrap()
            .is_equal(&a.intersect(&ctx).unwrap())
            .unwrap());
    }

    #[test]
    fn gist_preserves_equalities_not_implied() {
        let m = Map::parse("{ S[i,j] -> A[i + j] : 0 <= i < 4 and 0 <= j < 3 }").unwrap();
        let ctx = Map::parse("{ S[i,j] -> A[a] : 0 <= i < 4 and 0 <= j < 3 }").unwrap();
        let g = m.gist(&ctx).unwrap();
        assert_eq!(constraint_count(&g), 1);
        assert!(g
            .intersect(&ctx)
            .unwrap()
            .is_equal(&m.intersect(&ctx).unwrap())
            .unwrap());
    }

    #[test]
    fn gist_with_empty_intersection_yields_empty() {
        let a = Set::parse("{ A[i] : 0 <= i < 4 }").unwrap();
        let ctx = Set::parse("{ A[i] : 10 <= i < 14 }").unwrap();
        let g = a.gist(&ctx).unwrap();
        assert!(g.is_empty().unwrap());
    }

    #[test]
    fn gist_invariant_on_div_constraints() {
        // Context provides the range; gist keeps only the parity choice.
        let a = Set::parse("{ A[i] : 0 <= i < 16 and i mod 2 = 0 }").unwrap();
        let ctx = Set::parse("{ A[i] : 0 <= i < 16 }").unwrap();
        let g = a.gist(&ctx).unwrap();
        assert!(g
            .intersect(&ctx)
            .unwrap()
            .is_equal(&a.intersect(&ctx).unwrap())
            .unwrap());
        assert!(constraint_count(g.as_map()) < constraint_count(a.as_map()));
    }
}
