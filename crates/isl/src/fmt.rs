//! Pretty-printing of basic maps, maps, and sets in the same textual
//! notation accepted by the parser, so that printing and re-parsing
//! round-trips semantically.

use crate::basic::{BasicMap, Row};
use crate::map::Map;
use crate::set::Set;
use std::fmt;

/// Returns the display name of a visible variable column.
fn col_name(bm: &BasicMap, col: usize) -> String {
    let n_in = bm.n_in();
    if col < n_in {
        bm.space().input.dims[col].clone()
    } else {
        bm.space().output.dims[col - n_in].clone()
    }
}

/// Renders a div column as `floor((expr)/den)`.
fn div_expr(bm: &BasicMap, d: usize) -> String {
    let def = &bm.divs[d];
    format!("floor(({})/{})", expr(bm, &def.num), def.den)
}

/// Renders a row as an affine expression.
fn expr(bm: &BasicMap, row: &Row) -> String {
    let mut parts: Vec<String> = Vec::new();
    let div0 = bm.div0();
    let k = bm.konst();
    for (i, &c) in row.iter().enumerate() {
        if c == 0 || i == k {
            continue;
        }
        let name = if i < div0 {
            col_name(bm, i)
        } else {
            div_expr(bm, i - div0)
        };
        let term = match c {
            1 => name,
            -1 => format!("-{name}"),
            _ => format!("{c}*{name}"),
        };
        parts.push(term);
    }
    if row[k] != 0 || parts.is_empty() {
        parts.push(format!("{}", row[k]));
    }
    let mut out = String::new();
    for (i, p) in parts.iter().enumerate() {
        if i == 0 {
            out.push_str(p);
        } else if let Some(stripped) = p.strip_prefix('-') {
            out.push_str(" - ");
            out.push_str(stripped);
        } else {
            out.push_str(" + ");
            out.push_str(p);
        }
    }
    out
}

/// Renders the body (tuples and constraints) of one basic map.
fn body(bm: &BasicMap) -> String {
    let mut s = String::new();
    if bm.n_in() > 0 || bm.space().input.name.is_some() {
        s.push_str(&bm.space().input.to_string());
        s.push_str(" -> ");
    }
    s.push_str(&bm.space().output.to_string());
    let mut cons: Vec<String> = Vec::new();
    for r in &bm.eqs {
        cons.push(format!("{} = 0", expr(bm, r)));
    }
    for r in &bm.ineqs {
        cons.push(format!("{} >= 0", expr(bm, r)));
    }
    if !cons.is_empty() {
        s.push_str(" : ");
        s.push_str(&cons.join(" and "));
    }
    s
}

impl fmt::Display for BasicMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ {} }}", body(self))
    }
}

impl fmt::Display for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.basics.is_empty() {
            // An empty relation: print an unsatisfiable constraint.
            return write!(f, "{{ {} : 1 = 0 }}", self.space.output);
        }
        let parts: Vec<String> = self.basics.iter().map(body).collect();
        write!(f, "{{ {} }}", parts.join("; "))
    }
}

impl fmt::Display for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_map())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Map, Set};

    #[test]
    fn roundtrip_box() {
        let s = Set::parse("{ S[i, j] : 0 <= i < 4 and 0 <= j < 3 }").unwrap();
        let printed = s.to_string();
        let re = Set::parse(&printed).unwrap();
        assert!(s.is_equal(&re).unwrap(), "printed: {printed}");
    }

    #[test]
    fn roundtrip_with_divs() {
        let m = Map::parse("{ S[i, j] -> PE[i mod 8, floor(j/4)] : 0 <= i < 16 and 0 <= j < 8 }")
            .unwrap();
        let printed = m.to_string();
        let re = Map::parse(&printed).unwrap();
        assert!(m.is_equal(&re).unwrap(), "printed: {printed}");
    }

    #[test]
    fn roundtrip_union() {
        let s = Set::parse("{ A[i] : 0 <= i < 2 or 5 <= i < 9 }").unwrap();
        let printed = s.to_string();
        let re = Set::parse(&printed).unwrap();
        assert!(s.is_equal(&re).unwrap(), "printed: {printed}");
    }

    #[test]
    fn empty_prints_unsat() {
        let s = Set::parse("{ A[i] : 0 <= i < 4 }").unwrap();
        let e = s.subtract(&s).unwrap();
        let printed = e.to_string();
        let re = Set::parse(&printed).unwrap();
        assert!(re.is_empty().unwrap(), "printed: {printed}");
    }
}
