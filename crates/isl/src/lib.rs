//! # tenet-isl
//!
//! A from-scratch integer set library (Presburger sets and relations)
//! providing the substrate that the original TENET implementation obtained
//! from ISL and the Barvinok counting library.
//!
//! The crate models **bounded, non-parametric** integer sets and binary
//! relations constrained by affine equalities/inequalities over integer
//! variables, extended with *div* columns (`floor(expr/d)`) so that
//! quasi-affine dataflows (`i mod 8`, `floor(i/8)`) are first-class.
//!
//! Supported operations mirror the ISL entry points cited in the paper
//! (Section V-C):
//!
//! | paper / ISL                      | here                       |
//! |----------------------------------|----------------------------|
//! | `isl_union_map` structures       | [`Map`], [`Set`]           |
//! | `isl_union_map_reverse`          | [`Map::reverse`]           |
//! | `isl_union_map_apply_range`      | [`Map::apply_range`]       |
//! | `isl_union_map_card` + Barvinok  | [`Map::card`], [`Set::card`] |
//! | intersection / subtraction      | [`Map::intersect`], [`Map::subtract`] |
//!
//! # Example
//!
//! The Figure 3 dataflow of the paper, directly in its notation:
//!
//! ```
//! use tenet_isl::Map;
//!
//! let theta = Map::parse(
//!     "{ S[i,j,k] -> PE[i, j] : 0 <= i < 2 and 0 <= j < 2 and 0 <= k < 4 }",
//! )?;
//! assert_eq!(theta.card()?, 16);
//! let pes = theta.range()?;
//! assert_eq!(pes.card()?, 4);
//! # Ok::<(), tenet_isl::Error>(())
//! ```
//!
//! # Exactness
//!
//! Every operation is exact: projection uses equality substitution,
//! modular reduction, unit-coefficient Fourier–Motzkin and (for bounded
//! variables) finite splitting; counting uses bijective equality
//! elimination, independent-component factoring, closed forms, and
//! enumeration with bound propagation. Unbounded sets are rejected with
//! [`Error::Unbounded`] rather than silently approximated.
//!
//! # Performance layer
//!
//! Three mechanisms make the substrate fast without giving up exactness:
//!
//! * **Inline constraint rows, shared spaces.** Rows are a small-vector
//!   type (`row::Row`) storing up to 16 coefficients inline: TENET
//!   relations rarely exceed that many columns, so row copies are
//!   `memcpy`s and the hot paths allocate almost nothing. Rows hash and
//!   compare element-wise, giving [`BasicMap`] and [`Map`] cheap
//!   structural equality and hashing. Spaces (the dim-name tuples) are
//!   shared behind `Arc`, so cloning a relation — which every memo round
//!   trip does — never re-allocates a string.
//!
//! * **A shared operation memo ([`cache`]).** `reverse`, `apply_range`,
//!   `intersect`, `subtract`, projection, `card`, `is_empty`, `coalesce`,
//!   and parsing consult a process-wide, thread-safe memo table keyed by
//!   *interned* operand relations. Interning compares keys with full
//!   structural equality (never hash alone), so a hit replays exactly the
//!   value the uncached computation would produce — results are
//!   bit-identical by construction, which the `tests/fastpath.rs`
//!   property suite verifies end to end. DSE sweeps, whose candidates
//!   share access maps and intermediate relations, amortize nearly all
//!   relational work this way (observed hit rates are above 95%).
//!
//! * **Closed-form counting shortcuts.** Before recursing, the counter
//!   normalizes the system and dispatches the dominant shapes directly:
//!   functional mod/floor windows are projected away with an exact
//!   multiplicative factor, axis-aligned boxes multiply interval widths,
//!   box ∩ halfspace/slab prisms (skewed time-stamps) reduce to
//!   Euclidean floor-sums in `O(log)` per closed-form dimension, and
//!   box ∩ k≥2 independent slab directions (zonotope-like shapes) split
//!   on a small variable set so every slab but one collapses to interval
//!   constraints and the last closes with floor-sums. Shapes outside
//!   these families fall back to the original exact recursive enumerator;
//!   nothing is approximated. [`fast_path_stats`] exposes dispatch
//!   counters so CI can assert the shortcuts are actually taken.

#![warn(missing_docs)]

mod basic;
pub mod cache;
mod coalesce;
mod count;
mod error;
mod fmt;
mod gist;
mod lexopt;
mod map;
mod parse;
mod project;
mod row;
mod set;
mod space;
pub mod value;

pub use basic::{BasicMap, DivDef};
pub use cache::{AttachGuard, CacheStats, CounterHandle};
pub use count::{fast_path_stats, CountStats};
pub use error::{Error, Result};
pub use map::Map;
pub use set::Set;
pub use space::{Space, Tuple};
