//! # tenet-isl
//!
//! A from-scratch integer set library (Presburger sets and relations)
//! providing the substrate that the original TENET implementation obtained
//! from ISL and the Barvinok counting library.
//!
//! The crate models **bounded, non-parametric** integer sets and binary
//! relations constrained by affine equalities/inequalities over integer
//! variables, extended with *div* columns (`floor(expr/d)`) so that
//! quasi-affine dataflows (`i mod 8`, `floor(i/8)`) are first-class.
//!
//! Supported operations mirror the ISL entry points cited in the paper
//! (Section V-C):
//!
//! | paper / ISL                      | here                       |
//! |----------------------------------|----------------------------|
//! | `isl_union_map` structures       | [`Map`], [`Set`]           |
//! | `isl_union_map_reverse`          | [`Map::reverse`]           |
//! | `isl_union_map_apply_range`      | [`Map::apply_range`]       |
//! | `isl_union_map_card` + Barvinok  | [`Map::card`], [`Set::card`] |
//! | intersection / subtraction      | [`Map::intersect`], [`Map::subtract`] |
//!
//! # Example
//!
//! The Figure 3 dataflow of the paper, directly in its notation:
//!
//! ```
//! use tenet_isl::Map;
//!
//! let theta = Map::parse(
//!     "{ S[i,j,k] -> PE[i, j] : 0 <= i < 2 and 0 <= j < 2 and 0 <= k < 4 }",
//! )?;
//! assert_eq!(theta.card()?, 16);
//! let pes = theta.range()?;
//! assert_eq!(pes.card()?, 4);
//! # Ok::<(), tenet_isl::Error>(())
//! ```
//!
//! # Exactness
//!
//! Every operation is exact: projection uses equality substitution,
//! modular reduction, unit-coefficient Fourier–Motzkin and (for bounded
//! variables) finite splitting; counting uses bijective equality
//! elimination, independent-component factoring, closed forms, and
//! enumeration with bound propagation. Unbounded sets are rejected with
//! [`Error::Unbounded`] rather than silently approximated.

#![warn(missing_docs)]

mod basic;
mod coalesce;
mod count;
mod error;
mod fmt;
mod gist;
mod lexopt;
mod map;
mod parse;
mod project;
mod set;
mod space;
pub mod value;

pub use basic::{BasicMap, DivDef};
pub use error::{Error, Result};
pub use map::Map;
pub use set::Set;
pub use space::{Space, Tuple};
