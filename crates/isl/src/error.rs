//! Error type shared by every fallible operation in the crate.

use std::fmt;

/// Errors produced by integer-set operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The textual notation could not be parsed.
    Parse(String),
    /// Two operands live in incompatible spaces (dimension mismatch).
    SpaceMismatch(String),
    /// An exact answer requires the set to be bounded but it is not.
    Unbounded(String),
    /// The computation exceeded the configured work limits.
    TooComplex(String),
    /// Coefficient arithmetic overflowed `i64`.
    Overflow,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::SpaceMismatch(m) => write!(f, "space mismatch: {m}"),
            Error::Unbounded(m) => write!(f, "unbounded set: {m}"),
            Error::TooComplex(m) => write!(f, "computation too complex: {m}"),
            Error::Overflow => write!(f, "integer overflow in coefficient arithmetic"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
