//! [`BasicMap`]: a conjunction of integer affine constraints over a space.
//!
//! Column layout of every constraint row:
//!
//! ```text
//! [ input dims | output dims | div variables | constant ]
//! ```
//!
//! A *div variable* is a column whose value is a function of the other
//! columns: `d = floor(num / den)`. Because divs are functions (not free
//! existential variables), they never change the cardinality of a set and
//! constraint negation remains exact in their presence.

use crate::space::{Space, Tuple};
use crate::value::{floor_div, gcd};
use crate::{Error, Result};
use std::sync::Arc;

pub(crate) use crate::row::Row;

/// Definition of a div column: `floor(num / den)` with `den > 0`.
///
/// `num` is a full-width row (it may reference other div columns, but the
/// reference graph must stay acyclic; its own column coefficient is zero).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DivDef {
    pub(crate) num: Row,
    pub(crate) den: i64,
}

/// A single conjunction of affine equalities and inequalities relating an
/// input tuple to an output tuple.
///
/// Inequalities are stored as `row · x + c >= 0`; equalities as
/// `row · x + c == 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BasicMap {
    /// The space is shared behind an `Arc`: relations are cloned on every
    /// memo round trip and disjunct copy, and deep-copying the dim-name
    /// strings dominated those clones. All structural traits see through
    /// the `Arc` (hash/eq delegate to [`Space`]), so sharing is
    /// observationally identical to owning.
    pub(crate) space: Arc<Space>,
    pub(crate) divs: Vec<DivDef>,
    pub(crate) eqs: Vec<Row>,
    pub(crate) ineqs: Vec<Row>,
}

impl BasicMap {
    /// The unconstrained relation over `space`.
    pub fn universe(space: impl Into<Arc<Space>>) -> Self {
        BasicMap {
            space: space.into(),
            divs: Vec::new(),
            eqs: Vec::new(),
            ineqs: Vec::new(),
        }
    }

    /// The space of this relation.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Number of input dimensions.
    pub fn n_in(&self) -> usize {
        self.space.n_in()
    }

    /// Number of output dimensions.
    pub fn n_out(&self) -> usize {
        self.space.n_out()
    }

    /// Number of div columns.
    pub fn n_div(&self) -> usize {
        self.divs.len()
    }

    /// Number of stored constraints (equalities + inequalities).
    pub fn constraint_count(&self) -> usize {
        self.eqs.len() + self.ineqs.len()
    }

    /// Index of the first div column.
    pub(crate) fn div0(&self) -> usize {
        self.n_in() + self.n_out()
    }

    /// Total number of columns (including the constant).
    pub(crate) fn n_cols(&self) -> usize {
        self.n_in() + self.n_out() + self.divs.len() + 1
    }

    /// Index of the constant column.
    pub(crate) fn konst(&self) -> usize {
        self.n_cols() - 1
    }

    /// A zero row of the current width.
    pub(crate) fn zero_row(&self) -> Row {
        Row::zeros(self.n_cols())
    }

    /// Adds an equality constraint `row == 0`.
    pub(crate) fn add_eq(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.n_cols());
        self.eqs.push(row);
    }

    /// Adds an inequality constraint `row >= 0`.
    pub(crate) fn add_ineq(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.n_cols());
        self.ineqs.push(row);
    }

    /// Adds (or reuses) a div column `floor(num / den)` and returns its
    /// column index. `num` must have the current width; it is widened for
    /// the new column automatically.
    pub(crate) fn add_div(&mut self, mut num: Row, den: i64) -> Result<usize> {
        debug_assert_eq!(num.len(), self.n_cols());
        debug_assert!(den > 0, "div denominator must be positive");
        // Normalize num/den by their gcd.
        let mut g = den;
        for &c in num.iter() {
            g = gcd(g, c);
        }
        let (num_n, den_n): (Row, i64) = if g > 1 {
            (num.iter().map(|c| c / g).collect(), den / g)
        } else {
            (num.clone(), den)
        };
        // Widen existing definition rows for comparison purposes.
        let kpos = self.konst();
        for (i, d) in self.divs.iter().enumerate() {
            if d.den == den_n && d.num == num_n {
                return Ok(self.div0() + i);
            }
        }
        let col = self.div0() + self.divs.len();
        // Insert the new column (just before the constant) in every row.
        let insert_at = kpos;
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            r.insert(insert_at, 0);
        }
        for d in self.divs.iter_mut() {
            d.num.insert(insert_at, 0);
        }
        num = num_n;
        num.insert(insert_at, 0);
        self.divs.push(DivDef { num, den: den_n });
        Ok(col)
    }

    /// Inserts `n` fresh variable columns at column position `at`
    /// (which must be `<= div0()`), without touching the space. The caller
    /// is responsible for updating `space` consistently.
    pub(crate) fn insert_var_cols(&mut self, at: usize, n: usize) {
        debug_assert!(at <= self.div0());
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            for _ in 0..n {
                r.insert(at, 0);
            }
        }
        for d in self.divs.iter_mut() {
            for _ in 0..n {
                d.num.insert(at, 0);
            }
        }
    }

    /// Removes a variable column (must be `< div0()`); every row must have a
    /// zero coefficient there. The caller updates `space`.
    pub(crate) fn remove_var_col(&mut self, at: usize) {
        debug_assert!(at < self.div0());
        debug_assert!(self.eqs.iter().chain(self.ineqs.iter()).all(|r| r[at] == 0));
        debug_assert!(self.divs.iter().all(|d| d.num[at] == 0));
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            r.remove(at);
        }
        for d in self.divs.iter_mut() {
            d.num.remove(at);
        }
    }

    /// Removes div `d_idx`; its column must be unused everywhere.
    pub(crate) fn remove_div(&mut self, d_idx: usize) {
        let col = self.div0() + d_idx;
        debug_assert!(self
            .eqs
            .iter()
            .chain(self.ineqs.iter())
            .all(|r| r[col] == 0));
        debug_assert!(self
            .divs
            .iter()
            .enumerate()
            .all(|(i, d)| i == d_idx || d.num[col] == 0));
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            r.remove(col);
        }
        self.divs.remove(d_idx);
        for d in self.divs.iter_mut() {
            d.num.remove(col);
        }
    }

    /// Whether div `d` (transitively) references column `col`.
    pub(crate) fn div_depends_on(&self, d_idx: usize, col: usize) -> bool {
        let div0 = self.div0();
        let mut stack = vec![d_idx];
        let mut seen = vec![false; self.divs.len()];
        while let Some(d) = stack.pop() {
            if seen[d] {
                continue;
            }
            seen[d] = true;
            let num = &self.divs[d].num;
            if num[col] != 0 {
                return true;
            }
            for (j, dd) in self.divs.iter().enumerate() {
                let _ = dd;
                if num[div0 + j] != 0 {
                    stack.push(j);
                }
            }
        }
        false
    }

    /// Topological order of divs such that each div only references divs
    /// appearing earlier in the returned order.
    pub(crate) fn div_topo_order(&self) -> Result<Vec<usize>> {
        let n = self.divs.len();
        let div0 = self.div0();
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 visiting, 2 done
        fn visit(
            bm: &BasicMap,
            d: usize,
            div0: usize,
            state: &mut [u8],
            order: &mut Vec<usize>,
        ) -> Result<()> {
            match state[d] {
                2 => return Ok(()),
                1 => {
                    return Err(Error::TooComplex(
                        "cyclic div definitions encountered".into(),
                    ))
                }
                _ => {}
            }
            state[d] = 1;
            for j in 0..bm.divs.len() {
                if bm.divs[d].num[div0 + j] != 0 {
                    visit(bm, j, div0, state, order)?;
                }
            }
            state[d] = 2;
            order.push(d);
            Ok(())
        }
        for d in 0..n {
            visit(self, d, div0, &mut state, &mut order)?;
        }
        Ok(order)
    }

    /// Uses the equality `eq == 0` (with `eq[col] != 0`) to eliminate `col`
    /// from every constraint and div definition. Afterwards no row besides
    /// (a copy of) `eq` itself references `col`. Inequality directions are
    /// preserved exactly; div definitions are rescaled (`floor(k·n / k·d) ==
    /// floor(n/d)` for `k > 0`).
    pub(crate) fn eliminate_using_eq(&mut self, eq: &Row, col: usize) -> Result<()> {
        let mut eq = eq.clone();
        let a = eq[col];
        debug_assert!(a != 0);
        if a < 0 {
            for c in eq.iter_mut() {
                *c = c.checked_neg().ok_or(Error::Overflow)?;
            }
        }
        let a = eq[col]; // now positive
        let combine = |row: &Row, eq: &Row, a: i64| -> Result<Row> {
            let c = row[col];
            if c == 0 {
                return Ok(row.clone());
            }
            let mut out = Row::with_capacity(row.len());
            for (r, e) in row.iter().zip(eq.iter()) {
                let v = (a as i128) * (*r as i128) - (c as i128) * (*e as i128);
                out.push(i64::try_from(v).map_err(|_| Error::Overflow)?);
            }
            debug_assert_eq!(out[col], 0);
            Ok(out)
        };
        for i in 0..self.eqs.len() {
            self.eqs[i] = combine(&self.eqs[i], &eq, a)?;
        }
        for i in 0..self.ineqs.len() {
            self.ineqs[i] = combine(&self.ineqs[i], &eq, a)?;
        }
        for i in 0..self.divs.len() {
            if self.divs[i].num[col] != 0 {
                let new_num = combine(&self.divs[i].num, &eq, a)?;
                let new_den = self.divs[i].den.checked_mul(a).ok_or(Error::Overflow)?;
                let mut g = new_den;
                for &c in new_num.iter() {
                    g = gcd(g, c);
                }
                if g > 1 {
                    self.divs[i].num = new_num.iter().map(|c| c / g).collect();
                    self.divs[i].den = new_den / g;
                } else {
                    self.divs[i].num = new_num;
                    self.divs[i].den = new_den;
                }
            }
        }
        Ok(())
    }

    /// Normalizes all rows in place; returns `false` when a constraint is
    /// syntactically infeasible (e.g. `0 == 3` or `0 >= 2` after reduction).
    pub(crate) fn simplify(&mut self) -> bool {
        let kpos = self.konst();
        let mut feasible = true;
        // Equalities: divide by the gcd of variable coefficients; the
        // constant must stay divisible.
        self.eqs.retain_mut(|r| {
            let g = r[..kpos].iter().fold(0, |acc, &c| gcd(acc, c));
            if g == 0 {
                if r[kpos] != 0 {
                    feasible = false;
                }
                return false;
            }
            if r[kpos] % g != 0 {
                feasible = false;
                return false;
            }
            if g > 1 {
                for c in r.iter_mut() {
                    *c /= g;
                }
            }
            // Sign-normalize: first nonzero coefficient positive.
            if let Some(&first) = r[..kpos].iter().find(|&&c| c != 0) {
                if first < 0 {
                    for c in r.iter_mut() {
                        *c = -*c;
                    }
                }
            }
            true
        });
        // Inequalities: divide coefficients by their gcd, tightening the
        // constant with floor division (valid over the integers).
        self.ineqs.retain_mut(|r| {
            let g = r[..kpos].iter().fold(0, |acc, &c| gcd(acc, c));
            if g == 0 {
                if r[kpos] < 0 {
                    feasible = false;
                }
                return false;
            }
            if g > 1 {
                for c in r[..kpos].iter_mut() {
                    *c /= g;
                }
                r[kpos] = floor_div(r[kpos], g);
            }
            true
        });
        if !feasible {
            return false;
        }
        // Deduplicate rows and drop inequalities implied by an identical
        // inequality with a weaker constant.
        self.eqs.sort();
        self.eqs.dedup();
        self.ineqs.sort();
        self.ineqs.dedup();
        let kpos = self.konst();
        let mut keep: Vec<Row> = Vec::with_capacity(self.ineqs.len());
        for r in std::mem::take(&mut self.ineqs) {
            if let Some(prev) = keep.last_mut() {
                if prev[..kpos] == r[..kpos] {
                    // Same direction: the smaller constant is tighter.
                    if r[kpos] < prev[kpos] {
                        *prev = r;
                    }
                    continue;
                }
            }
            keep.push(r);
        }
        // Detect directly opposite inequality pairs that pin a value or are
        // contradictory: r >= 0 and -r + c >= 0 with c < 0 is empty.
        'outer: for i in 0..keep.len() {
            for j in (i + 1)..keep.len() {
                // Compare and sum in i128: i64-width coefficients/constants
                // must not wrap into a spurious (in)feasibility verdict.
                let opposite = keep[i][..kpos]
                    .iter()
                    .zip(keep[j][..kpos].iter())
                    .all(|(a, b)| *a as i128 == -(*b as i128));
                if opposite && keep[i][..kpos].iter().any(|&c| c != 0) {
                    let c = keep[i][kpos] as i128 + keep[j][kpos] as i128;
                    if c < 0 {
                        feasible = false;
                        break 'outer;
                    }
                }
            }
        }
        self.ineqs = keep;
        feasible
    }

    /// Drops div columns that no constraint or other div references.
    pub(crate) fn drop_unused_divs(&mut self) {
        loop {
            let div0 = self.div0();
            let mut dropped = false;
            for d in (0..self.divs.len()).rev() {
                let col = div0 + d;
                let used = self
                    .eqs
                    .iter()
                    .chain(self.ineqs.iter())
                    .any(|r| r[col] != 0)
                    || self
                        .divs
                        .iter()
                        .enumerate()
                        .any(|(i, dd)| i != d && dd.num[col] != 0);
                if !used {
                    // Clear the (only self-referencing) definition and drop.
                    self.remove_div(d);
                    dropped = true;
                    break;
                }
            }
            if !dropped {
                break;
            }
        }
    }

    /// Evaluates the div values for a concrete assignment of the visible
    /// variables, returning the full column vector `[vars..., divs..., 1]`.
    pub(crate) fn full_point(&self, vars: &[i64]) -> Result<Vec<i64>> {
        debug_assert_eq!(vars.len(), self.div0());
        let order = self.div_topo_order()?;
        let n_cols = self.n_cols();
        let mut full = vec![0i64; n_cols];
        full[..vars.len()].copy_from_slice(vars);
        full[n_cols - 1] = 1;
        let div0 = self.div0();
        let mut ready = vec![false; self.divs.len()];
        for d in order {
            let def = &self.divs[d];
            let mut num: i128 = 0;
            for (i, &c) in def.num.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if i >= div0 && i < n_cols - 1 {
                    debug_assert!(ready[i - div0], "div evaluation order violated");
                }
                num += (c as i128) * (full[i] as i128);
            }
            let den = def.den as i128;
            let q = num.div_euclid(den);
            full[div0 + d] = i64::try_from(q).map_err(|_| Error::Overflow)?;
            ready[d] = true;
        }
        Ok(full)
    }

    /// Whether the concrete point (over the visible in+out dims) satisfies
    /// every constraint.
    pub fn contains_point(&self, vars: &[i64]) -> Result<bool> {
        if vars.len() != self.div0() {
            return Err(Error::SpaceMismatch(format!(
                "point has {} coordinates, space has {}",
                vars.len(),
                self.div0()
            )));
        }
        let full = self.full_point(vars)?;
        let dot = |r: &Row| -> i128 {
            r.iter()
                .zip(full.iter())
                .map(|(&a, &b)| (a as i128) * (b as i128))
                .sum()
        };
        Ok(self.eqs.iter().all(|r| dot(r) == 0) && self.ineqs.iter().all(|r| dot(r) >= 0))
    }

    /// Imports `other`'s div columns into `self` (deduplicating).
    ///
    /// `var_map[i]` gives the column in `self` corresponding to `other`'s
    /// visible variable column `i`. Returns the div column mapping.
    pub(crate) fn import_divs(
        &mut self,
        other: &BasicMap,
        var_map: &[usize],
    ) -> Result<Vec<usize>> {
        debug_assert_eq!(var_map.len(), other.div0());
        let order = other.div_topo_order()?;
        let n_vis = other.div0();
        let other_k = other.konst();
        let mut div_map = vec![usize::MAX; other.divs.len()];
        for d in order {
            let def = &other.divs[d];
            let mut num = self.zero_row();
            let self_k = self.konst();
            for i in 0..n_vis {
                if def.num[i] != 0 {
                    num[var_map[i]] += def.num[i];
                }
            }
            num[self_k] = def.num[other_k];
            for (j, &c) in def.num[n_vis..other_k].iter().enumerate() {
                if c != 0 {
                    let tgt = div_map[j];
                    debug_assert_ne!(tgt, usize::MAX, "div order violated");
                    num[tgt] += c;
                }
            }
            let col = self.add_div(num, def.den)?;
            div_map[d] = col;
        }
        Ok(div_map)
    }

    /// Translates one of `other`'s rows into `self`'s layout using the
    /// mappings produced by [`BasicMap::import_divs`].
    pub(crate) fn translate_row(
        &self,
        other: &BasicMap,
        var_map: &[usize],
        div_map: &[usize],
        row: &Row,
    ) -> Row {
        let n_vis = other.div0();
        let other_k = other.konst();
        let mut out = Row::zeros(self.n_cols());
        for i in 0..n_vis {
            if row[i] != 0 {
                out[var_map[i]] += row[i];
            }
        }
        out[self.n_cols() - 1] = row[other_k];
        for (j, &c) in row[n_vis..other_k].iter().enumerate() {
            if c != 0 {
                out[div_map[j]] += c;
            }
        }
        out
    }

    /// Imports all of `other`'s constraints into `self`, remapping visible
    /// variables through `var_map`.
    pub(crate) fn import_constraints(&mut self, other: &BasicMap, var_map: &[usize]) -> Result<()> {
        let div_map = self.import_divs(other, var_map)?;
        for r in &other.eqs {
            let t = self.translate_row(other, var_map, &div_map, r);
            self.add_eq(t);
        }
        for r in &other.ineqs {
            let t = self.translate_row(other, var_map, &div_map, r);
            self.add_ineq(t);
        }
        Ok(())
    }

    /// Reverses the relation: swaps input and output columns.
    pub fn reverse(&self) -> BasicMap {
        let n_in = self.n_in();
        let n_out = self.n_out();
        let swap_row = |r: &Row| -> Row {
            let mut out = Row::with_capacity(r.len());
            out.extend_from_slice(&r[n_in..n_in + n_out]);
            out.extend_from_slice(&r[..n_in]);
            out.extend_from_slice(&r[n_in + n_out..]);
            out
        };
        BasicMap {
            space: Arc::new(self.space.reversed()),
            divs: self
                .divs
                .iter()
                .map(|d| DivDef {
                    num: swap_row(&d.num),
                    den: d.den,
                })
                .collect(),
            eqs: self.eqs.iter().map(swap_row).collect(),
            ineqs: self.ineqs.iter().map(swap_row).collect(),
        }
    }

    /// Renames the space without touching constraints.
    pub fn with_space(mut self, space: impl Into<Arc<Space>>) -> Result<BasicMap> {
        let space = space.into();
        if !self.space.is_compatible(&space) {
            return Err(Error::SpaceMismatch(format!(
                "cannot rename {} to {}",
                self.space, space
            )));
        }
        self.space = space;
        Ok(self)
    }

    /// Builds the identity relation over `tuple` (same arity on both sides).
    pub fn identity(input: Tuple, output: Tuple) -> Result<BasicMap> {
        if input.len() != output.len() {
            return Err(Error::SpaceMismatch(
                "identity requires equal arities".into(),
            ));
        }
        let n = input.len();
        let mut bm = BasicMap::universe(Space::map(input, output));
        for i in 0..n {
            let mut row = bm.zero_row();
            row[i] = 1;
            row[n + i] = -1;
            bm.add_eq(row);
        }
        Ok(bm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space2() -> Space {
        Space::map(Tuple::new("S", ["i", "j"]), Tuple::new("PE", ["p"]))
    }

    #[test]
    fn universe_and_columns() {
        let bm = BasicMap::universe(space2());
        assert_eq!(bm.n_cols(), 4);
        assert_eq!(bm.konst(), 3);
        assert_eq!(bm.div0(), 3);
    }

    #[test]
    fn add_div_dedup() {
        let mut bm = BasicMap::universe(space2());
        let num = Row::from_slice(&[1, 0, 0, 0]);
        let c1 = bm.add_div(num.clone(), 8).unwrap();
        let num2 = Row::from_slice(&[1, 0, 0, 0, 0]); // widened by one div col
        let c2 = bm.add_div(num2, 8).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(bm.n_div(), 1);
    }

    #[test]
    fn contains_point_with_div() {
        // p == i mod 8  <=>  p = i - 8*floor(i/8)
        let mut bm = BasicMap::universe(space2());
        let num = Row::from_slice(&[1, 0, 0, 0]);
        let d = bm.add_div(num, 8).unwrap();
        let mut row = bm.zero_row();
        row[2] = -1; // -p
        row[0] = 1; // +i
        row[d] = -8; // -8*floor(i/8)
        bm.add_eq(row);
        assert!(bm.contains_point(&[10, 0, 2]).unwrap());
        assert!(!bm.contains_point(&[10, 0, 3]).unwrap());
        assert!(bm.contains_point(&[-3, 0, 5]).unwrap()); // -3 mod 8 == 5
    }

    #[test]
    fn eliminate_using_eq_unit() {
        // Constraints: i + j >= 0, eq: i - 2p = 0  -> eliminate i.
        let mut bm = BasicMap::universe(space2());
        let mut ineq = bm.zero_row();
        ineq[0] = 1;
        ineq[1] = 1;
        bm.add_ineq(ineq);
        let mut eq = bm.zero_row();
        eq[0] = 1;
        eq[2] = -2;
        bm.eliminate_using_eq(&eq, 0).unwrap();
        assert_eq!(bm.ineqs[0], Row::from_slice(&[0, 1, 2, 0])); // j + 2p >= 0
    }

    #[test]
    fn simplify_detects_contradiction() {
        let mut bm = BasicMap::universe(space2());
        let mut r = bm.zero_row();
        r[bm.konst()] = -1; // 0 >= 1 is infeasible (stored as -1 >= 0)
        bm.add_ineq(r);
        assert!(!bm.simplify());
    }

    #[test]
    fn simplify_tightens_ineq_constant() {
        // 2i - 1 >= 0  ==>  i >= 1 over the integers (i - 1 >= 0).
        let mut bm = BasicMap::universe(space2());
        let mut r = bm.zero_row();
        r[0] = 2;
        r[bm.konst()] = -1;
        bm.add_ineq(r);
        assert!(bm.simplify());
        assert_eq!(bm.ineqs[0], Row::from_slice(&[1, 0, 0, -1]));
    }

    #[test]
    fn reverse_roundtrip() {
        let mut bm = BasicMap::universe(space2());
        let mut r = bm.zero_row();
        r[0] = 3;
        r[2] = -1;
        r[3] = 5;
        bm.add_ineq(r.clone());
        let rr = bm.reverse().reverse();
        assert_eq!(rr.ineqs[0], r);
        assert_eq!(rr.space(), bm.space());
    }

    #[test]
    fn identity_contains_diagonal() {
        let id =
            BasicMap::identity(Tuple::new("A", ["x", "y"]), Tuple::new("B", ["u", "v"])).unwrap();
        assert!(id.contains_point(&[1, 2, 1, 2]).unwrap());
        assert!(!id.contains_point(&[1, 2, 1, 3]).unwrap());
    }
}
