//! Exact projection of variables out of a [`BasicMap`].
//!
//! Eliminating an (existentially quantified) integer variable is the one
//! genuinely hard Presburger operation. This module implements an exact
//! ladder in the spirit of the Omega test / ISL:
//!
//! 1. **Unit-coefficient equality**: substitute the variable away — always
//!    exact.
//! 2. **Non-unit equality** `a·x + e = 0`: eliminate `x` from every other
//!    row, then record the divisibility condition `a | e` with a fresh div
//!    `q = floor(e/a)` and the equality `e - a·q = 0` — exact.
//! 3. **Sandwich recognition**: a pair `e <= a·x <= e + k` with `k < a`
//!    pins `x = floor((e+k)/a)`; substitute through a div — exact.
//! 4. **One-sided inequalities**: if the variable has only lower or only
//!    upper bounds, projection simply drops those constraints — exact over ℤ.
//! 5. **Fourier–Motzkin** when every (lower, upper) bound pair either has
//!    a unit coefficient on one side (the classical Omega condition) or is
//!    a *wide sandwich* — coefficients `a`/`-a` cancelling to a constant
//!    `k >= a-1`, whose numerator window spans `a` consecutive integers
//!    and therefore always contains a multiple of `a` (the dark-shadow
//!    special case) — exact.
//! 6. **Productive div expansion**: a div referencing the variable with a
//!    unit coefficient is expanded into a fresh variable (its bracket
//!    constraints then give unit bounds enabling step 5).
//! 7. **Finite splitting**: otherwise the variable is enumerated over its
//!    (finite) range, producing one disjunct per value — exact for bounded
//!    sets, which is the only regime TENET's evaluation exercises.
//!
//! Ordering matters: expansion is deliberately *late* — expanding eagerly
//! can ping-pong between mod and div structures forever, whereas splitting
//! a small-range variable always terminates.

use crate::basic::{BasicMap, Row};
use crate::count::var_range;
use crate::value::gcd;
use crate::{Error, Result};

/// Upper bound on how many values a split (ladder step 5) may enumerate.
const SPLIT_LIMIT: i64 = 4096;
/// Upper bound on the total number of pieces produced by one projection.
const PIECE_LIMIT: usize = 1 << 16;

/// Eliminates the variable columns listed in `targets` (indices into the
/// visible in+out columns) from `bm`, returning the exact projection as a
/// union of basic maps. The caller must already have removed the
/// corresponding dimensions' visibility expectations: on return the basic
/// maps have those columns removed and their space shrunk accordingly.
pub(crate) fn eliminate_vars(bm: BasicMap, targets: Vec<usize>) -> Result<Vec<BasicMap>> {
    let mut result = Vec::new();
    let mut work: Vec<(BasicMap, Vec<usize>)> = vec![(bm, targets)];
    let mut produced = 0usize;
    while let Some((mut bm, mut targets)) = work.pop() {
        if !bm.simplify() {
            continue;
        }
        if targets.is_empty() {
            bm.drop_unused_divs();
            result.push(bm);
            continue;
        }
        produced += 1;
        if produced > PIECE_LIMIT {
            return Err(Error::TooComplex(
                "projection produced too many disjuncts".into(),
            ));
        }
        match eliminate_one(&mut bm, &mut targets)? {
            Step::Continue => work.push((bm, targets)),
            Step::Split(pieces) => {
                for p in pieces {
                    work.push((p, targets.clone()));
                }
            }
            Step::Empty => {}
        }
    }
    Ok(result)
}

enum Step {
    /// One variable was eliminated (or a div expanded); keep going.
    Continue,
    /// The basic map was split into value cases.
    Split(Vec<BasicMap>),
    /// The basic map is infeasible.
    Empty,
}

/// Performs one ladder step on the best candidate variable.
fn eliminate_one(bm: &mut BasicMap, targets: &mut Vec<usize>) -> Result<Step> {
    // --- Step 1/2: equality-based elimination. --------------------------
    // Find the (target, equality) pair with the smallest |coefficient|,
    // preferring unit coefficients.
    let mut best: Option<(usize, usize, i64)> = None; // (target idx, eq idx, |coef|)
    for (ti, &col) in targets.iter().enumerate() {
        for (ei, eq) in bm.eqs.iter().enumerate() {
            let a = eq[col].abs();
            if a != 0 && best.is_none_or(|(_, _, b)| a < b) {
                best = Some((ti, ei, a));
            }
        }
    }
    if let Some((ti, ei, a)) = best {
        let col = targets[ti];
        // Cycle guard: substituting via an equality that references a div
        // which (transitively) depends on `col` would create a cyclic div
        // definition. Expand such divs into ordinary variables first.
        let div0 = bm.div0();
        let cyclic: Vec<usize> = (0..bm.n_div())
            .filter(|&d| bm.eqs[ei][div0 + d] != 0 && bm.div_depends_on(d, col))
            .collect();
        if let Some(&d) = cyclic.first() {
            let new_col = div_to_var(bm, d);
            shift_targets(targets, new_col);
            targets.push(new_col);
            return Ok(Step::Continue);
        }
        let eq = bm.eqs.swap_remove(ei);
        if a == 1 {
            bm.eliminate_using_eq(&eq, col)?;
            remove_var(bm, col);
            retarget_after_removal(targets, ti, col);
            return Ok(Step::Continue);
        }
        // Non-unit equality: eliminate from other rows, then record the
        // divisibility condition a | e  (where  a·x + e = 0, a > 0).
        let mut eq = eq;
        if eq[col] < 0 {
            for c in eq.iter_mut() {
                *c = c.checked_neg().ok_or(Error::Overflow)?;
            }
        }
        let a = eq[col];
        bm.eliminate_using_eq(&eq, col)?;
        // Divs may still syntactically mention col only through eq itself;
        // eliminate_using_eq already cleared them.
        let mut e = eq.clone();
        e[col] = 0;
        // Remove the variable column from bm and from e.
        remove_var(bm, col);
        e.remove(col);
        retarget_after_removal(targets, ti, col);
        // Skip the divisibility constraint when e is trivially divisible.
        let g = e.iter().fold(0, |acc, &c| gcd(acc, c));
        if g % a == 0 {
            return Ok(Step::Continue);
        }
        let q = bm.add_div(e.clone(), a)?;
        // Adding the div widened rows by one column (before the constant).
        let k_old = e.len() - 1;
        e.insert(k_old, 0);
        e[q] = -a;
        bm.add_eq(e);
        return Ok(Step::Continue);
    }

    // --- No equalities on any target: inequality-based elimination. -----
    // Sandwich recognition: a pair of inequalities `a·x + e >= 0` and
    // `-a·x - e + k >= 0` with `0 <= k < a` pins x to `floor((e+k)/a)` —
    // substitute through a div instead of splitting (the pattern arises
    // from remainder-class constraints such as `0 <= p - 3c + 12z <= 2`).
    // Guard: the sandwich numerator must not reference another target
    // variable, otherwise the new div re-introduces elimination work and
    // the ladder can ping-pong between mod/div structures forever.
    for ti in 0..targets.len() {
        let col = targets[ti];
        if let Some((q_num, a)) = find_sandwich(bm, col) {
            let refs_target = targets.iter().any(|&t| t != col && q_num[t] != 0);
            let cyclic =
                (0..bm.n_div()).any(|d| q_num[bm.div0() + d] != 0 && bm.div_depends_on(d, col));
            if !refs_target && !cyclic {
                let q = bm.add_div(q_num, a)?;
                let mut eq = bm.zero_row();
                eq[col] = 1;
                eq[q] = -1;
                bm.eliminate_using_eq(&eq, col)?;
                remove_var(bm, col);
                retarget_after_removal(targets, ti, col);
                return Ok(Step::Continue);
            }
        }
    }
    // One-sided / exact-FM classification. Both require the variable to be
    // free of div references (FM cannot look through a floor).
    let mut one_sided: Option<usize> = None;
    let mut fm_best: Option<(usize, usize)> = None; // (target idx, fill-in)
    for (ti, &col) in targets.iter().enumerate() {
        if (0..bm.n_div()).any(|d| bm.divs[d].num[col] != 0) {
            continue;
        }
        let lowers: Vec<usize> = bm
            .ineqs
            .iter()
            .enumerate()
            .filter(|(_, r)| r[col] > 0)
            .map(|(i, _)| i)
            .collect();
        let uppers: Vec<usize> = bm
            .ineqs
            .iter()
            .enumerate()
            .filter(|(_, r)| r[col] < 0)
            .map(|(i, _)| i)
            .collect();
        if lowers.is_empty() || uppers.is_empty() {
            one_sided = Some(ti);
            break;
        }
        // A (lower, upper) pair eliminates exactly when one coefficient is
        // a unit (classical Omega condition) — or when the pair is a wide
        // sandwich: coefficients a and -a whose sum cancels every variable
        // and leaves a constant k >= a-1. The window then spans a
        // consecutive integer numerator values, which always contain a
        // multiple of a, so an integer solution exists for every outer
        // point (the dark-shadow special case).
        let pair_exact = |l: &Row, u: &Row| -> bool {
            if l[col] == 1 || u[col] == -1 {
                return true;
            }
            if l[col] != -u[col] {
                return false;
            }
            let k_col = l.len() - 1;
            let mut k = 0i64;
            for i in 0..=k_col {
                let s = l[i] + u[i];
                if i == k_col {
                    k = s;
                } else if s != 0 && i != col {
                    return false;
                }
            }
            k >= l[col] - 1
        };
        let exact = lowers.iter().all(|&l| {
            uppers
                .iter()
                .all(|&u| pair_exact(&bm.ineqs[l], &bm.ineqs[u]))
        });
        if exact {
            let fill = lowers.len() * uppers.len();
            if fm_best.is_none_or(|(_, f)| fill < f) {
                fm_best = Some((ti, fill));
            }
        }
    }
    if let Some(ti) = one_sided {
        let col = targets[ti];
        bm.ineqs.retain(|r| r[col] == 0);
        remove_var(bm, col);
        retarget_after_removal(targets, ti, col);
        return Ok(Step::Continue);
    }
    if let Some((ti, _)) = fm_best {
        let col = targets[ti];
        fourier_motzkin(bm, col)?;
        remove_var(bm, col);
        retarget_after_removal(targets, ti, col);
        return Ok(Step::Continue);
    }
    // Productive div expansion: when a div references the target with a
    // unit coefficient, its bracket constraints give the target unit
    // bounds, so expansion unblocks exact FM. (Non-unit references are
    // left alone — expanding those can ping-pong forever.)
    for &col in targets.iter() {
        if let Some(d) = (0..bm.n_div()).find(|&d| bm.divs[d].num[col].abs() == 1) {
            let new_col = div_to_var(bm, d);
            shift_targets(targets, new_col);
            targets.push(new_col);
            return Ok(Step::Continue);
        }
    }
    // --- Finite splitting (exact; works through div references because a
    // constant substitutes cleanly into numerators). Split the target with
    // the smallest finite range.
    let mut best: Option<(usize, i64, i64)> = None;
    for (ti, &col) in targets.iter().enumerate() {
        if let Ok((lo, hi)) = var_range(bm, col) {
            if best.is_none_or(|(_, bl, bh)| hi - lo < bh - bl) {
                best = Some((ti, lo, hi));
            }
        }
    }
    if let Some((ti, lo, hi)) = best {
        if hi < lo {
            return Ok(Step::Empty);
        }
        if hi - lo < SPLIT_LIMIT {
            let col = targets[ti];
            let mut pieces = Vec::with_capacity((hi - lo + 1) as usize);
            for v in lo..=hi {
                let mut p = bm.clone();
                let mut eq = p.zero_row();
                eq[col] = 1;
                let k = p.konst();
                eq[k] = -v;
                p.add_eq(eq);
                pieces.push(p);
            }
            return Ok(Step::Split(pieces));
        }
    }
    // --- Last resort: expand a div that blocks one-sided/FM treatment of
    // some huge-range target, then retry.
    for &col in targets.iter() {
        if let Some(d) = (0..bm.n_div()).find(|&d| bm.divs[d].num[col] != 0) {
            let new_col = div_to_var(bm, d);
            shift_targets(targets, new_col);
            targets.push(new_col);
            return Ok(Step::Continue);
        }
    }
    Err(Error::Unbounded(
        "cannot project an unbounded non-unit variable exactly".into(),
    ))
}

/// Looks for a sandwich pair on `col`: inequalities `L: a·x + e >= 0` and
/// `U: -a·x + f >= 0` whose sum cancels every variable and leaves a
/// constant `k` with `0 <= k < a`. Then `x = floor(f / a)` exactly.
/// Returns the div numerator (`f` with the `col` coefficient cleared) and
/// denominator `a`.
fn find_sandwich(bm: &BasicMap, col: usize) -> Option<(Row, i64)> {
    let k_col = bm.konst();
    for l in &bm.ineqs {
        let a = l[col];
        if a <= 1 {
            continue; // a == 1 is already handled exactly by FM
        }
        for u in &bm.ineqs {
            if u[col] != -a {
                continue;
            }
            let mut cancels = true;
            let mut k = 0i64;
            for i in 0..=k_col {
                let s = l[i] + u[i];
                if i == k_col {
                    k = s;
                } else if s != 0 {
                    cancels = false;
                    break;
                }
            }
            if cancels && (0..a).contains(&k) {
                let mut num = u.clone();
                num[col] = 0;
                return Some((num, a));
            }
        }
    }
    None
}

/// Fourier–Motzkin elimination of `col` (caller checked exactness).
fn fourier_motzkin(bm: &mut BasicMap, col: usize) -> Result<()> {
    let (lowers, uppers): (Vec<Row>, Vec<Row>) = {
        let mut lo = Vec::new();
        let mut up = Vec::new();
        for r in &bm.ineqs {
            if r[col] > 0 {
                lo.push(r.clone());
            } else if r[col] < 0 {
                up.push(r.clone());
            }
        }
        (lo, up)
    };
    bm.ineqs.retain(|r| r[col] == 0);
    for l in &lowers {
        let a = l[col];
        for u in &uppers {
            let b = -u[col];
            debug_assert!(
                a == 1 || b == 1 || a == b,
                "FM exactness precondition violated"
            );
            let mut row = Row::with_capacity(l.len());
            for (x, y) in l.iter().zip(u.iter()) {
                let v = (b as i128) * (*x as i128) + (a as i128) * (*y as i128);
                row.push(i64::try_from(v).map_err(|_| Error::Overflow)?);
            }
            debug_assert_eq!(row[col], 0);
            bm.add_ineq(row);
        }
    }
    Ok(())
}

/// Converts div `d_idx` into a fresh output variable with bracket
/// constraints; returns the new variable's column index.
pub(crate) fn div_to_var(bm: &mut BasicMap, d_idx: usize) -> usize {
    let def = bm.divs[d_idx].clone();
    let div0 = bm.div0();
    let new_col = div0;
    // Insert the variable column at the end of the output block.
    bm.insert_var_cols(new_col, 1);
    let name = fresh_name(bm);
    std::sync::Arc::make_mut(&mut bm.space)
        .output
        .dims
        .push(name);
    let old_div_col = bm.div0() + d_idx; // div block shifted right by one
                                         // Move every reference from the old div column to the new variable.
    for r in bm.eqs.iter_mut().chain(bm.ineqs.iter_mut()) {
        r[new_col] += r[old_div_col];
        r[old_div_col] = 0;
    }
    for d in bm.divs.iter_mut() {
        let c = d.num[old_div_col];
        d.num[new_col] += c;
        d.num[old_div_col] = 0;
    }
    // Widen the captured definition to the post-insert layout and drop the
    // old column reference (a div never references itself).
    let mut num = def.num.clone();
    num.insert(new_col, 0);
    debug_assert_eq!(num[old_div_col], 0);
    bm.remove_div(d_idx);
    num.remove(old_div_col);
    // Bracket constraints: 0 <= num - den*z <= den - 1.
    let mut lo = num.clone();
    lo[new_col] -= def.den;
    let mut hi: Row = num.iter().map(|c| -c).collect();
    hi[new_col] += def.den;
    let k = hi.len() - 1;
    hi[k] += def.den - 1;
    bm.add_ineq(lo);
    bm.add_ineq(hi);
    new_col
}

fn fresh_name(bm: &BasicMap) -> String {
    let mut i = bm.n_in() + bm.n_out();
    loop {
        let name = format!("_e{i}");
        let clash = bm
            .space
            .input
            .dims
            .iter()
            .chain(bm.space.output.dims.iter())
            .any(|d| *d == name);
        if !clash {
            return name;
        }
        i += 1;
    }
}

/// Removes a variable column and its dimension name from the space.
fn remove_var(bm: &mut BasicMap, col: usize) {
    // Any remaining references in rows were cleared by the caller, except
    // possibly stale rows mentioning col through the removed equality;
    // remove_var_col asserts cleanliness in debug builds.
    bm.remove_var_col(col);
    let n_in = bm.space.n_in();
    let space = std::sync::Arc::make_mut(&mut bm.space);
    if col < n_in {
        space.input.dims.remove(col);
    } else {
        space.output.dims.remove(col - n_in);
    }
}

/// Updates the targets list after removing `col` (which was `targets[ti]`).
fn retarget_after_removal(targets: &mut Vec<usize>, ti: usize, col: usize) {
    targets.swap_remove(ti);
    for t in targets.iter_mut() {
        if *t > col {
            *t -= 1;
        }
    }
}

/// Shifts all target columns at or beyond `inserted_at` right by one
/// (a fresh variable column was inserted there).
fn shift_targets(targets: &mut [usize], inserted_at: usize) {
    for t in targets.iter_mut() {
        if *t >= inserted_at {
            *t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Space, Tuple};

    /// { [x, y] : 0 <= x < 8, y = x } projecting out x gives 0 <= y < 8.
    #[test]
    fn project_via_unit_equality() {
        let mut bm = BasicMap::universe(Space::set(Tuple::new("A", ["x", "y"])));
        let k = bm.konst();
        let mut lo = bm.zero_row();
        lo[0] = 1;
        bm.add_ineq(lo);
        let mut hi = bm.zero_row();
        hi[0] = -1;
        hi[k] = 7;
        bm.add_ineq(hi);
        let mut eq = bm.zero_row();
        eq[0] = 1;
        eq[1] = -1;
        bm.add_eq(eq);
        let out = eliminate_vars(bm, vec![0]).unwrap();
        assert_eq!(out.len(), 1);
        let r = &out[0];
        assert_eq!(r.space.output.dims, vec!["y".to_string()]);
        assert!(r.contains_point(&[0]).unwrap());
        assert!(r.contains_point(&[7]).unwrap());
        assert!(!r.contains_point(&[8]).unwrap());
    }

    /// { [x, y] : y = 2x, 0 <= x < 5 } projecting x -> even y in [0, 8].
    #[test]
    fn project_via_nonunit_equality() {
        let mut bm = BasicMap::universe(Space::set(Tuple::new("A", ["x", "y"])));
        let k = bm.konst();
        let mut lo = bm.zero_row();
        lo[0] = 1;
        bm.add_ineq(lo);
        let mut hi = bm.zero_row();
        hi[0] = -1;
        hi[k] = 4;
        bm.add_ineq(hi);
        let mut eq = bm.zero_row();
        eq[0] = 2;
        eq[1] = -1;
        bm.add_eq(eq);
        let out = eliminate_vars(bm, vec![0]).unwrap();
        let total: usize = out
            .iter()
            .map(|b| {
                (0..=10)
                    .filter(|&y| b.contains_point(&[y]).unwrap())
                    .count()
            })
            .sum();
        assert_eq!(total, 5); // y in {0, 2, 4, 6, 8}
        assert!(out.iter().any(|b| b.contains_point(&[8]).unwrap()));
        assert!(!out.iter().any(|b| b.contains_point(&[3]).unwrap()));
    }

    /// One-sided bounds disappear on projection.
    #[test]
    fn project_one_sided() {
        let mut bm = BasicMap::universe(Space::set(Tuple::new("A", ["x", "y"])));
        let mut lo = bm.zero_row();
        lo[0] = 1;
        lo[1] = -1; // x >= y
        bm.add_ineq(lo);
        let k = bm.konst();
        let mut ylo = bm.zero_row();
        ylo[1] = 1;
        bm.add_ineq(ylo);
        let mut yhi = bm.zero_row();
        yhi[1] = -1;
        yhi[k] = 3;
        bm.add_ineq(yhi);
        let out = eliminate_vars(bm, vec![0]).unwrap();
        assert_eq!(out.len(), 1);
        for y in 0..=3 {
            assert!(out[0].contains_point(&[y]).unwrap());
        }
    }

    /// FM with unit coefficients: { [x,y] : y <= x <= y + 2, 0 <= x <= 10 }
    /// projecting x gives -2 <= y <= 10.
    #[test]
    fn project_fm_exact() {
        let mut bm = BasicMap::universe(Space::set(Tuple::new("A", ["x", "y"])));
        let k = bm.konst();
        let mut a = bm.zero_row();
        a[0] = 1;
        a[1] = -1; // x - y >= 0
        bm.add_ineq(a);
        let mut b = bm.zero_row();
        b[0] = -1;
        b[1] = 1;
        b[k] = 2; // y + 2 - x >= 0
        bm.add_ineq(b);
        let mut c = bm.zero_row();
        c[0] = 1;
        bm.add_ineq(c);
        let mut d = bm.zero_row();
        d[0] = -1;
        d[k] = 10;
        bm.add_ineq(d);
        let out = eliminate_vars(bm, vec![0]).unwrap();
        assert_eq!(out.len(), 1);
        for y in -2..=10 {
            assert!(out[0].contains_point(&[y]).unwrap(), "y={y}");
        }
        assert!(!out[0].contains_point(&[-3]).unwrap());
        assert!(!out[0].contains_point(&[11]).unwrap());
    }

    /// Non-unit two-sided bounds trigger the exact splitting fallback:
    /// { [x, y] : 2x <= y <= 2x + 1, 0 <= y < 10, 0 <= x < 5 } projected
    /// over x covers every y in [0, 10): all of them (each y has x =
    /// floor(y/2)).
    #[test]
    fn project_split_fallback() {
        let mut bm = BasicMap::universe(Space::set(Tuple::new("A", ["x", "y"])));
        let k = bm.konst();
        let mut a = bm.zero_row();
        a[0] = -2;
        a[1] = 1; // y - 2x >= 0
        bm.add_ineq(a);
        let mut b = bm.zero_row();
        b[0] = 2;
        b[1] = -1;
        b[k] = 1; // 2x + 1 - y >= 0
        bm.add_ineq(b);
        let mut c = bm.zero_row();
        c[1] = 1;
        bm.add_ineq(c);
        let mut d = bm.zero_row();
        d[1] = -1;
        d[k] = 9;
        bm.add_ineq(d);
        let mut e = bm.zero_row();
        e[0] = 1;
        bm.add_ineq(e);
        let mut f = bm.zero_row();
        f[0] = -1;
        f[k] = 4;
        bm.add_ineq(f);
        let out = eliminate_vars(bm, vec![0]).unwrap();
        for y in 0..10 {
            assert!(
                out.iter().any(|b| b.contains_point(&[y]).unwrap()),
                "y={y} missing"
            );
        }
        assert!(!out.iter().any(|b| b.contains_point(&[10]).unwrap()));
    }

    /// Projecting a variable that a div references: { [x, p] : p = x mod 8,
    /// 0 <= x < 16 } -> p in [0, 8).
    #[test]
    fn project_through_div() {
        let mut bm = BasicMap::universe(Space::set(Tuple::new("A", ["x", "p"])));
        let k = bm.konst();
        let mut lo = bm.zero_row();
        lo[0] = 1;
        bm.add_ineq(lo);
        let mut hi = bm.zero_row();
        hi[0] = -1;
        hi[k] = 15;
        bm.add_ineq(hi);
        let mut num = bm.zero_row();
        num[0] = 1;
        let d = bm.add_div(num, 8).unwrap();
        let mut eq = bm.zero_row();
        eq[1] = -1;
        eq[0] = 1;
        eq[d] = -8; // p = x - 8*floor(x/8)
        bm.add_eq(eq);
        let out = eliminate_vars(bm, vec![0]).unwrap();
        for p in 0..8 {
            assert!(
                out.iter().any(|b| b.contains_point(&[p]).unwrap()),
                "p={p} missing"
            );
        }
        assert!(!out.iter().any(|b| b.contains_point(&[8]).unwrap()));
        assert!(!out.iter().any(|b| b.contains_point(&[-1]).unwrap()));
    }
}
