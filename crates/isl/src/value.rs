//! Exact integer arithmetic helpers.
//!
//! All coefficients in this crate are `i64`; intermediate products are
//! computed in `i128` and checked on the way back so that overflow is
//! reported as [`crate::Error::Overflow`] instead of wrapping silently.

use crate::{Error, Result};

/// Greatest common divisor (always non-negative; `gcd(0, 0) == 0`).
///
/// ```
/// assert_eq!(tenet_isl::value::gcd(12, -18), 6);
/// assert_eq!(tenet_isl::value::gcd(0, 5), 5);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Least common multiple, checked against overflow.
pub fn lcm(a: i64, b: i64) -> Result<i64> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd(a, b);
    mul(a / g, b)
}

/// Floor division: `floor_div(7, 2) == 3`, `floor_div(-7, 2) == -4`.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division: `ceil_div(7, 2) == 4`, `ceil_div(-7, 2) == -3`.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Mathematical (floor) modulus: the result has the sign of `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn mod_floor(a: i64, b: i64) -> i64 {
    a - b * floor_div(a, b)
}

/// Symmetric modulus used by the Omega-test equality reduction:
/// the representative of `a (mod m)` lying in `(-m/2, m/2]`.
///
/// # Panics
///
/// Panics if `m <= 0`.
pub fn mod_hat(a: i64, m: i64) -> i64 {
    assert!(m > 0, "mod_hat requires a positive modulus");
    let r = mod_floor(a, m);
    if 2 * r > m {
        r - m
    } else {
        r
    }
}

/// Checked multiplication.
pub fn mul(a: i64, b: i64) -> Result<i64> {
    a.checked_mul(b).ok_or(Error::Overflow)
}

/// Checked addition.
pub fn add(a: i64, b: i64) -> Result<i64> {
    a.checked_add(b).ok_or(Error::Overflow)
}

/// Checked fused multiply-add: `a*b + c*d`, computed through `i128`.
pub fn mul_add2(a: i64, b: i64, c: i64, d: i64) -> Result<i64> {
    let v = (a as i128) * (b as i128) + (c as i128) * (d as i128);
    i64::try_from(v).map_err(|_| Error::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(17, 5), 1);
    }

    #[test]
    fn floor_ceil_div() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(floor_div(-7, -2), 3);
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
    }

    #[test]
    fn mod_floor_sign() {
        assert_eq!(mod_floor(-7, 3), 2);
        assert_eq!(mod_floor(7, 3), 1);
        assert_eq!(mod_floor(7, -3), -2);
    }

    #[test]
    fn mod_hat_symmetric_range() {
        for a in -20..20 {
            for m in 2..8 {
                let r = mod_hat(a, m);
                assert!(2 * r <= m && 2 * r > -m, "a={a} m={m} r={r}");
                assert_eq!(mod_floor(a - r, m), 0);
            }
        }
    }

    #[test]
    fn checked_ops() {
        assert!(mul(i64::MAX, 2).is_err());
        assert_eq!(mul_add2(3, 4, 5, 6).unwrap(), 42);
    }
}
